"""Server consolidation: N database servers onto one physical machine.

The paper's motivating scenario: "Instead of having different server
machines for the different software systems ... we could run the
software systems in virtual machines and have the virtual machines
share the same physical resources." Three departmental database
servers with different resource profiles are consolidated; the designer
divides CPU *and* memory, the design is applied through the virtual
machine monitor, and the deployed VMs answer queries.

Run with:  python examples/server_consolidation.py
"""

from repro import (
    CalibrationCache,
    CalibrationRunner,
    OptimizerCostModel,
    ResourceKind,
    VirtualizationDesigner,
    VirtualizationDesignProblem,
    VirtualMachineMonitor,
    Workload,
    WorkloadSpec,
    build_tpch_database,
    laboratory_machine,
    tpch_query,
)


def main() -> None:
    machine = laboratory_machine()

    print("Provisioning the three departments' databases ...")
    sales_db = build_tpch_database(
        scale_factor=0.01, tables=["customer", "orders"], name="sales")
    logistics_db = build_tpch_database(
        scale_factor=0.01, tables=["orders", "lineitem"], name="logistics")
    finance_db = build_tpch_database(
        scale_factor=0.005, tables=["customer", "orders", "lineitem"],
        name="finance")

    specs = [
        # Sales: customer analytics — string matching, CPU bound.
        WorkloadSpec(Workload.repeat("sales", tpch_query("Q13"), 6), sales_db),
        # Logistics: shipment audits over lineitem — I/O bound.
        WorkloadSpec(Workload.repeat("logistics", tpch_query("Q4"), 2),
                     logistics_db),
        # Finance: a smaller mixed reporting load.
        WorkloadSpec(Workload.of_queries("finance", ["Q3", "Q12"]), finance_db),
    ]

    calibration = CalibrationCache(CalibrationRunner(machine))
    problem = VirtualizationDesignProblem(
        machine=machine, specs=specs,
        controlled_resources=(ResourceKind.CPU, ResourceKind.MEMORY),
    )
    designer = VirtualizationDesigner(problem, OptimizerCostModel(calibration))

    print("Searching CPU x memory allocations (dynamic programming) ...")
    design = designer.design("dynamic-programming", grid=4)
    print()
    print(design.summary())

    print("\nDeploying through the virtual machine monitor ...")
    vmm = VirtualMachineMonitor.single_host(machine)
    designer.apply(vmm, design)
    for name, vm in sorted(vmm.vms.items()):
        print(f"  VM {name}: state={vm.state.value}, "
              f"guest memory {vm.memory_mib:.1f} MiB, "
              f"buffer pool {vm.guest.buffer_pool.capacity} pages")

    print("\nSmoke query on each consolidated server:")
    for name, vm in sorted(vmm.vms.items()):
        table = vm.guest.catalog.table_names()[0]
        count = vm.guest.run_sql(f"select count(*) as n from {table}").rows[0][0]
        print(f"  {name}: {table} has {count} rows")


if __name__ == "__main__":
    main()
