"""A tour of the virtualization-aware what-if optimizer mode.

The paper's core instrument, shown directly: the same query is costed
under parameter sets calibrated for different resource allocations —
without executing anything — and the estimates (and sometimes the plans
themselves) change with the allocation. Ends with a case where the
allocation flips the optimizer's access-path choice.

Run with:  python examples/whatif_explain.py
"""

from repro import (
    CalibrationCache,
    CalibrationRunner,
    ResourceVector,
    WhatIfOptimizer,
    build_tpch_database,
    laboratory_machine,
    tpch_query,
)


def main() -> None:
    machine = laboratory_machine()
    print("Loading TPC-H and calibrating three CPU allocations ...")
    db = build_tpch_database(scale_factor=0.01,
                             tables=["customer", "orders", "lineitem"])
    calibration = CalibrationCache(CalibrationRunner(machine))
    whatif = WhatIfOptimizer(db.catalog)

    allocations = {
        f"cpu {cpu:.0%} / mem 50%": ResourceVector.of(cpu=cpu, memory=0.5, io=0.5)
        for cpu in (0.25, 0.5, 0.75)
    }

    print("\n=== Estimated execution times per allocation (nothing runs) ===")
    for query_name in ("Q4", "Q13"):
        print(f"\n{query_name}:")
        for label, allocation in allocations.items():
            params = calibration.params_for(allocation)
            estimate = whatif.with_params(params).estimate_query(
                tpch_query(query_name)
            )
            print(f"  {label}: {estimate.estimated_seconds:7.3f}s estimated "
                  f"(cpu_tuple_cost={params.cpu_tuple_cost:.4f})")

    print("\n=== The calibrated plan for Q4 at the default allocation ===")
    params = calibration.params_for(ResourceVector.of(cpu=0.5, memory=0.5, io=0.5))
    print(whatif.with_params(params).explain(tpch_query("Q4")))

    print("\n=== Why calibration matters: a plan flip ===")
    sql = ("select o_orderpriority from orders "
           "where o_orderdate >= date '1995-01-01' "
           "and o_orderdate < date '1995-01-08'")
    default_estimate = whatif.estimate_query(sql)  # PostgreSQL defaults
    calibrated = whatif.with_params(
        calibration.params_for(ResourceVector.of(cpu=0.5, memory=0.5, io=0.5))
    ).estimate_query(sql)

    def access_path(estimate):
        for line in estimate.plan.explain().splitlines():
            if "Scan" in line:
                return line.strip().split("(")[0].strip()
        return "?"

    print(f"  uncalibrated defaults (random_page_cost=4):"
          f" {access_path(default_estimate)}")
    vm_params = calibration.params_for(
        ResourceVector.of(cpu=0.5, memory=0.5, io=0.5))
    print(f"  calibrated for this VM (random_page_cost="
          f"{vm_params.random_page_cost:.0f}):"
          f" {access_path(calibrated)}")
    print("\n(The simulated disk serves random reads two orders of magnitude "
          "slower than\n sequential ones; only the calibrated optimizer "
          "knows that and avoids the index.)")

    print("\n=== EXPLAIN ANALYZE: estimates against reality ===")
    print(db.explain_analyze(
        "select o_orderpriority, count(*) as n from orders "
        "where o_orderdate >= date '1994-01-01' "
        "and o_orderdate < date '1994-04-01' "
        "group by o_orderpriority"
    ))


if __name__ == "__main__":
    main()
