"""Fleet placement: consolidate tenants across heterogeneous machines.

Goes one step beyond the paper's single-host scenario: two physical
machines with opposite strengths (a CPU-rich box and an I/O-rich box)
and four tenants with opposite resource profiles. The placement
designer calibrates each machine separately, discovers the affinity
from what-if estimates, divides each machine's CPU among its tenants,
and deploys through a multi-host virtual machine monitor.

Run with:  python examples/fleet_placement.py
"""

from repro import (
    CalibrationCache,
    CalibrationRunner,
    OptimizerCostModel,
    PhysicalMachine,
    PlacementDesigner,
    ResourceKind,
    VirtualMachineMonitor,
    Workload,
    WorkloadSpec,
    build_tpch_database,
    tpch_query,
)


def main() -> None:
    fleet = [
        PhysicalMachine(name="cpu-rich", cpu_units_per_second=500e6,
                        memory_mib=20.0, io_seq_mib_per_second=30.0,
                        io_random_ops_per_second=80.0),
        PhysicalMachine(name="io-rich", cpu_units_per_second=125e6,
                        memory_mib=20.0, io_seq_mib_per_second=120.0,
                        io_random_ops_per_second=260.0),
    ]
    print("Fleet:")
    for machine in fleet:
        print(f"  {machine.name}: {machine.cpu_units_per_second / 1e6:.0f}M "
              f"CPU units/s, {machine.io_seq_mib_per_second:.0f} MiB/s "
              f"sequential I/O")

    print("\nLoading the shared TPC-H database ...")
    db = build_tpch_database(scale_factor=0.01,
                             tables=["customer", "orders", "lineitem"])
    specs = [
        WorkloadSpec(Workload.repeat("reports-a", tpch_query("Q13"), 4), db),
        WorkloadSpec(Workload.repeat("reports-b", tpch_query("Q13"), 4), db),
        WorkloadSpec(Workload.repeat("audit-a", tpch_query("Q4"), 2), db),
        WorkloadSpec(Workload.repeat("audit-b", tpch_query("Q4"), 2), db),
    ]

    print("Calibrating each machine and searching placements ...")
    designer = PlacementDesigner(
        fleet, specs,
        cost_model_for=lambda machine: OptimizerCostModel(
            CalibrationCache(CalibrationRunner(machine))
        ),
        controlled_resources=(ResourceKind.CPU,), grid=4,
    )
    result = designer.place()
    print()
    print(result.summary())

    print("\nDeploying across the fleet ...")
    vmm = VirtualMachineMonitor(fleet)
    designer.apply(vmm, result)
    for machine in fleet:
        tenants = ", ".join(vm.name for vm in vmm.vms_on(machine.name)) or "(idle)"
        print(f"  {machine.name}: {tenants}")


if __name__ == "__main__":
    main()
