"""Dynamic reallocation: reconfigure VMs as the workload shifts.

The paper's Section 7 next step, demonstrated: two tenants swap roles
between day (tenant A audits orders, tenant B crunches customer
reports) and night (batch roles reverse). A controller that re-solves
the design problem at each phase boundary is compared with keeping the
first design and with never designing at all.

Run with:  python examples/dynamic_reallocation.py
"""

from repro import (
    CalibrationCache,
    CalibrationRunner,
    DynamicReallocator,
    OptimizerCostModel,
    Workload,
    WorkloadPhase,
    WorkloadSpec,
    build_tpch_database,
    laboratory_machine,
    tpch_query,
)


def main() -> None:
    machine = laboratory_machine()
    print("Loading the shared TPC-H database ...")
    db = build_tpch_database(scale_factor=0.01,
                             tables=["customer", "orders", "lineitem"])

    q4, q13 = tpch_query("Q4"), tpch_query("Q13")

    def spec(name: str, sql: str, copies: int) -> WorkloadSpec:
        return WorkloadSpec(Workload.repeat(name, sql, copies), db)

    phases = [
        WorkloadPhase("day", [spec("tenant-a", q4, 2), spec("tenant-b", q13, 6)]),
        WorkloadPhase("night", [spec("tenant-a", q13, 6), spec("tenant-b", q4, 2)]),
        WorkloadPhase("day-2", [spec("tenant-a", q4, 2), spec("tenant-b", q13, 6)]),
        WorkloadPhase("night-2", [spec("tenant-a", q13, 6), spec("tenant-b", q4, 2)]),
    ]

    calibration = CalibrationCache(CalibrationRunner(machine))
    reallocator = DynamicReallocator(
        machine, OptimizerCostModel(calibration),
        algorithm="exhaustive", grid=4,
        reconfiguration_seconds=0.05,  # Xen share changes are cheap
    )
    print("Evaluating strategies over "
          f"{len(phases)} phases ({' -> '.join(p.name for p in phases)}) ...\n")
    reports = reallocator.run(phases)

    for strategy in ("static-default", "static-designed", "dynamic",
                     "triggered"):
        report = reports[strategy]
        per_phase = ", ".join(
            f"{outcome.phase_name}={outcome.total_cost:.2f}s"
            for outcome in report.outcomes
        )
        print(f"{strategy:16s} total {report.total_cost:6.2f}s "
              f"({report.reconfigurations} reconfigurations)  [{per_phase}]")

    dynamic = reports["dynamic"]
    static = reports["static-designed"]
    print(f"\nDynamic reallocation saves "
          f"{(1 - dynamic.total_cost / static.total_cost):.1%} over keeping "
          f"the day-phase design, despite paying for reconfigurations.")
    print("('triggered' is the realistic variant: it only re-designs after "
          "observing drift,\n so on this alternating schedule it lags each "
          "swap by one phase.)")
    print("Allocations chosen by the controller:")
    for outcome in dynamic.outcomes:
        shares = ", ".join(
            f"{name}: cpu={vec.cpu:.0%}"
            for name, vec in sorted(outcome.allocation.items())
        )
        marker = " (reconfigured)" if outcome.reconfigured else ""
        print(f"  {outcome.phase_name:8s} {shares}{marker}")


if __name__ == "__main__":
    main()
