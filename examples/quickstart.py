"""Quickstart: solve one virtualization design problem end to end.

Two database workloads — an I/O-bound order-auditing mix (TPC-H Q4) and
a CPU-bound customer-reporting mix (TPC-H Q13) — are to be consolidated
onto one physical machine, each in its own virtual machine. The
designer calibrates the optimizer per candidate allocation, estimates
workload costs in the virtualization-aware what-if mode, searches the
allocation space, and recommends CPU shares; the recommendation is then
validated by actually running the workloads in simulated VMs.

Run with:  python examples/quickstart.py
"""

from repro import (
    CalibrationCache,
    CalibrationRunner,
    MeasuredCostModel,
    OptimizerCostModel,
    ResourceKind,
    VirtualizationDesigner,
    VirtualizationDesignProblem,
    Workload,
    WorkloadSpec,
    build_tpch_database,
    laboratory_machine,
    tpch_query,
)


def main() -> None:
    machine = laboratory_machine()
    print(f"Physical machine: {machine.name} "
          f"({machine.memory_mib:.0f} MiB RAM, "
          f"{machine.cpu_units_per_second / 1e6:.0f}M CPU units/s)")

    print("Loading the TPC-H database (this is the workloads' data) ...")
    db = build_tpch_database(scale_factor=0.01,
                             tables=["customer", "orders", "lineitem"])

    specs = [
        WorkloadSpec(Workload.repeat("order-audit", tpch_query("Q4"), 3), db),
        WorkloadSpec(Workload.repeat("cust-report", tpch_query("Q13"), 9), db),
    ]

    print("Calibrating the optimizer per candidate allocation "
          "(cached; done once per machine) ...")
    calibration = CalibrationCache(CalibrationRunner(machine))
    problem = VirtualizationDesignProblem(
        machine=machine, specs=specs,
        controlled_resources=(ResourceKind.CPU,),  # memory/I/O split evenly
    )
    designer = VirtualizationDesigner(problem, OptimizerCostModel(calibration))

    design = designer.design("exhaustive", grid=4)
    print()
    print(design.summary())

    print("\nValidating the design with measured execution ...")
    measured = MeasuredCostModel(machine, calibration=calibration)
    for name in design.allocation.workload_names():
        spec = problem.spec(name)
        designed = measured.cost(spec, design.allocation.vector_for(name))
        default = measured.cost(spec, design.default_allocation.vector_for(name))
        print(f"  {name}: measured {designed:.3f}s under the design "
              f"vs {default:.3f}s under equal shares "
              f"({(1 - designed / default):+.1%})")


if __name__ == "__main__":
    main()
