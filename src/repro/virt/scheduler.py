"""Credit-style CPU scheduler model.

Xen's credit scheduler gives each VM a cap: a VM with CPU share ``s``
receives ``s`` of the machine's CPU time, delivered in scheduling
quanta. Two effects matter for the performance model:

1. *Proportionality*: useful CPU rate scales with ``s``.
2. *Scheduling overhead*: each time a VM is switched onto a CPU it pays
   a fixed context-switch cost, so the overhead *fraction* grows as the
   share shrinks (a small-share VM runs in short slices and pays the
   switch cost more often relative to useful work).

The scheduler also exposes a small discrete-time simulation used by the
dynamic-reallocation extension to run several VMs' CPU demands to
completion under proportional sharing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.util.errors import AllocationError
from repro.virt.machine import PhysicalMachine

#: Minimum CPU share the scheduler will enforce; below this a VM would
#: spend most of its slice on switch overhead.
MIN_CPU_SHARE = 0.01


@dataclass(frozen=True)
class CreditScheduler:
    """Maps a CPU share to an effective execution rate on a machine."""

    machine: PhysicalMachine
    #: Scheduling period in seconds: each VM receives its share of every
    #: period (Xen's default 30 ms time slice over a 3-VM rotation).
    period_seconds: float = 0.09
    #: Fixed cost of switching a VM onto a CPU, in seconds.
    switch_cost_seconds: float = 0.0003

    def overhead_fraction(self, cpu_share: float) -> float:
        """Fraction of a VM's CPU time lost to scheduling overhead."""
        if cpu_share <= 0:
            return 1.0
        share = max(cpu_share, MIN_CPU_SHARE)
        slice_seconds = share * self.period_seconds
        return min(0.9, self.switch_cost_seconds / slice_seconds)

    def effective_rate(self, cpu_share: float) -> float:
        """Useful CPU work units per second delivered at *cpu_share*.

        ``rate = capacity * share * (1 - overhead(share))``; zero share
        delivers zero rate.
        """
        if cpu_share < 0:
            raise AllocationError("cpu_share must be non-negative")
        if cpu_share == 0:
            return 0.0
        share = min(1.0, cpu_share)
        useful = 1.0 - self.overhead_fraction(share)
        return self.machine.cpu_units_per_second * share * useful

    def cpu_seconds(self, work_units: float, cpu_share: float) -> float:
        """Wall-clock seconds to execute *work_units* at *cpu_share*."""
        if work_units < 0:
            raise AllocationError("work_units must be non-negative")
        if work_units == 0:
            return 0.0
        rate = self.effective_rate(cpu_share)
        if rate <= 0:
            raise AllocationError("cannot run CPU work with a zero CPU share")
        return work_units / rate

    def simulate(self, demands: Mapping[str, float], shares: Mapping[str, float],
                 step_seconds: float = 0.05) -> Dict[str, float]:
        """Run VMs' CPU *demands* (work units) to completion concurrently.

        Uses proportional sharing with work-conserving redistribution:
        when a VM finishes, its share is redistributed among the rest
        (as Xen's credit scheduler does without caps). Returns each
        VM's completion time in seconds.
        """
        if set(demands) != set(shares):
            raise AllocationError("demands and shares must cover the same VMs")
        remaining = {vm: float(units) for vm, units in demands.items()}
        for vm, share in shares.items():
            if share < 0:
                raise AllocationError(f"negative share for {vm}")
        finish: Dict[str, float] = {}
        now = 0.0
        active = {vm for vm, units in remaining.items() if units > 0}
        for vm in set(remaining) - active:
            finish[vm] = 0.0
        while active:
            total_share = sum(shares[vm] for vm in active)
            if total_share <= 0:
                raise AllocationError("active VMs have zero total CPU share")
            progressed = False
            for vm in sorted(active):
                # Work-conserving: active VMs split the machine in
                # proportion to their configured shares.
                share = shares[vm] / total_share
                rate = self.effective_rate(share)
                done = rate * step_seconds
                if done > 0:
                    progressed = True
                remaining[vm] -= done
            now += step_seconds
            if not progressed:
                raise AllocationError("scheduler simulation made no progress")
            for vm in sorted(active):
                if remaining[vm] <= 0:
                    finish[vm] = now
            active = {vm for vm in active if remaining[vm] > 0}
        return finish
