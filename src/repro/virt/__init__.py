"""Virtualization substrate: a simulated machine-virtualization layer.

This package stands in for the Xen testbed used in the paper. It models
one physical machine whose CPU, memory, and I/O bandwidth are divided
among virtual machines by a :class:`VirtualMachineMonitor`. A VM's
resource shares determine how fast database work executes inside it via
:class:`VMPerfModel`, which converts an executor work trace into
simulated seconds.
"""

from repro.virt.resources import ResourceKind, ResourceVector, equal_share
from repro.virt.machine import PhysicalMachine
from repro.virt.scheduler import CreditScheduler
from repro.virt.vm import VirtualMachine, VMConfig, VMImage, VMState
from repro.virt.monitor import VirtualMachineMonitor
from repro.virt.health import HealthMonitor, RecoveryAction
from repro.virt.perf import VMPerfModel
from repro.virt.colocation import (
    ColocationResult,
    ColocationSimulator,
    StatementDemand,
    TenantTimeline,
    timeline_from_runs,
)

__all__ = [
    "ResourceKind",
    "ResourceVector",
    "equal_share",
    "PhysicalMachine",
    "CreditScheduler",
    "VirtualMachine",
    "VMConfig",
    "VMImage",
    "VMState",
    "VirtualMachineMonitor",
    "HealthMonitor",
    "RecoveryAction",
    "VMPerfModel",
    "ColocationResult",
    "ColocationSimulator",
    "StatementDemand",
    "TenantTimeline",
    "timeline_from_runs",
]
