"""Concurrent co-located execution of several VMs on one host.

The paper measures each workload separately under *capped* shares: a VM
gets exactly its fraction of each resource whether or not the other VMs
are busy, which makes per-VM times independent of co-runners. Xen's
credit scheduler also offers a *work-conserving* mode (weights without
caps) where idle capacity is redistributed to whoever can use it.

This module simulates both modes for CPU and the disk: each VM executes
its statements serially, alternating between a CPU phase and an I/O
phase per statement (as row engines do at this granularity), while
phases of different VMs overlap and contend. Time advances in fixed
steps; within a step, each contended resource is divided among the VMs
demanding it — proportionally to their shares, either over all VMs
(capped) or over the *demanding* VMs only (work-conserving).

Used by the E5 benchmark to quantify how much of the virtualization
design's benefit survives when the hypervisor is work-conserving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.engine.trace import WorkTrace
from repro.util.errors import AllocationError
from repro.virt.machine import PhysicalMachine
from repro.virt.resources import ResourceVector


@dataclass
class StatementDemand:
    """One statement's resource demand, extracted from a work trace."""

    cpu_units: float
    io_seconds_at_full_speed: float

    @classmethod
    def from_trace(cls, trace: WorkTrace,
                   machine: PhysicalMachine) -> "StatementDemand":
        physical_reads = trace.seq_page_reads + trace.random_page_reads
        cpu_units = trace.cpu_units \
            + physical_reads * machine.hypervisor_page_overhead_units
        io_seconds = (
            trace.seq_page_reads * machine.seq_page_read_seconds
            + trace.random_page_reads * machine.random_page_read_seconds
            + trace.page_writes * machine.seq_page_read_seconds
        )
        return cls(cpu_units=cpu_units, io_seconds_at_full_speed=io_seconds)


@dataclass
class TenantTimeline:
    """One VM's statements and shares for a co-location run."""

    name: str
    shares: ResourceVector
    statements: List[StatementDemand]


@dataclass
class ColocationResult:
    """Per-tenant completion times under one scheduling mode."""

    mode: str
    completion_seconds: Dict[str, float] = field(default_factory=dict)
    makespan_seconds: float = 0.0


class _TenantState:
    __slots__ = ("timeline", "index", "cpu_left", "io_left", "finished_at")

    def __init__(self, timeline: TenantTimeline):
        self.timeline = timeline
        self.index = 0
        self.finished_at: Optional[float] = None
        self._load_statement()

    def _load_statement(self) -> None:
        statements = self.timeline.statements
        if self.index < len(statements):
            demand = statements[self.index]
            self.cpu_left = demand.cpu_units
            self.io_left = demand.io_seconds_at_full_speed
        else:
            self.cpu_left = 0.0
            self.io_left = 0.0

    @property
    def done(self) -> bool:
        return self.index >= len(self.timeline.statements)

    @property
    def wants_cpu(self) -> bool:
        return not self.done and self.cpu_left > 0

    @property
    def wants_io(self) -> bool:
        return not self.done and self.cpu_left <= 0 and self.io_left > 0

    def advance(self) -> None:
        """Move to the next statement when the current one is finished."""
        while not self.done and self.cpu_left <= 0 and self.io_left <= 0:
            self.index += 1
            self._load_statement()


class ColocationSimulator:
    """Runs several tenants' timelines concurrently on one machine."""

    def __init__(self, machine: PhysicalMachine, step_seconds: float = 0.002,
                 max_seconds: float = 3600.0):
        if step_seconds <= 0:
            raise AllocationError("step_seconds must be positive")
        self._machine = machine
        self._step = step_seconds
        self._max_seconds = max_seconds

    def run(self, timelines: Sequence[TenantTimeline],
            work_conserving: bool = False) -> ColocationResult:
        """Simulate all tenants to completion.

        *work_conserving* selects Xen's weight mode: a resource is split
        among the VMs currently demanding it, so idle shares are
        redistributed. Otherwise shares act as hard caps.
        """
        if not timelines:
            raise AllocationError("nothing to simulate")
        states = {t.name: _TenantState(t) for t in timelines}
        for state in states.values():
            state.advance()
        now = 0.0
        mode = "work-conserving" if work_conserving else "capped"

        while any(not s.done for s in states.values()):
            if now > self._max_seconds:
                raise AllocationError(
                    f"co-location simulation exceeded {self._max_seconds}s"
                )
            cpu_demanders = [s for s in states.values() if s.wants_cpu]
            io_demanders = [s for s in states.values() if s.wants_io]

            for demanders, is_cpu in ((cpu_demanders, True),
                                      (io_demanders, False)):
                if not demanders:
                    continue
                share_of = {
                    s.timeline.name: (
                        s.timeline.shares.cpu if is_cpu else s.timeline.shares.io
                    )
                    for s in demanders
                }
                if work_conserving:
                    total = sum(share_of.values())
                    if total <= 0:
                        raise AllocationError("demanding VMs have zero shares")
                    share_of = {k: v / total for k, v in share_of.items()}
                for state in demanders:
                    fraction = share_of[state.timeline.name]
                    if is_cpu:
                        rate = self._machine.cpu_units_per_second * fraction
                        state.cpu_left -= rate * self._step
                    else:
                        state.io_left -= fraction * self._step

            now += self._step
            for state in states.values():
                state.advance()
                if state.done and state.finished_at is None:
                    state.finished_at = now

        result = ColocationResult(mode=mode)
        for name, state in states.items():
            result.completion_seconds[name] = state.finished_at or 0.0
        result.makespan_seconds = max(result.completion_seconds.values())
        return result


def timeline_from_runs(name: str, shares: ResourceVector,
                       traces: Sequence[WorkTrace],
                       machine: PhysicalMachine) -> TenantTimeline:
    """Build a tenant timeline from measured statement traces."""
    return TenantTimeline(
        name=name, shares=shares,
        statements=[StatementDemand.from_trace(t, machine) for t in traces],
    )
