"""Virtual machines and virtual machine images (appliances).

A :class:`VirtualMachine` owns a :class:`ResourceVector` of shares on a
:class:`PhysicalMachine` and exposes the *effective* resources a guest
sees: a CPU execution rate (through the credit scheduler), an amount of
guest memory, and scaled I/O service times. A guest object — in this
library a :class:`repro.engine.database.Database` — can be attached to
the VM; snapshotting the VM captures both configuration and guest
state, reproducing the paper's "database appliance" deployment story.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, replace
from enum import Enum
from typing import Any, Optional

from repro.util.errors import AdmissionError, AllocationError
from repro.util.units import mib_to_pages
from repro.virt.machine import PhysicalMachine
from repro.virt.resources import ResourceKind, ResourceVector
from repro.virt.scheduler import CreditScheduler

#: Fraction of a VM's memory reserved for the guest OS and the database
#: server's non-buffer memory; the rest backs the buffer pool.
GUEST_OS_MEMORY_FRACTION = 0.20

#: A VM cannot be configured with less guest memory than this (MiB).
MIN_GUEST_MEMORY_MIB = 4.0

_vm_ids = itertools.count(1)


class VMState(str, Enum):
    """Lifecycle state of a virtual machine."""

    CREATED = "created"
    RUNNING = "running"
    PAUSED = "paused"
    STOPPED = "stopped"
    FAILED = "failed"


@dataclass(frozen=True)
class VMConfig:
    """Static configuration of a virtual machine."""

    name: str
    shares: ResourceVector

    def with_shares(self, shares: ResourceVector) -> "VMConfig":
        return replace(self, shares=shares)


@dataclass(frozen=True)
class VMImage:
    """A saved virtual machine image (a software appliance).

    Holds a deep copy of the guest, so an image can be deployed many
    times ("copy the virtual machine image and start the saved virtual
    machine") without the instances sharing state.
    """

    config: VMConfig
    guest_snapshot: Any = None

    def instantiate_guest(self) -> Any:
        """A fresh, independent copy of the saved guest state."""
        return copy.deepcopy(self.guest_snapshot)


class VirtualMachine:
    """One virtual machine placed on a physical host."""

    def __init__(self, machine: PhysicalMachine, config: VMConfig,
                 scheduler: Optional[CreditScheduler] = None):
        self._machine = machine
        self._config = config
        self._scheduler = scheduler or CreditScheduler(machine)
        self._state = VMState.CREATED
        self._guest: Any = None
        self._failure_reason: Optional[str] = None
        self.vm_id = next(_vm_ids)
        self._validate_shares(config.shares)

    # -- configuration -------------------------------------------------

    @staticmethod
    def _validate_shares(shares: ResourceVector) -> None:
        for kind in (ResourceKind.CPU, ResourceKind.MEMORY, ResourceKind.IO):
            if shares.share(kind) < 0:
                raise AllocationError(f"negative {kind} share")

    @property
    def machine(self) -> PhysicalMachine:
        return self._machine

    @property
    def config(self) -> VMConfig:
        return self._config

    @property
    def name(self) -> str:
        return self._config.name

    @property
    def shares(self) -> ResourceVector:
        return self._config.shares

    @property
    def state(self) -> VMState:
        return self._state

    @property
    def scheduler(self) -> CreditScheduler:
        return self._scheduler

    def set_shares(self, shares: ResourceVector) -> None:
        """Reconfigure resource shares at run time (Xen allows this)."""
        self._validate_shares(shares)
        self._config = self._config.with_shares(shares)
        self._notify_guest_memory_changed()

    # -- effective resources -------------------------------------------

    @property
    def memory_mib(self) -> float:
        """Guest memory in MiB implied by the memory share."""
        return self._machine.memory_for_share(self.shares.memory)

    @property
    def buffer_pool_pages(self) -> int:
        """Pages of guest memory available to the database buffer pool."""
        usable_mib = max(
            0.0, self.memory_mib * (1.0 - GUEST_OS_MEMORY_FRACTION)
        )
        return mib_to_pages(usable_mib)

    def cpu_rate(self) -> float:
        """Useful CPU work units per second at the current CPU share."""
        return self._scheduler.effective_rate(self.shares.cpu)

    def seq_page_read_seconds(self) -> float:
        """Seconds per sequential page read at the current I/O share."""
        share = self.shares.io
        if share <= 0:
            raise AllocationError(f"VM {self.name} has no I/O share")
        return self._machine.seq_page_read_seconds / share

    def random_page_read_seconds(self) -> float:
        """Seconds per random page read at the current I/O share."""
        share = self.shares.io
        if share <= 0:
            raise AllocationError(f"VM {self.name} has no I/O share")
        return self._machine.random_page_read_seconds / share

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        if self._state == VMState.RUNNING:
            return
        if self.memory_mib < MIN_GUEST_MEMORY_MIB:
            raise AdmissionError(
                f"VM {self.name} has {self.memory_mib:.0f} MiB guest memory; "
                f"at least {MIN_GUEST_MEMORY_MIB:.0f} MiB is required to boot"
            )
        self._state = VMState.RUNNING

    def pause(self) -> None:
        if self._state != VMState.RUNNING:
            raise AdmissionError(f"cannot pause VM {self.name} in state {self._state}")
        self._state = VMState.PAUSED

    def resume(self) -> None:
        if self._state != VMState.PAUSED:
            raise AdmissionError(f"cannot resume VM {self.name} in state {self._state}")
        self._state = VMState.RUNNING

    def stop(self) -> None:
        self._state = VMState.STOPPED
        self._failure_reason = None

    # -- failure and recovery ----------------------------------------------

    @property
    def is_alive(self) -> bool:
        """Whether the VM is doing (or could resume doing) useful work."""
        return self._state in (VMState.RUNNING, VMState.PAUSED)

    @property
    def failure_reason(self) -> Optional[str]:
        """Why the VM failed, while it is in ``FAILED`` state."""
        return self._failure_reason

    def fail(self, reason: str = "crashed") -> None:
        """Mark a live VM as crashed (watchdog or injector verdict)."""
        if self._state not in (VMState.RUNNING, VMState.PAUSED):
            raise AdmissionError(
                f"cannot fail VM {self.name} in state {self._state}")
        self._state = VMState.FAILED
        self._failure_reason = reason

    def restart(self) -> None:
        """Bring a failed or stopped VM back to ``RUNNING``.

        Re-checks the guest-memory boot floor, exactly like a fresh
        :meth:`start` — recovery must not resurrect a VM whose
        allocation could no longer boot.
        """
        if self._state not in (VMState.FAILED, VMState.STOPPED):
            raise AdmissionError(
                f"cannot restart VM {self.name} in state {self._state}")
        self._state = VMState.CREATED
        self._failure_reason = None
        self.start()

    # -- guest -----------------------------------------------------------

    def attach_guest(self, guest: Any) -> None:
        """Attach a guest (e.g. a Database); sizes it to this VM's memory."""
        self._guest = guest
        self._notify_guest_memory_changed()

    @property
    def guest(self) -> Any:
        return self._guest

    def _notify_guest_memory_changed(self) -> None:
        guest = self._guest
        if guest is not None and hasattr(guest, "resize_memory"):
            guest.resize_memory(self.buffer_pool_pages)

    # -- images ------------------------------------------------------------

    def snapshot(self) -> VMImage:
        """Save this VM as a redeployable image (config + guest state)."""
        return VMImage(config=self._config, guest_snapshot=copy.deepcopy(self._guest))

    @classmethod
    def from_image(cls, machine: PhysicalMachine, image: VMImage,
                   name: Optional[str] = None,
                   scheduler: Optional[CreditScheduler] = None) -> "VirtualMachine":
        """Deploy an image onto *machine*, optionally renamed."""
        config = image.config
        if name is not None:
            config = replace(config, name=name)
        vm = cls(machine, config, scheduler=scheduler)
        vm.attach_guest(image.instantiate_guest())
        return vm

    def __repr__(self) -> str:
        return (
            f"VirtualMachine(name={self.name!r}, state={self._state.value}, "
            f"shares={self.shares!r})"
        )
