"""Watchdog supervision of VMs and hosts (the health monitor).

Production deployments of the paper's framework cannot assume the
testbed stays up for the length of a "fairly lengthy" calibration: VMs
crash, hosts lose capacity, migrations fail. The
:class:`HealthMonitor` is the watchdog that notices — it probes every
registered VM and every host on the simulated clock, marks failures
through the :class:`~repro.virt.monitor.VirtualMachineMonitor`, and
executes one of three recovery policies:

* **restart-in-place** — a crashed VM is restarted on its host, with
  its guest restored from the snapshot image taken at registration
  (the paper's redeploy-the-appliance story applied to recovery);
* **migrate-on-host-degrade** — when a host's capacity factor drops
  below its allocated shares, VMs are live-migrated (smallest first)
  to hosts with room until the degraded host fits its remaining load;
* **evict-and-requeue** — when no host can take a displaced VM, it is
  destroyed and parked on a requeue list; later probes readmit it as
  soon as capacity reappears.

All probe outcomes come from the :class:`~repro.faults.FaultInjector`'s
dedicated *ops* randomness stream, so a supervised run is exactly as
deterministic as an unsupervised one, and every action is recorded on
:attr:`HealthMonitor.actions` and the ``resilience.recovery`` metric.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs import metrics
from repro.virt.monitor import VirtualMachineMonitor
from repro.virt.resources import ALL_RESOURCES
from repro.virt.vm import VMImage, VMState

#: Give up migrating a displaced VM after this many failed attempts in
#: one probe and evict it instead.
MAX_MIGRATION_ATTEMPTS = 3


@dataclass(frozen=True)
class RecoveryAction:
    """One recovery decision taken by the watchdog (journal-friendly)."""

    time_seconds: float
    subject: str  #: VM or host name the action concerns.
    event: str  #: ``vm_crash`` | ``host_degrade`` | ``requeue``.
    action: str  #: ``restart`` | ``migrate`` | ``evict`` | ``readmit``.
    detail: str = ""

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RecoveryAction":
        return cls(
            time_seconds=float(data["time_seconds"]),
            subject=str(data["subject"]),
            event=str(data["event"]),
            action=str(data["action"]),
            detail=str(data.get("detail", "")),
        )


class HealthMonitor:
    """Probes VM/host liveness and executes recovery policies."""

    def __init__(self, vmm: VirtualMachineMonitor, injector=None,
                 probe_interval_seconds: float = 1.0):
        self._vmm = vmm
        self._injector = injector
        self._interval = float(probe_interval_seconds)
        self._clock = 0.0
        self._images: Dict[str, VMImage] = {}
        #: VMs evicted for lack of capacity, awaiting readmission
        #: (name -> snapshot image taken at eviction time).
        self.requeued: List[Tuple[str, VMImage]] = []
        self.actions: List[RecoveryAction] = []

    # -- registration ------------------------------------------------------

    def register(self, vm_name: str) -> None:
        """Put a VM under watch; snapshots it for restart-in-place."""
        vm = self._vmm.vms[vm_name]
        self._images[vm_name] = vm.snapshot()

    @property
    def watched(self) -> Tuple[str, ...]:
        return tuple(sorted(self._images))

    @property
    def clock_seconds(self) -> float:
        """Simulated seconds this watchdog has spent probing."""
        return self._clock

    # -- the watchdog pass -------------------------------------------------

    def probe(self) -> List[RecoveryAction]:
        """One watchdog pass; returns the recovery actions it took.

        Order is deterministic: hosts are probed (and relieved) first in
        name order, then VM liveness in name order, then requeued VMs
        are offered readmission in eviction order.
        """
        self._clock += self._interval
        metrics.counter("sim.seconds", source="watchdog").inc(self._interval)
        taken: List[RecoveryAction] = []
        for host in sorted(self._vmm.machines):
            taken.extend(self._probe_host(host))
        for name in self.watched:
            taken.extend(self._probe_vm(name))
        taken.extend(self._readmit())
        self.actions.extend(taken)
        return taken

    # -- host policy: migrate, then evict ----------------------------------

    def _probe_host(self, host: str) -> List[RecoveryAction]:
        actions: List[RecoveryAction] = []
        if self._injector is not None:
            factor = self._injector.on_host_probe(host)
            if factor is not None:
                new_factor = self._vmm.degrade_host(host, factor)
                actions.append(self._record(
                    host, "host_degrade", "degrade",
                    f"capacity factor now {new_factor:.3f}"))
        # Relief reacts to the VMM's actual state, so externally applied
        # degradation (vmm.degrade_host) is handled the same way.
        actions.extend(self._relieve_host(host))
        return actions

    def _relieve_host(self, host: str) -> List[RecoveryAction]:
        """Migrate (or evict) VMs until *host* fits its allocation."""
        actions: List[RecoveryAction] = []
        while self._overcommitted(host):
            victim = self._pick_victim(host)
            if victim is None:
                break
            actions.append(self._displace(victim, host))
        return actions

    def _overcommitted(self, host: str) -> bool:
        allocated = self._vmm.allocated_shares(host)
        ceiling = self._vmm.host_capacity_factor(host)
        return any(allocated[kind] > ceiling + 1e-9 for kind in ALL_RESOURCES)

    def _pick_victim(self, host: str) -> Optional[str]:
        """The smallest VM on *host* (least disruptive to move)."""
        vms = self._vmm.vms_on(host)
        if not vms:
            return None
        vms.sort(key=lambda vm: (sum(vm.shares.as_tuple()), vm.name))
        return vms[0].name

    def _displace(self, name: str, source: str) -> RecoveryAction:
        vm = self._vmm.vms[name]
        for target in sorted(self._vmm.machines):
            if target == source:
                continue
            if not self._fits(target, vm):
                continue
            for attempt in range(1, MAX_MIGRATION_ATTEMPTS + 1):
                if (self._injector is not None
                        and self._injector.on_migration(name, source, target)):
                    continue  # this attempt failed; retry
                downtime = self._vmm.migrate(name, target)
                self._clock += downtime
                metrics.counter("sim.seconds", source="migration").inc(downtime)
                return self._record(
                    name, "host_degrade", "migrate",
                    f"{source} -> {target} ({downtime:.3f}s downtime, "
                    f"attempt {attempt})")
        # No target (or every attempt failed): evict and requeue.
        image = vm.snapshot()
        self.requeued.append((name, image))
        self._images.pop(name, None)
        self._vmm.destroy_vm(name)
        return self._record(name, "host_degrade", "evict",
                            f"no capacity after leaving {source}")

    def _fits(self, host: str, vm) -> bool:
        allocated = self._vmm.allocated_shares(host)
        ceiling = self._vmm.host_capacity_factor(host)
        return all(
            allocated[kind] + vm.shares.share(kind) <= ceiling + 1e-9
            for kind in ALL_RESOURCES
        )

    # -- VM policy: restart in place ----------------------------------------

    def _probe_vm(self, name: str) -> List[RecoveryAction]:
        vm = self._vmm.vms.get(name)
        if vm is None:
            return []
        if vm.state == VMState.RUNNING and self._injector is not None:
            if self._injector.on_vm_probe(name):
                self._vmm.mark_failed(name, reason="watchdog probe")
        if vm.state != VMState.FAILED:
            return []
        reason = vm.failure_reason or "unknown"
        self._vmm.restart_vm(name, image=self._images.get(name))
        return [self._record(name, "vm_crash", "restart",
                             f"snapshot restored ({reason})")]

    # -- requeue policy: readmit when capacity returns -----------------------

    def _readmit(self) -> List[RecoveryAction]:
        actions: List[RecoveryAction] = []
        still_waiting: List[Tuple[str, VMImage]] = []
        for name, image in self.requeued:
            host = self._host_with_room(image)
            if host is None:
                still_waiting.append((name, image))
                continue
            self._vmm.deploy_image(image, name, machine_name=host)
            self._images[name] = image
            actions.append(self._record(name, "requeue", "readmit",
                                        f"redeployed on {host}"))
        self.requeued = still_waiting
        return actions

    def _host_with_room(self, image: VMImage) -> Optional[str]:
        for host in sorted(self._vmm.machines):
            allocated = self._vmm.allocated_shares(host)
            ceiling = self._vmm.host_capacity_factor(host)
            if all(
                allocated[kind] + image.config.shares.share(kind)
                <= ceiling + 1e-9
                for kind in ALL_RESOURCES
            ):
                return host
        return None

    # -- bookkeeping ---------------------------------------------------------

    def _record(self, subject: str, event: str, action: str,
                detail: str) -> RecoveryAction:
        metrics.counter("resilience.recovery", action=action).inc()
        return RecoveryAction(time_seconds=self._clock, subject=subject,
                              event=event, action=action, detail=detail)

    def __repr__(self) -> str:
        return (
            f"HealthMonitor(watched={list(self.watched)}, "
            f"actions={len(self.actions)}, requeued={len(self.requeued)})"
        )
