"""The physical machine model.

Capacities are expressed in simulation units:

* CPU: abstract work units per second. The executor accounts CPU work
  in the same units, so ``cpu_seconds = units / (capacity * share)``.
* Memory: mebibytes; a VM's memory share determines its buffer pool.
* I/O: sequential bandwidth (MiB/s) and random operations per second,
  both divided among VMs by their I/O share.

The default capacities are loosely modeled on the paper's testbed (two
2.8 GHz Xeons, 4 GiB RAM, a single SCSI disk) so simulated times land
in a familiar range; absolute values only need to be self-consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.errors import AllocationError
from repro.util.units import MIB, PAGE_SIZE


@dataclass(frozen=True)
class PhysicalMachine:
    """Capacities of one physical host shared by virtual machines."""

    name: str = "host0"
    #: Aggregate CPU capacity in abstract work units per second.
    cpu_units_per_second: float = 250_000_000.0
    #: Total RAM available to guests, in MiB.
    memory_mib: float = 4096.0
    #: Sequential disk bandwidth in MiB/s.
    io_seq_mib_per_second: float = 60.0
    #: Random I/O operations per second (seek-bound reads).
    io_random_ops_per_second: float = 130.0
    #: Number of physical CPUs (used by the credit scheduler model).
    n_cpus: int = 2
    #: Fixed per-page CPU cost of faulting a page into a guest, in work
    #: units; models hypervisor page-flip overhead.
    hypervisor_page_overhead_units: float = 400.0

    def __post_init__(self) -> None:
        if self.cpu_units_per_second <= 0:
            raise AllocationError("cpu_units_per_second must be positive")
        if self.memory_mib <= 0:
            raise AllocationError("memory_mib must be positive")
        if self.io_seq_mib_per_second <= 0 or self.io_random_ops_per_second <= 0:
            raise AllocationError("I/O capacities must be positive")
        if self.n_cpus <= 0:
            raise AllocationError("n_cpus must be positive")

    @property
    def seq_page_read_seconds(self) -> float:
        """Seconds to read one page sequentially at full I/O allocation."""
        return PAGE_SIZE / (self.io_seq_mib_per_second * MIB)

    @property
    def random_page_read_seconds(self) -> float:
        """Seconds for one random page read at full I/O allocation."""
        return 1.0 / self.io_random_ops_per_second

    def memory_for_share(self, share: float) -> float:
        """MiB of RAM a VM receives for a memory share."""
        if share < 0:
            raise AllocationError("memory share must be non-negative")
        return self.memory_mib * share

    def scaled(self, factor: float, name: str = None) -> "PhysicalMachine":
        """A copy of this machine with throughput scaled by *factor*.

        CPU and both I/O capacities scale; memory, CPU count, and the
        per-page hypervisor overhead do not — a host twice as fast
        finishes work in half the time but does not hold more pages.
        Used by the fleet layer to model heterogeneous hardware
        generations relative to one reference machine.
        """
        if factor <= 0:
            raise AllocationError("scale factor must be positive")
        return replace(
            self,
            name=self.name if name is None else name,
            cpu_units_per_second=self.cpu_units_per_second * factor,
            io_seq_mib_per_second=self.io_seq_mib_per_second * factor,
            io_random_ops_per_second=self.io_random_ops_per_second * factor,
        )


def laboratory_machine() -> PhysicalMachine:
    """The scaled-down host all reproduction experiments run on.

    The paper's testbed held a 4 GB database in 4 GB of RAM — memory
    pressure at full scale. A pure-Python engine cannot hold 4 GB, so
    the lab host shrinks memory to keep the *ratio* of database size to
    RAM in the same regime at TPC-H scale factors around 0.01: the large
    tables (lineitem) exceed any VM's buffer pool while the small ones
    (orders, customer) fit at moderate memory shares, which is exactly
    the structure the paper's Q4/Q13 experiment exploits.
    """
    return PhysicalMachine(
        name="lab",
        cpu_units_per_second=250_000_000.0,
        memory_mib=20.0,
        io_seq_mib_per_second=60.0,
        io_random_ops_per_second=130.0,
        n_cpus=2,
    )
