"""Resource kinds and per-VM resource share vectors.

The paper controls ``m`` physical resources per virtual machine; the
ones Xen exposes and the paper names are CPU, memory, and I/O
bandwidth. A :class:`ResourceVector` is the paper's ``R_i``: the
fraction of each resource allocated to one VM/workload.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Iterable, Mapping

from repro.util.errors import AllocationError

#: Shares are fractions in [0, 1]; comparisons use this tolerance.
SHARE_EPSILON = 1e-9


class ResourceKind(str, Enum):
    """A controllable physical resource."""

    CPU = "cpu"
    MEMORY = "memory"
    IO = "io"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Resources in canonical order, used when vectors are flattened.
ALL_RESOURCES = (ResourceKind.CPU, ResourceKind.MEMORY, ResourceKind.IO)


class ResourceVector:
    """An immutable mapping from :class:`ResourceKind` to a share in [0, 1].

    This is the ``R_i`` of the paper's formulation. Resources absent
    from the mapping default to share 0, except when the vector is
    constructed through :meth:`full` or :func:`equal_share`.
    """

    __slots__ = ("_shares",)

    def __init__(self, shares: Mapping[ResourceKind, float]):
        validated: Dict[ResourceKind, float] = {}
        for kind, share in shares.items():
            kind = ResourceKind(kind)
            share = float(share)
            if share < -SHARE_EPSILON or share > 1 + SHARE_EPSILON:
                raise AllocationError(
                    f"share for {kind} must be in [0, 1], got {share}"
                )
            validated[kind] = min(1.0, max(0.0, share))
        self._shares = validated

    @classmethod
    def of(cls, cpu: float = 0.0, memory: float = 0.0, io: float = 0.0) -> "ResourceVector":
        """Convenience constructor with keyword shares."""
        return cls(
            {
                ResourceKind.CPU: cpu,
                ResourceKind.MEMORY: memory,
                ResourceKind.IO: io,
            }
        )

    @classmethod
    def full(cls) -> "ResourceVector":
        """All resources fully allocated (a dedicated machine)."""
        return cls({kind: 1.0 for kind in ALL_RESOURCES})

    def share(self, kind: ResourceKind) -> float:
        """The fraction of *kind* in this vector (0 if absent)."""
        return self._shares.get(ResourceKind(kind), 0.0)

    @property
    def cpu(self) -> float:
        return self.share(ResourceKind.CPU)

    @property
    def memory(self) -> float:
        return self.share(ResourceKind.MEMORY)

    @property
    def io(self) -> float:
        return self.share(ResourceKind.IO)

    def kinds(self) -> Iterable[ResourceKind]:
        """Resource kinds with an explicit (possibly zero) share."""
        return tuple(self._shares.keys())

    def with_share(self, kind: ResourceKind, share: float) -> "ResourceVector":
        """A copy of this vector with *kind* set to *share*."""
        updated = dict(self._shares)
        updated[ResourceKind(kind)] = share
        return ResourceVector(updated)

    def scaled(self, factor: float) -> "ResourceVector":
        """A copy with every share multiplied by *factor* (clamped to 1)."""
        return ResourceVector(
            {kind: min(1.0, share * factor) for kind, share in self._shares.items()}
        )

    def as_tuple(self) -> tuple:
        """Shares in canonical (cpu, memory, io) order."""
        return tuple(self.share(kind) for kind in ALL_RESOURCES)

    def __eq__(self, other) -> bool:
        if not isinstance(other, ResourceVector):
            return NotImplemented
        return all(
            abs(self.share(kind) - other.share(kind)) <= SHARE_EPSILON
            for kind in ALL_RESOURCES
        )

    def __hash__(self) -> int:
        return hash(tuple(round(s, 9) for s in self.as_tuple()))

    def __repr__(self) -> str:
        parts = ", ".join(f"{kind.value}={self.share(kind):.3f}" for kind in ALL_RESOURCES)
        return f"ResourceVector({parts})"


def equal_share(n_vms: int) -> ResourceVector:
    """The default allocation: every resource split evenly among *n_vms* VMs."""
    if n_vms <= 0:
        raise AllocationError("n_vms must be positive")
    share = 1.0 / n_vms
    return ResourceVector({kind: share for kind in ALL_RESOURCES})


def total_shares(vectors: Iterable[ResourceVector]) -> ResourceVector:
    """Element-wise sum of share vectors (may exceed 1; callers validate)."""
    totals = {kind: 0.0 for kind in ALL_RESOURCES}
    for vector in vectors:
        for kind in ALL_RESOURCES:
            totals[kind] += vector.share(kind)
    # Bypass the [0, 1] validation: a sum is a diagnostic quantity.
    result = ResourceVector.of()
    result._shares = totals  # noqa: SLF001 - internal constructor shortcut
    return result
