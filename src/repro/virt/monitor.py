"""The virtual machine monitor (hypervisor control plane).

The :class:`VirtualMachineMonitor` owns the mapping from virtual to
physical resources on one or more hosts: it admits VMs, enforces that
the shares of each resource allocated on a host sum to at most 1,
reconfigures shares at run time, and migrates VMs between hosts —
the capabilities the paper lists for Xen/VMware-class virtualization
layers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

from repro.util.errors import AdmissionError, AllocationError
from repro.virt.machine import PhysicalMachine
from repro.virt.resources import (
    ALL_RESOURCES,
    SHARE_EPSILON,
    ResourceKind,
    ResourceVector,
)
from repro.virt.scheduler import CreditScheduler
from repro.virt.vm import VirtualMachine, VMConfig, VMImage, VMState


class VirtualMachineMonitor:
    """Admission control and resource allocation over physical hosts."""

    def __init__(self, machines: Iterable[PhysicalMachine]):
        self._machines: Dict[str, PhysicalMachine] = {}
        for machine in machines:
            if machine.name in self._machines:
                raise AllocationError(f"duplicate machine name {machine.name!r}")
            self._machines[machine.name] = machine
        if not self._machines:
            raise AllocationError("a VMM needs at least one physical machine")
        self._placements: Dict[str, str] = {}  # vm name -> machine name
        self._vms: Dict[str, VirtualMachine] = {}
        self._schedulers: Dict[str, CreditScheduler] = {
            name: CreditScheduler(machine) for name, machine in self._machines.items()
        }
        #: Remaining capacity fraction per host (1.0 = healthy). A
        #: degraded host's share ceiling drops below 1, so admission and
        #: reallocation refuse to fill capacity that no longer exists.
        self._capacity_factors: Dict[str, float] = {
            name: 1.0 for name in self._machines
        }

    @classmethod
    def single_host(cls, machine: Optional[PhysicalMachine] = None) -> "VirtualMachineMonitor":
        """A VMM managing one host (the paper's consolidation scenario)."""
        return cls([machine or PhysicalMachine()])

    # -- inventory -------------------------------------------------------

    @property
    def machines(self) -> Mapping[str, PhysicalMachine]:
        return dict(self._machines)

    @property
    def vms(self) -> Mapping[str, VirtualMachine]:
        return dict(self._vms)

    def vms_on(self, machine_name: str) -> List[VirtualMachine]:
        """VMs currently placed on *machine_name*."""
        self._machine(machine_name)
        return [
            self._vms[vm] for vm, host in self._placements.items() if host == machine_name
        ]

    def _machine(self, name: str) -> PhysicalMachine:
        try:
            return self._machines[name]
        except KeyError:
            raise AllocationError(f"unknown machine {name!r}") from None

    # -- admission control -------------------------------------------------

    def allocated_shares(self, machine_name: str,
                         excluding: Optional[str] = None) -> Dict[ResourceKind, float]:
        """Total shares of each resource already granted on a host."""
        totals = {kind: 0.0 for kind in ALL_RESOURCES}
        for vm in self.vms_on(machine_name):
            if excluding is not None and vm.name == excluding:
                continue
            for kind in ALL_RESOURCES:
                totals[kind] += vm.shares.share(kind)
        return totals

    def _check_capacity(self, machine_name: str, shares: ResourceVector,
                        excluding: Optional[str] = None) -> None:
        allocated = self.allocated_shares(machine_name, excluding=excluding)
        ceiling = self._capacity_factors[machine_name]
        for kind in ALL_RESOURCES:
            total = allocated[kind] + shares.share(kind)
            if total > ceiling + SHARE_EPSILON:
                raise AdmissionError(
                    f"{kind} oversubscribed on {machine_name}: "
                    f"{total:.3f} > {ceiling:.3f}"
                )

    # -- host health -------------------------------------------------------

    def host_capacity_factor(self, machine_name: str) -> float:
        """Remaining capacity fraction of a host (1.0 when healthy)."""
        self._machine(machine_name)
        return self._capacity_factors[machine_name]

    def degrade_host(self, machine_name: str, factor: float) -> float:
        """Multiply a host's remaining capacity by *factor* (in (0, 1)).

        Already-admitted VMs keep their shares (a degraded host does not
        kill its tenants); only *new* admissions and reconfigurations see
        the lower ceiling. Returns the new capacity factor.
        """
        self._machine(machine_name)
        if not 0.0 < factor < 1.0:
            raise AllocationError(
                f"degrade factor {factor} outside (0, 1) for {machine_name!r}")
        self._capacity_factors[machine_name] *= factor
        return self._capacity_factors[machine_name]

    def restore_host(self, machine_name: str) -> None:
        """Return a host to full health (capacity factor 1.0)."""
        self._machine(machine_name)
        self._capacity_factors[machine_name] = 1.0

    # -- lifecycle ------------------------------------------------------------

    def create_vm(self, name: str, shares: ResourceVector,
                  machine_name: Optional[str] = None) -> VirtualMachine:
        """Create (but do not start) a VM with *shares* on a host."""
        if name in self._vms:
            raise AdmissionError(f"a VM named {name!r} already exists")
        if machine_name is None:
            machine_name = next(iter(self._machines))
        machine = self._machine(machine_name)
        self._check_capacity(machine_name, shares)
        vm = VirtualMachine(machine, VMConfig(name=name, shares=shares),
                            scheduler=self._schedulers[machine_name])
        self._vms[name] = vm
        self._placements[name] = machine_name
        return vm

    def deploy_image(self, image: VMImage, name: str,
                     machine_name: Optional[str] = None,
                     shares: Optional[ResourceVector] = None) -> VirtualMachine:
        """Deploy a saved appliance image as a new VM and start it."""
        if name in self._vms:
            raise AdmissionError(f"a VM named {name!r} already exists")
        if machine_name is None:
            machine_name = next(iter(self._machines))
        machine = self._machine(machine_name)
        effective = shares or image.config.shares
        self._check_capacity(machine_name, effective)
        vm = VirtualMachine.from_image(machine, image, name=name,
                                       scheduler=self._schedulers[machine_name])
        if shares is not None:
            vm.set_shares(shares)
        self._vms[name] = vm
        self._placements[name] = machine_name
        vm.start()
        return vm

    def destroy_vm(self, name: str) -> None:
        """Stop and remove a VM, releasing its shares."""
        vm = self._vm(name)
        vm.stop()
        del self._vms[name]
        del self._placements[name]

    def _vm(self, name: str) -> VirtualMachine:
        try:
            return self._vms[name]
        except KeyError:
            raise AllocationError(f"unknown VM {name!r}") from None

    # -- runtime reconfiguration -----------------------------------------------

    def set_shares(self, name: str, shares: ResourceVector) -> None:
        """Change a VM's resource shares, enforcing host capacity."""
        vm = self._vm(name)
        host = self._placements[name]
        self._check_capacity(host, shares, excluding=name)
        vm.set_shares(shares)

    def apply_allocation(self, allocation: Mapping[str, ResourceVector]) -> None:
        """Atomically apply a full allocation (VM name -> shares).

        Validates the whole allocation against each host before touching
        any VM, so a failed apply leaves the system unchanged.
        """
        for name in allocation:
            self._vm(name)
        # Validate per host.
        for machine_name in self._machines:
            totals = {kind: 0.0 for kind in ALL_RESOURCES}
            for vm in self.vms_on(machine_name):
                shares = allocation.get(vm.name, vm.shares)
                for kind in ALL_RESOURCES:
                    totals[kind] += shares.share(kind)
            ceiling = self._capacity_factors[machine_name]
            for kind, total in totals.items():
                if total > ceiling + SHARE_EPSILON:
                    raise AdmissionError(
                        f"{kind} oversubscribed on {machine_name}: "
                        f"{total:.3f} > {ceiling:.3f}"
                    )
        for name, shares in allocation.items():
            self._vms[name].set_shares(shares)

    # -- failure and recovery ----------------------------------------------

    def mark_failed(self, name: str, reason: str = "crashed") -> None:
        """Record that a VM crashed (its shares stay allocated)."""
        self._vm(name).fail(reason)

    def restart_vm(self, name: str,
                   image: Optional[VMImage] = None) -> VirtualMachine:
        """Restart a failed (or stopped) VM in place.

        With *image*, the guest is restored from the snapshot first —
        a crash may have corrupted in-memory guest state, and restoring
        the appliance image is the paper's redeploy-the-saved-VM story
        applied to recovery. Returns the (same) VM object.
        """
        vm = self._vm(name)
        if image is not None:
            vm.attach_guest(image.instantiate_guest())
        vm.restart()
        return vm

    # -- migration ----------------------------------------------------------------

    def migrate(self, name: str, target_machine: str) -> float:
        """Live-migrate a VM to another host; returns simulated downtime.

        Downtime is modeled as the time to copy the VM's memory over the
        target host's I/O channel once (pre-copy rounds hidden), which is
        what matters to the dynamic reallocation extension.
        """
        vm = self._vm(name)
        source = self._placements[name]
        if target_machine == source:
            return 0.0
        target = self._machine(target_machine)
        self._check_capacity_for_migration(vm, target_machine)
        memory_mib = vm.memory_mib
        transfer_seconds = memory_mib / target.io_seq_mib_per_second
        # Re-home the VM: same shares, new host capacities.
        was_running = vm.state == VMState.RUNNING
        guest = vm.guest
        self.destroy_vm(name)
        new_vm = self.create_vm(name, vm.shares, machine_name=target_machine)
        if guest is not None:
            new_vm.attach_guest(guest)
        if was_running:
            new_vm.start()
        return transfer_seconds

    def _check_capacity_for_migration(self, vm: VirtualMachine, target: str) -> None:
        self._check_capacity(target, vm.shares)

    def __repr__(self) -> str:
        return (
            f"VirtualMachineMonitor(machines={sorted(self._machines)}, "
            f"vms={sorted(self._vms)})"
        )
