"""VM performance model: work trace -> simulated wall-clock seconds.

This is the simulation's replacement for measuring query execution time
on the paper's Xen testbed. Given a :class:`WorkTrace` (what the engine
did) and a VM (how much of each physical resource it holds), the model
computes elapsed time through three channels:

* **CPU**: work units divided by the credit scheduler's effective rate
  at the VM's CPU share, plus a hypervisor page-handling overhead per
  physical page read (virtualized I/O costs guest *and* hypervisor CPU).
* **I/O**: sequential and random page reads at service times inversely
  proportional to the VM's I/O share.
* **Overlap**: sequential reads are partially overlapped with CPU by
  read-ahead, so total time is less than the plain sum.

Optionally a deterministic noise source perturbs the result, standing
in for the run-to-run jitter of real measurements, and a
:class:`repro.faults.FaultInjector` may be attached: every elapsed time
is then routed through the injector, which can perturb it (outliers,
hangs) or raise a transient
:class:`~repro.util.errors.MeasurementFault` — the simulation's stand-in
for measurements that fail outright on a real testbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.engine.trace import WorkTrace
from repro.util.rng import DeterministicRng
from repro.virt.vm import VirtualMachine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.faults.injector import FaultInjector


@dataclass
class TimeBreakdown:
    """Elapsed-time decomposition returned by :meth:`VMPerfModel.elapsed`."""

    cpu_seconds: float
    seq_io_seconds: float
    random_io_seconds: float
    write_io_seconds: float
    overlap_seconds: float

    @property
    def io_seconds(self) -> float:
        return self.seq_io_seconds + self.random_io_seconds + self.write_io_seconds

    @property
    def total_seconds(self) -> float:
        return max(0.0, self.cpu_seconds + self.io_seconds - self.overlap_seconds)


class VMPerfModel:
    """Converts engine work traces into simulated time for one VM."""

    def __init__(self, vm: VirtualMachine,
                 readahead_overlap: float = 0.8,
                 noise_rng: Optional[DeterministicRng] = None,
                 noise_sigma: float = 0.0,
                 injector: Optional["FaultInjector"] = None):
        if not 0.0 <= readahead_overlap <= 1.0:
            raise ValueError("readahead_overlap must be in [0, 1]")
        self._vm = vm
        self._readahead_overlap = readahead_overlap
        self._noise_rng = noise_rng
        self._noise_sigma = noise_sigma
        self._injector = injector

    @property
    def vm(self) -> VirtualMachine:
        return self._vm

    @property
    def injector(self) -> Optional["FaultInjector"]:
        return self._injector

    def breakdown(self, trace: WorkTrace) -> TimeBreakdown:
        """Decompose *trace* into time per channel (noise-free)."""
        vm = self._vm
        machine = vm.machine
        physical_reads = trace.seq_page_reads + trace.random_page_reads
        cpu_units = trace.cpu_units + physical_reads * machine.hypervisor_page_overhead_units
        cpu_seconds = vm.scheduler.cpu_seconds(cpu_units, vm.shares.cpu)

        seq_io = trace.seq_page_reads * vm.seq_page_read_seconds() if trace.seq_page_reads else 0.0
        rand_io = (
            trace.random_page_reads * vm.random_page_read_seconds()
            if trace.random_page_reads else 0.0
        )
        write_io = trace.page_writes * vm.seq_page_read_seconds() if trace.page_writes else 0.0

        # Read-ahead lets sequential I/O proceed while the CPU works on
        # already-fetched pages; the overlap cannot exceed either side.
        overlap = self._readahead_overlap * min(cpu_seconds, seq_io)
        return TimeBreakdown(
            cpu_seconds=cpu_seconds,
            seq_io_seconds=seq_io,
            random_io_seconds=rand_io,
            write_io_seconds=write_io,
            overlap_seconds=overlap,
        )

    def noise_free_seconds(self, trace: WorkTrace) -> float:
        """The deterministic part of :meth:`elapsed` for *trace*.

        Repeated trials over one trace share this value — the
        calibration runner computes it once per repetition and routes
        each trial through :meth:`finalize_seconds`, which is where the
        per-trial noise and fault streams apply.
        """
        return self.breakdown(trace).total_seconds

    def finalize_seconds(self, total: float) -> float:
        """Apply noise and fault injection to a precomputed total.

        Consumes exactly the random draws :meth:`elapsed` would, so a
        caller that hoists :meth:`noise_free_seconds` out of its trial
        loop observes bit-identical timings.
        """
        if self._noise_rng is not None and self._noise_sigma > 0:
            total *= self._noise_rng.noise_factor(self._noise_sigma)
        if self._injector is not None:
            total = self._injector.on_measurement(
                self._vm.shares.as_tuple(), total)
        return total

    def elapsed(self, trace: WorkTrace) -> float:
        """Simulated elapsed seconds for *trace*, with optional noise.

        With a fault injector attached this may raise a transient
        :class:`~repro.util.errors.MeasurementFault` or return a
        perturbed (outlier / hung) timing; callers on the resilient
        path retry under their :class:`~repro.faults.RetryPolicy`.
        """
        return self.finalize_seconds(self.breakdown(trace).total_seconds)
