"""Write-ahead journal for crash-recoverable runs.

A :class:`RunJournal` is an append-only file of newline-delimited JSON
records. Each record carries a sequence number and a checksum over its
canonical serialization, so a reader can detect corruption anywhere and
distinguish it from the one benign failure mode: a torn final record
left by a process killed mid-append. The file itself is created
atomically (temp file + ``os.replace``) so a journal either exists with
a valid header or not at all.

Format (``repro-journal/1``)::

    {"seq": 0, "kind": "meta", "data": {...}, "checksum": "..."}
    {"seq": 1, "kind": "calibration", "data": {...}, "checksum": "..."}
    {"seq": 2, "kind": "evaluation", "data": {...}, "checksum": "..."}
    ...

* The first record is always ``kind="meta"`` and carries
  ``format="repro-journal/1"`` plus whatever run identity the writer
  wants resume to verify (fault plan, problem fingerprint, ...).
* ``checksum`` is the first 16 hex digits of the SHA-256 of the
  record's canonical JSON (sorted keys, no checksum field).
* Sequence numbers are dense and ascending; a gap or repeat means the
  file was edited and is rejected.

Readers (:func:`read_journal`) tolerate a truncated tail — a partial
final line, or a final line whose checksum does not verify, is dropped
and reported, because that is exactly what a crash mid-append leaves
behind. Corruption anywhere *before* the tail raises
:class:`~repro.util.errors.RecoveryError`: the journal cannot be
trusted and the run must start over.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.util.errors import RecoveryError

FORMAT = "repro-journal/1"


def _canonical(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(payload: Dict[str, Any]) -> str:
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class JournalRecord:
    """One committed unit of work in a journal."""

    seq: int
    kind: str
    data: Dict[str, Any]

    def to_line(self) -> str:
        payload = {"seq": self.seq, "kind": self.kind, "data": self.data}
        payload["checksum"] = _checksum(
            {"seq": self.seq, "kind": self.kind, "data": self.data})
        return _canonical(payload)

    @classmethod
    def from_line(cls, line: str) -> "JournalRecord":
        """Parse and verify one journal line; raises ``RecoveryError``."""
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise RecoveryError(f"unparseable journal record: {exc}") from exc
        if not isinstance(payload, dict):
            raise RecoveryError("journal record is not an object")
        try:
            seq = int(payload["seq"])
            kind = str(payload["kind"])
            data = payload["data"]
            stored = str(payload["checksum"])
        except (KeyError, TypeError, ValueError) as exc:
            raise RecoveryError(
                f"journal record missing field: {exc}") from exc
        expected = _checksum({"seq": seq, "kind": kind, "data": data})
        if stored != expected:
            raise RecoveryError(
                f"journal record {seq} checksum mismatch "
                f"({stored} != {expected})")
        return cls(seq=seq, kind=kind, data=data)


def read_journal(path: Union[str, pathlib.Path]) -> Tuple[
        Dict[str, Any], List[JournalRecord], int]:
    """Read and verify a journal file.

    Returns ``(meta, records, tail_dropped)`` where *meta* is the
    header record's data, *records* are the committed non-meta records
    in order, and *tail_dropped* is 1 when a torn final record was
    discarded (0 otherwise). Raises
    :class:`~repro.util.errors.RecoveryError` for anything worse than a
    torn tail: a missing or malformed header, a corrupt record before
    the tail, or a broken sequence.
    """
    path = pathlib.Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise RecoveryError(f"cannot read journal {path}: {exc}") from exc
    lines = text.split("\n")
    # A well-formed file ends with "\n", leaving one trailing empty
    # string; anything after the last newline is a torn tail candidate.
    records: List[JournalRecord] = []
    tail_dropped = 0
    non_empty = [line for line in lines if line.strip()]
    if not non_empty:
        raise RecoveryError(f"journal {path} is empty")
    for position, line in enumerate(non_empty):
        is_last = position == len(non_empty) - 1
        try:
            record = JournalRecord.from_line(line)
        except RecoveryError:
            if is_last:
                # Torn tail: the crash interrupted this append.
                tail_dropped = 1
                break
            raise
        if record.seq != position:
            raise RecoveryError(
                f"journal {path}: record {position} has sequence "
                f"{record.seq} (journal edited or spliced)")
        records.append(record)
    if not records or records[0].kind != "meta":
        raise RecoveryError(f"journal {path} has no meta header")
    meta = records[0].data
    if meta.get("format") != FORMAT:
        raise RecoveryError(
            f"journal {path}: format {meta.get('format')!r} is not {FORMAT!r}")
    return meta, records[1:], tail_dropped


class RunJournal:
    """Append-only writer over a journal file.

    :meth:`create` writes the header atomically; :meth:`open` reopens
    an existing journal for appending, first truncating any torn tail
    so every later append starts on a clean boundary. Each append is
    flushed and fsynced before returning — a record the caller saw
    committed survives the process dying on the very next instruction.
    """

    def __init__(self, path: pathlib.Path, next_seq: int,
                 meta: Dict[str, Any], records: List[JournalRecord]):
        self._path = path
        self._next_seq = next_seq
        self._meta = meta
        self._records = records

    # -- construction ------------------------------------------------------

    @classmethod
    def create(cls, path: Union[str, pathlib.Path],
               meta: Optional[Dict[str, Any]] = None) -> "RunJournal":
        """Create a new journal with a verified header, atomically."""
        path = pathlib.Path(path)
        if path.exists():
            raise RecoveryError(
                f"journal {path} already exists; resume it or remove it")
        data = dict(meta or {})
        data["format"] = FORMAT
        header = JournalRecord(seq=0, kind="meta", data=data)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name + ".", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(header.to_line() + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return cls(path, next_seq=1, meta=data, records=[])

    @classmethod
    def open(cls, path: Union[str, pathlib.Path]) -> "RunJournal":
        """Reopen an existing journal for appending (resume)."""
        path = pathlib.Path(path)
        meta, records, tail_dropped = read_journal(path)
        if tail_dropped:
            # Truncate the torn tail so appends start on a clean line.
            good = [JournalRecord(seq=0, kind="meta", data=meta)] + records
            text = "".join(record.to_line() + "\n" for record in good)
            path.write_text(text, encoding="utf-8")
        return cls(path, next_seq=len(records) + 1, meta=meta,
                   records=list(records))

    # -- access ------------------------------------------------------------

    @property
    def path(self) -> pathlib.Path:
        return self._path

    @property
    def meta(self) -> Dict[str, Any]:
        return dict(self._meta)

    @property
    def records(self) -> List[JournalRecord]:
        """Committed non-meta records, oldest first."""
        return list(self._records)

    def records_of(self, kind: str) -> List[JournalRecord]:
        return [record for record in self._records if record.kind == kind]

    # -- appending ---------------------------------------------------------

    def append(self, kind: str, data: Dict[str, Any]) -> JournalRecord:
        """Durably append one record; returns it once committed."""
        record = JournalRecord(seq=self._next_seq, kind=kind, data=data)
        with open(self._path, "a", encoding="utf-8") as handle:
            handle.write(record.to_line() + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._next_seq += 1
        self._records.append(record)
        return record


class UnitBudgetExceeded(Exception):
    """The simulated kill point of a :class:`BudgetedJournal` was hit."""


class BudgetedJournal:
    """Journal proxy that simulates a crash after N new commits.

    The budget is checked *before* the (N+1)-th append: the unit's work
    is done but never committed, which is exactly the state a real kill
    between compute and commit leaves behind — resume re-runs that
    unit. Both the design-run supervisor (:mod:`repro.recovery.
    supervisor`) and the fleet supervisor (:mod:`repro.fleet.
    supervisor`) model kills this way, so their equivalence tests share
    one crash semantics.
    """

    def __init__(self, journal: RunJournal, max_new_units: Optional[int]):
        self._journal = journal
        self._max_new = max_new_units
        self.new_units = 0

    def append(self, kind: str, data: Dict[str, Any]) -> JournalRecord:
        if self._max_new is not None and self.new_units >= self._max_new:
            raise UnitBudgetExceeded()
        record = self._journal.append(kind, data)
        self.new_units += 1
        return record

    def __getattr__(self, name):
        return getattr(self._journal, name)
