"""The run supervisor: design runs that survive being killed.

:class:`RunSupervisor` drives one complete design run — calibrations,
the combinatorial search, and a watchdog-supervised deployment — under
a fault plan, checkpointing every completed unit of work into a
:class:`~repro.recovery.journal.RunJournal`:

* a ``calibration`` record per freshly calibrated allocation
  (appended by :class:`~repro.calibration.cache.CalibrationCache`);
* an ``evaluation`` record per fresh cost-model evaluation
  (appended by :class:`JournalingCostModel`) — grid mode only: in
  continuous mode evaluations are pure surrogate arithmetic, so only
  the calibrations (the expensive, experiment-backed units) journal
  and the fit/polish/search pipeline simply re-runs on resume;
* a final ``result`` record carrying the design summary and the
  watchdog's recovery actions.

Resume (:meth:`RunSupervisor.run` with ``resume=True``) replays the
journal into the calibration cache and the cost-model memo, then
continues from the first unit the journal does not cover. Because the
fault injector runs in *per-unit* mode, the fault stream inside each
unit depends only on the unit's label — so a resumed run observes
exactly the faults the uninterrupted run would have, and produces
**bit-identical** parameters and design. The equivalence tests in
``tests/recovery`` assert this after killing a run at every unit
boundary.

A "kill" is modeled by ``max_units``: the supervisor raises an internal
stop after that many *new* journal commits, leaving the journal exactly
as a ``kill -9`` between two appends would. (A kill mid-append leaves a
torn tail instead; :meth:`RunJournal.open` truncates it, which simply
re-runs that one unit.)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dc_replace
from typing import Any, Dict, List, Optional

from repro.calibration.cache import CalibrationCache
from repro.calibration.runner import CalibrationRunner
from repro.core.cost_model import (
    BatchOutcome,
    CostModel,
    OptimizerCostModel,
)
from repro.core.designer import Design, VirtualizationDesigner
from repro.core.problem import VirtualizationDesignProblem
from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.parallel import make_engine
from repro.recovery.journal import (
    BudgetedJournal,
    RunJournal,
    UnitBudgetExceeded,
)
from repro.util.errors import RecoveryError
from repro.virt.health import HealthMonitor, RecoveryAction
from repro.virt.monitor import VirtualMachineMonitor
from repro.virt.resources import ResourceVector


# The kill-simulation machinery now lives in repro.recovery.journal so
# the fleet supervisor can share it; the old private names stay as
# aliases for compatibility.
_UnitBudgetExceeded = UnitBudgetExceeded
_BudgetedJournal = BudgetedJournal


class JournalingCostModel(CostModel):
    """Wraps a cost model so every fresh evaluation is journaled.

    Replayed evaluations are seeded into this wrapper's memo (via
    :meth:`CostModel.seed`) and never reach the inner model, so resume
    neither repeats the work nor re-journals the record.
    """

    kind = "journaling"

    def __init__(self, inner: CostModel, journal):
        super().__init__()
        self._inner = inner
        self._journal = journal

    def _key(self, spec, allocation) -> tuple:
        # Mirror the inner model's keying (e.g. a config-aware
        # optimizer model folds the catalog fingerprint in), so the
        # wrapper never serves a value the inner model would recompute.
        # Inner models outside the CostModel hierarchy (test doubles)
        # fall back to the default (workload, allocation) key.
        inner_key = getattr(self._inner, "_key", None)
        if inner_key is not None:
            return inner_key(spec, allocation)
        return super()._key(spec, allocation)

    def cost(self, spec, allocation) -> float:
        key = self._key(spec, allocation)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        value = self._inner.cost(spec, allocation)
        self._journal.append("evaluation", {
            "workload": spec.name,
            "allocation": list(allocation.as_tuple()),
            "cost": value,
        })
        self._memo[key] = value
        self.evaluations += 1
        return value

    def cost_many(self, pairs, engine=None) -> BatchOutcome:
        """Batched evaluation with per-result journaling.

        Misses are computed through the inner model's batch API (which
        may fan out over *engine*), then journaled one record per pair
        in first-appearance order — so a kill mid-batch commits a
        deterministic prefix and resume re-runs exactly the uncommitted
        tail. ``fresh`` counts wrapper-memo misses, matching what
        :meth:`cost` journals: a value the inner model happened to have
        memoized but the journal never recorded still gets a record.
        """
        pairs = list(pairs)
        keys = [self._key(spec, allocation) for spec, allocation in pairs]
        values: Dict[tuple, float] = {}
        todo = []
        todo_keys = []
        pending = set()
        for key, pair in zip(keys, pairs):
            if key in values or key in pending:
                continue
            cached = self._memo.get(key)
            if cached is not None:
                values[key] = cached
            else:
                todo.append(pair)
                todo_keys.append(key)
                pending.add(key)
        hits = len(pairs) - len(todo)
        fresh = 0
        if todo:
            inner = self._inner.cost_many(todo, engine=engine)
            for key, (spec, allocation), value in zip(todo_keys, todo,
                                                      inner.costs):
                self._journal.append("evaluation", {
                    "workload": spec.name,
                    "allocation": list(allocation.as_tuple()),
                    "cost": value,
                })
                self._memo[key] = value
                self.evaluations += 1
                fresh += 1
                values[key] = value
        return BatchOutcome(costs=[values[key] for key in keys],
                            fresh=fresh, hits=hits)

    def _cost(self, spec, allocation) -> float:  # pragma: no cover
        return self._inner.cost(spec, allocation)


@dataclass
class SupervisedRun:
    """What one :meth:`RunSupervisor.run` invocation produced."""

    #: The finished design, or ``None`` when the run was killed early.
    design: Optional[Design]
    #: Watchdog recovery actions taken during the deployment phase.
    actions: List[RecoveryAction] = field(default_factory=list)
    #: True when the run finished (a ``result`` record is journaled).
    completed: bool = False
    #: Units (calibrations + evaluations) replayed from the journal.
    replayed_units: int = 0
    #: Units freshly computed and committed by this invocation.
    new_units: int = 0


class RunSupervisor:
    """Drives a crash-recoverable design run under a fault plan."""

    def __init__(self, problem: VirtualizationDesignProblem,
                 journal_path, plan: Optional[FaultPlan] = None,
                 algorithm: str = "greedy", grid: int = 4,
                 retry_policy: Optional[RetryPolicy] = None,
                 max_evaluations: Optional[int] = None,
                 watchdog_probes: int = 0,
                 max_units: Optional[int] = None,
                 extra_meta: Optional[Dict[str, Any]] = None,
                 workbench=None,
                 workers: Optional[int] = None, pool: str = "thread",
                 continuous: bool = False, fine_factor: int = 8,
                 surrogate_tol: float = 0.05,
                 surrogate_budget: Optional[int] = 24):
        self._problem = problem
        self._journal_path = journal_path
        self._plan = plan or FaultPlan(name="none")
        self._algorithm = algorithm
        self._grid = grid
        self._retry_policy = retry_policy or RetryPolicy.resilient()
        self._max_evaluations = max_evaluations
        self._watchdog_probes = watchdog_probes
        self._max_units = max_units
        self._extra_meta = dict(extra_meta or {})
        #: Continuous-allocation mode: fit a calibration surrogate
        #: (journaled knot by knot, so the fit is crash-recoverable)
        #: and search continuous allocations against it. Part of the
        #: journal identity — a continuous run cannot resume as a
        #: grid run or vice versa. The surrogate budget counts
        #: calibration *requests* (replayed knots included), so a
        #: resumed fit stops at exactly the same point.
        self._continuous = continuous
        self._fine_factor = fine_factor
        self._surrogate_tol = surrogate_tol
        self._surrogate_budget = surrogate_budget
        #: Optional calibration workbench override (smaller synthetic
        #: databases make the equivalence tests affordable). Not part of
        #: the journal identity: the caller must supply the same one on
        #: resume, exactly as they must supply the same problem.
        self._workbench = workbench
        #: Worker count / pool kind for the evaluation engine. Recorded
        #: in the journal meta for observability but deliberately NOT
        #: part of the journal identity: a run journaled at 4 workers is
        #: bit-identical to one at 1 worker, so resuming with a
        #: different count is legitimate (and tested).
        self._workers = workers
        self._pool = pool
        #: Populated by :meth:`run`; useful for parameter inspection.
        self.cache: Optional[CalibrationCache] = None
        self.health: Optional[HealthMonitor] = None

    # -- run identity ------------------------------------------------------

    def _meta(self) -> Dict[str, Any]:
        plan = self._plan
        meta = {
            "plan": {
                "name": plan.name, "seed": plan.seed,
                "transient_rate": plan.transient_rate,
                "outlier_rate": plan.outlier_rate,
                "hang_rate": plan.hang_rate,
                "boot_failure_rate": plan.boot_failure_rate,
                "vm_crash_rate": plan.vm_crash_rate,
                "host_degrade_rate": plan.host_degrade_rate,
                "migration_failure_rate": plan.migration_failure_rate,
            },
            "algorithm": self._algorithm,
            "grid": self._grid,
            "machine": self._problem.machine.name,
            "workloads": self._problem.workload_names(),
            "controlled": [str(kind) for kind
                           in self._problem.controlled_resources],
            "watchdog_probes": self._watchdog_probes,
            "workers": self._workers,
            "continuous": self._continuous,
            "fine_factor": self._fine_factor,
            "surrogate_tol": self._surrogate_tol,
            "surrogate_budget": self._surrogate_budget,
        }
        meta.update(self._extra_meta)
        return meta

    _IDENTITY_KEYS = ("plan", "algorithm", "grid", "machine", "workloads",
                      "controlled", "watchdog_probes", "continuous",
                      "fine_factor", "surrogate_tol", "surrogate_budget")

    def _check_meta(self, recorded: Dict[str, Any]) -> None:
        expected = self._meta()
        # Identity keys absent from the recorded meta (a journal written
        # before that key existed) are skipped rather than treated as a
        # mismatch, so old journals stay resumable.
        mismatched = sorted(
            key for key in self._IDENTITY_KEYS
            if key in recorded and recorded[key] != expected[key]
        )
        if mismatched:
            raise RecoveryError(
                f"journal {self._journal_path} was written by a different "
                f"run: mismatched {', '.join(mismatched)} "
                f"(resume must use the same problem, plan, and search)")

    # -- the run -----------------------------------------------------------

    def run(self, resume: bool = False) -> SupervisedRun:
        """Execute (or resume) the design run; see the module docstring."""
        if resume:
            journal = RunJournal.open(self._journal_path)
            self._check_meta(journal.meta)
        else:
            journal = RunJournal.create(self._journal_path, self._meta())

        budgeted = _BudgetedJournal(journal, self._max_units)
        injector = (None if self._plan.is_benign
                    else FaultInjector(self._plan, per_unit=True))
        engine = make_engine(self._workers, self._pool)
        runner = CalibrationRunner(
            self._problem.machine, workbench=self._workbench,
            injector=injector, retry_policy=self._retry_policy,
            engine=engine)
        cache = CalibrationCache(runner, journal=budgeted)
        cost_model = JournalingCostModel(OptimizerCostModel(cache), budgeted)
        self.cache = cache

        replayed = self._replay(journal, cache, cost_model)
        prior_result = self._prior_result(journal)

        try:
            if self._continuous:
                # Continuous mode journals only calibrations: every
                # knot the fit/polish pays for commits the moment it
                # completes, while the searches between calibrations
                # are pure surrogate arithmetic — cheap to re-run on
                # resume and impossible to double-charge. Journaling
                # their evaluations would poison the polish loop: a
                # memoized cost from an earlier, coarser surface would
                # shadow the refitted one.
                from repro.surrogate import design_continuous

                outcome = design_continuous(
                    self._problem, cache, algorithm=self._algorithm,
                    grid=self._grid, fine_factor=self._fine_factor,
                    tolerance=self._surrogate_tol,
                    max_calibrations=self._surrogate_budget,
                    max_evaluations=self._max_evaluations,
                    engine=engine)
                design = outcome.design
                designer = VirtualizationDesigner(
                    self._problem, OptimizerCostModel(outcome.surface))
            else:
                designer = VirtualizationDesigner(self._problem, cost_model)
                design = designer.design(
                    self._algorithm, grid=self._grid,
                    max_evaluations=self._max_evaluations,
                    engine=engine, continuous=False,
                    fine_factor=self._fine_factor)
            actions = self._deploy_and_watch(designer, design, injector)
        except _UnitBudgetExceeded:
            return SupervisedRun(design=None, completed=False,
                                 replayed_units=replayed,
                                 new_units=budgeted.new_units)
        finally:
            if engine is not None:
                engine.close()

        if prior_result is None:
            journal.append("result", self._result_record(design, actions))
        return SupervisedRun(design=design, actions=actions, completed=True,
                             replayed_units=replayed,
                             new_units=budgeted.new_units)

    # -- replay ------------------------------------------------------------

    def _replay(self, journal: RunJournal, cache: CalibrationCache,
                cost_model: CostModel) -> int:
        from repro.optimizer.params import OptimizerParameters

        specs = {spec.name: spec for spec in self._problem.specs}
        replayed = 0
        for record in journal.records:
            if record.kind == "calibration":
                cache.add_point(
                    tuple(float(v) for v in record.data["allocation"]),
                    OptimizerParameters.from_dict(record.data["parameters"]))
                replayed += 1
            elif record.kind == "evaluation":
                name = record.data["workload"]
                spec = specs.get(name)
                if spec is None:
                    raise RecoveryError(
                        f"journal evaluation names unknown workload {name!r}")
                shares = record.data["allocation"]
                allocation = ResourceVector.of(
                    cpu=shares[0], memory=shares[1], io=shares[2])
                cost_model.seed(spec, allocation,
                                float(record.data["cost"]))
                replayed += 1
        return replayed

    @staticmethod
    def _prior_result(journal: RunJournal) -> Optional[Dict[str, Any]]:
        results = journal.records_of("result")
        return results[-1].data if results else None

    # -- the watchdog-supervised deployment phase --------------------------

    def _deploy_and_watch(self, designer: VirtualizationDesigner,
                          design: Design,
                          injector: Optional[FaultInjector]
                          ) -> List[RecoveryAction]:
        """Apply the design to a two-host VMM and run the watchdog.

        The standby host exists so migrate-on-host-degrade has somewhere
        to go; a single-host deployment could only restart or evict.
        Entirely simulated and deterministic (the injector's dedicated
        ops stream), so re-running it on resume reproduces the same
        actions the uninterrupted run saw.
        """
        if self._watchdog_probes <= 0:
            return []
        machine = self._problem.machine
        standby = dc_replace(machine, name=machine.name + "-standby")
        vmm = VirtualMachineMonitor([machine, standby])
        designer.apply(vmm, design, machine_name=machine.name)
        health = HealthMonitor(vmm, injector=injector)
        for name in design.allocation.workload_names():
            health.register(name)
        for _probe in range(self._watchdog_probes):
            health.probe()
        self.health = health
        return list(health.actions)

    def _result_record(self, design: Design,
                       actions: List[RecoveryAction]) -> Dict[str, Any]:
        return {
            "algorithm": design.algorithm,
            "stopped": design.stopped,
            "predicted_total_cost": design.predicted_total_cost,
            "allocation": {
                name: list(design.allocation.vector_for(name).as_tuple())
                for name in design.allocation.workload_names()
            },
            "actions": [action.as_dict() for action in actions],
        }
