"""Checkpoint/resume for long-running design runs.

The journal (:mod:`repro.recovery.journal`) is a checksummed,
append-only record of completed units of work; the supervisor
(:mod:`repro.recovery.supervisor`) drives a design run that commits to
it at every unit boundary and can resume, bit-identically, after being
killed. See ``docs/robustness.md`` for the recovery contract.
"""

from repro.recovery.journal import (
    FORMAT,
    BudgetedJournal,
    JournalRecord,
    RunJournal,
    UnitBudgetExceeded,
    read_journal,
)
from repro.recovery.supervisor import (
    JournalingCostModel,
    RunSupervisor,
    SupervisedRun,
)

__all__ = [
    "FORMAT",
    "BudgetedJournal",
    "JournalRecord",
    "RunJournal",
    "UnitBudgetExceeded",
    "read_journal",
    "JournalingCostModel",
    "RunSupervisor",
    "SupervisedRun",
]
