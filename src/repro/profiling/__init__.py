"""Profiling harness: deterministic cProfile runs over the hot flows.

See :mod:`repro.profiling.harness` for the full story and
``docs/profiling.md`` for how to read the reports. The CLI front end is
``repro profile`` (``python -m repro profile --scenario design``).
"""

from repro.profiling.harness import (
    DEFAULT_TOP,
    HotFrame,
    ProfileReport,
    SCENARIOS,
    Scenario,
    folded_spans,
    profile_scenario,
)

__all__ = [
    "DEFAULT_TOP",
    "HotFrame",
    "ProfileReport",
    "SCENARIOS",
    "Scenario",
    "folded_spans",
    "profile_scenario",
]
