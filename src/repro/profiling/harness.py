"""Deterministic cProfile harness over the reproduction's hot flows.

``cProfile`` is Python's *deterministic* (tracing) profiler: it hooks
every call and return, so two runs of the same seeded scenario attribute
time to the same frames — no sampling variance. The harness wraps three
canonical scenarios behind one entry point:

* ``calibration`` — run the synthetic calibration suite for a few
  allocations through :class:`~repro.calibration.CalibrationRunner`,
  the single-threaded inner loop that dominates design-time cost;
* ``design`` — an exhaustive-grid allocation search over a small TPC-H
  problem, the optimize-once/re-cost-many what-if path;
* ``workload`` — plain TPC-H query execution, the engine's per-tuple
  and perf-model arithmetic.

Each run produces a :class:`ProfileReport` holding three aligned views
of the same execution:

* **hot frames** — per-function self/cumulative time from ``pstats``,
  split into repro code and everything else, ranked by self time (the
  frames worth attacking);
* **span aggregates** — host seconds per :mod:`repro.obs.spans` name
  recorded *during the profiled run*, so frame-level cost can be read
  against the phase structure (calibrate vs search vs run_plan);
* **folded stacks** — the span trees flattened into
  ``root;child;leaf <microseconds>`` lines, the flamegraph interchange
  format (`flamegraph.pl`, speedscope, and most viewers read it
  directly).

Reports are plain data: ``to_text()`` for the terminal, ``to_json()``
for CI artifacts, ``folded()`` for the flamegraph file. See
``docs/profiling.md`` for how to read and regenerate them.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.obs.spans import SpanRecorder, get_recorder

#: Frames below this share of total self time are noise, not targets.
DEFAULT_TOP = 25


@dataclass
class HotFrame:
    """One function's share of a profiled run."""

    path: str
    line: int
    func: str
    calls: int
    self_seconds: float
    cum_seconds: float

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.func}"

    def as_dict(self) -> dict:
        return {
            "path": self.path, "line": self.line, "func": self.func,
            "calls": self.calls, "self_seconds": self.self_seconds,
            "cum_seconds": self.cum_seconds,
        }


@dataclass
class ProfileReport:
    """Everything one profiled scenario run produced."""

    scenario: str
    smoke: bool
    wall_seconds: float
    total_calls: int
    hot_frames: List[HotFrame]          # repro code, by self time
    other_frames: List[HotFrame]        # stdlib & friends, by self time
    span_aggregate: Dict[str, Dict[str, float]]
    folded_lines: List[str] = field(default_factory=list)
    scenario_meta: Dict[str, object] = field(default_factory=dict)

    def folded(self) -> str:
        """Folded-stack text (one ``path;to;span <usec>`` line each)."""
        return "\n".join(self.folded_lines) + ("\n" if self.folded_lines else "")

    def to_json(self) -> str:
        return json.dumps({
            "scenario": self.scenario,
            "smoke": self.smoke,
            "wall_seconds": self.wall_seconds,
            "total_calls": self.total_calls,
            "hot_frames": [f.as_dict() for f in self.hot_frames],
            "other_frames": [f.as_dict() for f in self.other_frames],
            "span_aggregate": self.span_aggregate,
            "scenario_meta": self.scenario_meta,
        }, indent=2, sort_keys=True)

    def to_text(self) -> str:
        out = io.StringIO()
        mode = " (smoke)" if self.smoke else ""
        print(f"profile: {self.scenario}{mode}", file=out)
        print(f"  wall {self.wall_seconds:.3f}s over "
              f"{self.total_calls} call(s)", file=out)
        for key, value in sorted(self.scenario_meta.items()):
            print(f"  {key}: {value}", file=out)
        print(file=out)
        print("spans (host seconds during the profiled run):", file=out)
        for name, stats in self.span_aggregate.items():
            print(f"  {name:<28} {stats['seconds']:>9.3f}s "
                  f"x{int(stats['count'])}", file=out)
        print(file=out)
        print("hot frames, repro code (by self time):", file=out)
        _frame_table(out, self.hot_frames)
        print(file=out)
        print("hot frames, elsewhere (by self time):", file=out)
        _frame_table(out, self.other_frames)
        return out.getvalue()


def _frame_table(out, frames: List[HotFrame]) -> None:
    if not frames:
        print("  (none)", file=out)
        return
    print(f"  {'self s':>9} {'cum s':>9} {'calls':>9}  location", file=out)
    for frame in frames:
        print(f"  {frame.self_seconds:>9.4f} {frame.cum_seconds:>9.4f} "
              f"{frame.calls:>9}  {frame.location}", file=out)


# -- scenarios ---------------------------------------------------------------


@dataclass
class Scenario:
    """One profiled flow: a seeded callable plus its description."""

    name: str
    description: str
    run: Callable[[bool], Dict[str, object]]


def _scenario_calibration(smoke: bool) -> Dict[str, object]:
    from repro.calibration import CalibrationCache, CalibrationRunner
    from repro.virt.machine import laboratory_machine
    from repro.virt.resources import ResourceVector

    cache = CalibrationCache(CalibrationRunner(laboratory_machine()))
    shares = [0.5] if smoke else [0.25, 0.5, 0.75]
    for share in shares:
        cache.params_for(ResourceVector.of(cpu=share, memory=share, io=share))
    return {"calibrations": len(shares)}


def _scenario_design(smoke: bool) -> Dict[str, object]:
    from repro.calibration import CalibrationCache, CalibrationRunner
    from repro.core import (
        OptimizerCostModel,
        VirtualizationDesigner,
        VirtualizationDesignProblem,
        WorkloadSpec,
    )
    from repro.virt.machine import laboratory_machine
    from repro.workloads import build_tpch_database, tpch_query
    from repro.workloads.workload import Workload

    scale = 0.002
    db = build_tpch_database(scale_factor=scale,
                             tables=["customer", "orders", "lineitem"])
    specs = [
        WorkloadSpec(Workload.repeat("order-audit", tpch_query("Q4"), 3), db),
        WorkloadSpec(Workload.repeat("cust-report", tpch_query("Q13"), 9), db),
    ]
    problem = VirtualizationDesignProblem(
        machine=laboratory_machine(), specs=specs,
    )
    cache = CalibrationCache(CalibrationRunner(laboratory_machine()))
    designer = VirtualizationDesigner(problem, OptimizerCostModel(cache))
    grid = 2 if smoke else 4
    design = designer.design("exhaustive", grid=grid)
    return {
        "grid": grid,
        "scale": scale,
        "predicted_total_cost": design.predicted_total_cost,
    }


def _scenario_workload(smoke: bool) -> Dict[str, object]:
    from repro.workloads import build_tpch_database, tpch_query

    db = build_tpch_database(scale_factor=0.002 if smoke else 0.01,
                             tables=["customer", "orders", "lineitem"])
    queries = ["Q4", "Q13"] if smoke else ["Q1", "Q3", "Q4", "Q6", "Q13"]
    rows = 0
    for name in queries:
        rows += len(db.run_sql(tpch_query(name)).rows)
    return {"queries": len(queries), "result_rows": rows}


SCENARIOS: Dict[str, Scenario] = {
    "calibration": Scenario(
        "calibration",
        "synthetic calibration suite across allocations",
        _scenario_calibration,
    ),
    "design": Scenario(
        "design",
        "exhaustive-grid allocation search over small TPC-H",
        _scenario_design,
    ),
    "workload": Scenario(
        "workload",
        "TPC-H query execution on the simulated engine",
        _scenario_workload,
    ),
}


# -- the harness -------------------------------------------------------------


def _split_frames(stats: pstats.Stats,
                  top: int) -> Tuple[List[HotFrame], List[HotFrame], int]:
    """Top frames by self time, split into repro code vs the rest."""
    repro_frames: List[HotFrame] = []
    other_frames: List[HotFrame] = []
    total_calls = 0
    for (path, line, func), (_cc, ncalls, tottime, cumtime, _callers) \
            in stats.stats.items():  # type: ignore[attr-defined]
        total_calls += ncalls
        frame = HotFrame(path=_trim_path(path), line=line, func=func,
                         calls=ncalls, self_seconds=tottime,
                         cum_seconds=cumtime)
        if "/repro/" in path.replace("\\", "/"):
            repro_frames.append(frame)
        else:
            other_frames.append(frame)
    key = lambda f: (-f.self_seconds, -f.cum_seconds, f.location)  # noqa: E731
    repro_frames.sort(key=key)
    other_frames.sort(key=key)
    return repro_frames[:top], other_frames[:top], total_calls


def _trim_path(path: str) -> str:
    normalized = path.replace("\\", "/")
    marker = "/repro/"
    index = normalized.rfind(marker)
    if index >= 0:
        return "repro/" + normalized[index + len(marker):]
    return normalized.rsplit("/", 1)[-1] if "/" in normalized else normalized


def folded_spans(recorder: SpanRecorder) -> List[str]:
    """Span trees as folded-stack lines (microsecond self-time weights).

    Each line is ``root;child;...;node <usec>`` where the weight is the
    node's *self* time — its duration minus its children's — so the
    flamegraph's widths add up exactly to the run's span-covered time.
    Zero-weight frames are kept when they anchor children, dropped when
    they are leaves (a flamegraph cell of width zero is invisible
    anyway).
    """
    weights: Dict[str, int] = {}

    def walk(node: dict, prefix: str) -> None:
        path = f"{prefix};{node['name']}" if prefix else node["name"]
        child_seconds = sum(c["seconds"] for c in node["children"])
        self_usec = int(round(max(0.0, node["seconds"] - child_seconds) * 1e6))
        if self_usec > 0 or not node["children"]:
            weights[path] = weights.get(path, 0) + self_usec
        for child in node["children"]:
            walk(child, path)

    for root in recorder.as_dicts():
        walk(root, "")
    return [f"{path} {usec}" for path, usec in sorted(weights.items())
            if usec > 0]


def profile_scenario(name: str, smoke: bool = False,
                     top: int = DEFAULT_TOP) -> ProfileReport:
    """Run scenario *name* under cProfile and report where time went.

    Resets the process-wide observability state first so the span
    aggregates and folded stacks cover exactly the profiled run.
    """
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown profile scenario {name!r}; "
            f"choose from {sorted(SCENARIOS)}"
        ) from None
    obs.reset()
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    try:
        meta = scenario.run(smoke)
    finally:
        profiler.disable()
    wall = time.perf_counter() - start
    stats = pstats.Stats(profiler)
    hot, other, total_calls = _split_frames(stats, top)
    recorder = get_recorder()
    return ProfileReport(
        scenario=name,
        smoke=smoke,
        wall_seconds=wall,
        total_calls=total_calls,
        hot_frames=hot,
        other_frames=other,
        span_aggregate=recorder.aggregate(),
        folded_lines=folded_spans(recorder),
        scenario_meta=dict(meta),
    )
