"""B+-tree secondary indexes.

Keys are single column values; payloads are heap :class:`RecordId`s
(duplicates allowed). Nodes occupy one page each and carry page numbers
so index traversal can be charged to the buffer pool like heap access.
The tree supports bulk loading from sorted input (how the TPC-H kit
builds its OSDB-style index set), ordinary inserts with splits, point
lookups, and ordered range scans over the leaf chain.
"""

from __future__ import annotations

import itertools
from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.engine.storage import RecordId
from repro.engine.types import Value
from repro.util.errors import StorageError
from repro.util.units import PAGE_SIZE

_index_file_ids = itertools.count(100_000)

#: Bytes of node overhead per page.
NODE_HEADER_BYTES = 64
#: Accounting size of one (key, child/rid) entry given a key width.
ENTRY_OVERHEAD_BYTES = 16


def _fanout(key_width: int) -> int:
    per_entry = key_width + ENTRY_OVERHEAD_BYTES
    return max(8, (PAGE_SIZE - NODE_HEADER_BYTES) // per_entry)


class _Node:
    __slots__ = ("page_no", "keys")

    def __init__(self, page_no: int):
        self.page_no = page_no
        self.keys: List[Value] = []


class _Leaf(_Node):
    __slots__ = ("rid_lists", "next_leaf")

    def __init__(self, page_no: int):
        super().__init__(page_no)
        self.rid_lists: List[List[RecordId]] = []
        self.next_leaf: Optional["_Leaf"] = None


class _Internal(_Node):
    __slots__ = ("children",)

    def __init__(self, page_no: int):
        super().__init__(page_no)
        self.children: List[_Node] = []


class BPlusTreeIndex:
    """A B+-tree over one column of a heap file."""

    def __init__(self, name: str, table_name: str, column_name: str,
                 key_width: int = 8, unique: bool = False):
        self.name = name
        self.table_name = table_name
        self.column_name = column_name
        self.unique = unique
        self.file_id = next(_index_file_ids)
        self._fanout = _fanout(key_width)
        self._n_pages = 0
        self._n_entries = 0
        self._root: _Node = self._new_leaf()

    # -- geometry --------------------------------------------------------------

    @property
    def n_pages(self) -> int:
        return self._n_pages

    @property
    def n_entries(self) -> int:
        return self._n_entries

    @property
    def fanout(self) -> int:
        return self._fanout

    @property
    def height(self) -> int:
        """Levels from root to leaf, inclusive."""
        levels = 1
        node = self._root
        while isinstance(node, _Internal):
            levels += 1
            node = node.children[0]
        return levels

    def _new_leaf(self) -> _Leaf:
        leaf = _Leaf(self._n_pages)
        self._n_pages += 1
        return leaf

    def _new_internal(self) -> _Internal:
        node = _Internal(self._n_pages)
        self._n_pages += 1
        return node

    # -- bulk load ------------------------------------------------------------------

    @classmethod
    def bulk_load(cls, name: str, table_name: str, column_name: str,
                  entries: Iterable[Tuple[Value, RecordId]],
                  key_width: int = 8, unique: bool = False) -> "BPlusTreeIndex":
        """Build a tree from (key, rid) pairs; input need not be sorted.

        Leaves are packed to ~90% like a real bulk load, keeping page
        counts realistic for the optimizer's index-size estimates.
        """
        index = cls(name, table_name, column_name, key_width=key_width, unique=unique)
        pairs = sorted(entries, key=lambda kr: (kr[0] is None, kr[0], kr[1].page_no, kr[1].slot))
        if not pairs:
            return index

        fill = max(2, int(index._fanout * 0.9))
        leaves: List[_Leaf] = []
        leaf = index._root if isinstance(index._root, _Leaf) else index._new_leaf()
        leaves.append(leaf)
        for key, rid in pairs:
            if unique and leaf.keys and leaf.keys[-1] == key:
                raise StorageError(
                    f"duplicate key {key!r} in unique index {name!r}"
                )
            if leaf.keys and leaf.keys[-1] == key:
                leaf.rid_lists[-1].append(rid)
            else:
                if len(leaf.keys) >= fill:
                    new_leaf = index._new_leaf()
                    leaf.next_leaf = new_leaf
                    leaves.append(new_leaf)
                    leaf = new_leaf
                leaf.keys.append(key)
                leaf.rid_lists.append([rid])
            index._n_entries += 1

        # Build internal levels bottom-up.
        level: List[_Node] = list(leaves)
        while len(level) > 1:
            parents: List[_Node] = []
            for start in range(0, len(level), fill):
                group = level[start:start + fill]
                parent = index._new_internal()
                parent.children = list(group)
                parent.keys = [_subtree_min(child) for child in group[1:]]
                parents.append(parent)
            level = parents
        index._root = level[0]
        return index

    # -- inserts -----------------------------------------------------------------------

    def insert(self, key: Value, rid: RecordId) -> None:
        """Insert one entry, splitting nodes on overflow."""
        split = self._insert_into(self._root, key, rid)
        if split is not None:
            sep_key, right = split
            new_root = self._new_internal()
            new_root.children = [self._root, right]
            new_root.keys = [sep_key]
            self._root = new_root
        self._n_entries += 1

    def _insert_into(self, node: _Node, key: Value,
                     rid: RecordId) -> Optional[Tuple[Value, _Node]]:
        if isinstance(node, _Leaf):
            return self._insert_into_leaf(node, key, rid)
        assert isinstance(node, _Internal)
        child_pos = bisect_right(node.keys, key)
        split = self._insert_into(node.children[child_pos], key, rid)
        if split is None:
            return None
        sep_key, right = split
        node.keys.insert(child_pos, sep_key)
        node.children.insert(child_pos + 1, right)
        if len(node.children) <= self._fanout:
            return None
        mid = len(node.keys) // 2
        up_key = node.keys[mid]
        sibling = self._new_internal()
        sibling.keys = node.keys[mid + 1:]
        sibling.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        return up_key, sibling

    def _insert_into_leaf(self, leaf: _Leaf, key: Value,
                          rid: RecordId) -> Optional[Tuple[Value, _Node]]:
        pos = bisect_left(leaf.keys, key)
        if pos < len(leaf.keys) and leaf.keys[pos] == key:
            if self.unique:
                raise StorageError(f"duplicate key {key!r} in unique index {self.name!r}")
            leaf.rid_lists[pos].append(rid)
            return None
        leaf.keys.insert(pos, key)
        leaf.rid_lists.insert(pos, [rid])
        if len(leaf.keys) <= self._fanout:
            return None
        mid = len(leaf.keys) // 2
        sibling = self._new_leaf()
        sibling.keys = leaf.keys[mid:]
        sibling.rid_lists = leaf.rid_lists[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.rid_lists = leaf.rid_lists[:mid]
        sibling.next_leaf = leaf.next_leaf
        leaf.next_leaf = sibling
        return sibling.keys[0], sibling

    # -- lookups ---------------------------------------------------------------------------

    def _descend(self, key: Value) -> Tuple[_Leaf, List[int]]:
        """Leaf responsible for *key* plus the page numbers on the path."""
        pages = [self._root.page_no]
        node = self._root
        while isinstance(node, _Internal):
            pos = bisect_right(node.keys, key)
            node = node.children[pos]
            pages.append(node.page_no)
        assert isinstance(node, _Leaf)
        return node, pages

    def search(self, key: Value) -> Tuple[List[RecordId], List[int]]:
        """Rids matching *key* and the index pages touched."""
        leaf, pages = self._descend(key)
        pos = bisect_left(leaf.keys, key)
        if pos < len(leaf.keys) and leaf.keys[pos] == key:
            return list(leaf.rid_lists[pos]), pages
        return [], pages

    def range_scan(self, low: Optional[Value] = None, high: Optional[Value] = None,
                   low_inclusive: bool = True,
                   high_inclusive: bool = True) -> Iterator[Tuple[Value, RecordId, int]]:
        """Yield (key, rid, leaf page number) over [low, high] in key order.

        Open bounds are expressed by passing ``None``. The caller charges
        page accesses: the descent pages via :meth:`descend_pages`, each
        distinct leaf page number as it appears in the stream.
        """
        if low is None:
            leaf: Optional[_Leaf] = self._leftmost_leaf()
            pos = 0
        else:
            leaf, _ = self._descend(low)
            pos = bisect_left(leaf.keys, low)
            if not low_inclusive:
                while pos < len(leaf.keys) and leaf.keys[pos] == low:
                    pos += 1
        while leaf is not None:
            while pos < len(leaf.keys):
                key = leaf.keys[pos]
                if high is not None:
                    if high_inclusive and key > high:
                        return
                    if not high_inclusive and key >= high:
                        return
                for rid in leaf.rid_lists[pos]:
                    yield key, rid, leaf.page_no
                pos += 1
            leaf = leaf.next_leaf
            pos = 0

    def descend_pages(self, key: Value) -> List[int]:
        """Page numbers on the root-to-leaf path for *key* (or leftmost)."""
        if key is None:
            pages = [self._root.page_no]
            node = self._root
            while isinstance(node, _Internal):
                node = node.children[0]
                pages.append(node.page_no)
            return pages
        return self._descend(key)[1]

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        assert isinstance(node, _Leaf)
        return node

    def items(self) -> Iterator[Tuple[Value, RecordId]]:
        """All entries in key order (testing / verification helper)."""
        for key, rid, _page in self.range_scan():
            yield key, rid

    def __repr__(self) -> str:
        return (
            f"BPlusTreeIndex({self.name!r} on {self.table_name}.{self.column_name}, "
            f"entries={self._n_entries}, pages={self._n_pages}, height={self.height})"
        )


def _subtree_min(node: _Node) -> Value:
    while isinstance(node, _Internal):
        node = node.children[0]
    assert isinstance(node, _Leaf)
    if not node.keys:
        raise StorageError("empty leaf in bulk-loaded tree")
    return node.keys[0]


class HypotheticalIndex:
    """A what-if index: B+-tree geometry without the tree.

    Exposes the same ``fanout``/``height``/``n_pages``/``n_entries``
    surface the planner and storage accounting read from
    :class:`BPlusTreeIndex`, derived from table statistics with the
    same arithmetic :meth:`BPlusTreeIndex.bulk_load` uses (distinct
    keys per ~90%-filled leaf, internal levels grouped bottom-up), so
    a what-if cost matches what materializing the index would cost.
    Any attempt to actually read it raises :class:`StorageError`.
    """

    def __init__(self, name: str, table_name: str, column_name: str,
                 n_entries: int, n_keys: int, key_width: int = 8,
                 unique: bool = False):
        self.name = name
        self.table_name = table_name
        self.column_name = column_name
        self.unique = unique
        self._fanout = _fanout(key_width)
        self._n_entries = max(0, int(n_entries))
        n_keys = max(0, min(int(n_keys), self._n_entries))
        fill = max(2, int(self._fanout * 0.9))
        # Mirror bulk_load: one (key, rid-list) slot per distinct key,
        # `fill` slots per leaf, then internal levels in groups of `fill`.
        leaves = max(1, -(-n_keys // fill))
        pages, height, level = leaves, 1, leaves
        while level > 1:
            level = -(-level // fill)
            pages += level
            height += 1
        self._n_pages = pages
        self._height = height

    @property
    def n_pages(self) -> int:
        return self._n_pages

    @property
    def n_entries(self) -> int:
        return self._n_entries

    @property
    def fanout(self) -> int:
        return self._fanout

    @property
    def height(self) -> int:
        return self._height

    def _unreadable(self) -> StorageError:
        return StorageError(
            f"hypothetical index {self.name!r} cannot be read; "
            f"materialize it with Catalog.create_index first"
        )

    def search(self, key: Value):
        raise self._unreadable()

    def range_scan(self, *args, **kwargs):
        raise self._unreadable()

    def descend_pages(self, key: Value):
        raise self._unreadable()

    def items(self):
        raise self._unreadable()

    def __repr__(self) -> str:
        return (
            f"HypotheticalIndex({self.name!r} on "
            f"{self.table_name}.{self.column_name}, "
            f"entries={self._n_entries}, pages={self._n_pages}, "
            f"height={self._height})"
        )
