"""Table statistics (the engine's ANALYZE).

The optimizer estimates selectivities from per-column statistics:
null fraction, distinct count, min/max, an equi-depth histogram, and
the most common values with their frequencies — the same summary
PostgreSQL keeps in ``pg_statistic``. Statistics are computed by a full
scan at load time; they are deliberately *estimates* (bounded histogram
resolution, truncated MCV list), so the optimizer can be wrong in the
ways real optimizers are wrong.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.schema import TableSchema
from repro.engine.storage import HeapFile
from repro.engine.types import Date, Value

#: Number of equi-depth histogram buckets kept per column.
HISTOGRAM_BUCKETS = 100
#: Number of most-common values kept per column.
MCV_ENTRIES = 25


@dataclass
class ColumnStats:
    """Summary statistics for one column."""

    name: str
    n_values: int
    null_fraction: float
    n_distinct: int
    min_value: Optional[Value] = None
    max_value: Optional[Value] = None
    #: Equi-depth histogram bucket boundaries (len = buckets + 1) over
    #: the non-null values *excluding* MCVs (as in PostgreSQL: heavy
    #: duplicates distort interpolation, so they are carried separately).
    histogram: List[Value] = field(default_factory=list)
    #: Most common values and their frequencies among non-null values.
    mcv: List[Tuple[Value, float]] = field(default_factory=list)
    avg_width: float = 8.0

    def selectivity_eq(self, value: Value) -> float:
        """Estimated fraction of rows equal to *value*."""
        if value is None:
            return self.null_fraction
        for mcv_value, freq in self.mcv:
            if mcv_value == value:
                return freq * (1.0 - self.null_fraction)
        if self.n_distinct <= 0:
            return 0.0
        mcv_mass = sum(freq for _v, freq in self.mcv)
        remaining = max(0.0, 1.0 - mcv_mass)
        remaining_distinct = max(1, self.n_distinct - len(self.mcv))
        return (remaining / remaining_distinct) * (1.0 - self.null_fraction)

    def selectivity_range(self, low: Optional[Value], high: Optional[Value],
                          low_inclusive: bool = True,
                          high_inclusive: bool = True) -> float:
        """Estimated fraction of rows in [low, high] (open bounds = None).

        PostgreSQL-style decomposition: the MCV list answers exactly for
        the heavy values; the histogram (built over non-MCV values)
        answers for the rest, weighted by the non-MCV mass.
        """
        non_null = 1.0 - self.null_fraction
        if non_null <= 0:
            return 0.0

        mcv_in_range = sum(
            freq for value, freq in self.mcv
            if _in_range(value, low, high, low_inclusive, high_inclusive)
        )
        mcv_total = sum(freq for _v, freq in self.mcv)
        remainder_mass = max(0.0, 1.0 - mcv_total)

        remainder_fraction = 0.0
        if remainder_mass > 0:
            lo_pos = 0.0 if low is None else self._cdf(
                low, strictly_below=low_inclusive
            )
            hi_pos = 1.0 if high is None else self._cdf(
                high, strictly_below=not high_inclusive
            )
            remainder_fraction = max(0.0, hi_pos - lo_pos)

        combined = mcv_in_range + remainder_fraction * remainder_mass
        return min(1.0, combined) * non_null

    def _cdf(self, value: Value, strictly_below: bool) -> float:
        """Approximate P(col <= value | col is a non-MCV value).

        *strictly_below* asks for P(col < value); over the near-unique
        histogram remainder the difference is at most one value's worth
        of interpolation, so both use the same interpolated position.
        """
        hist = self.histogram
        if not hist:
            # No remainder histogram (all mass in the MCV list, or no
            # information at all): fall back to global bounds.
            if self.min_value is None or self.max_value is None:
                return 0.5
            if _lt(value, self.min_value):
                return 0.0
            if not _lt(value, self.max_value):
                return 1.0
            return 0.5
        if _lt(value, hist[0]):
            return 0.0
        if not _lt(value, hist[-1]):
            return 1.0
        n_buckets = len(hist) - 1
        position = 1.0
        for i in range(n_buckets):
            lo, hi = hist[i], hist[i + 1]
            if not _lt(hi, value):
                within = _fraction_within(lo, hi, value)
                position = (i + within) / n_buckets
                break
        return min(1.0, max(0.0, position))


def _lt(a: Value, b: Value) -> bool:
    return a < b  # type: ignore[operator]


def _in_range(value: Value, low: Optional[Value], high: Optional[Value],
              low_inclusive: bool, high_inclusive: bool) -> bool:
    """Whether a concrete value lies inside the (possibly open) interval."""
    if low is not None:
        if _lt(value, low):
            return False
        if not low_inclusive and not _lt(low, value):
            return False
    if high is not None:
        if _lt(high, value):
            return False
        if not high_inclusive and not _lt(value, high):
            return False
    return True


def _fraction_within(lo: Value, hi: Value, value: Value) -> float:
    """Linear interpolation of *value*'s position inside [lo, hi]."""
    if isinstance(lo, Date) and isinstance(hi, Date) and isinstance(value, Date):
        lo_n, hi_n, v_n = lo.ordinal, hi.ordinal, value.ordinal
    elif isinstance(lo, (int, float)) and isinstance(hi, (int, float)) \
            and isinstance(value, (int, float)):
        lo_n, hi_n, v_n = float(lo), float(hi), float(value)
    else:
        return 0.5  # non-interpolable type (e.g. text): midpoint
    if hi_n <= lo_n:
        return 1.0
    return min(1.0, max(0.0, (v_n - lo_n) / (hi_n - lo_n)))


@dataclass
class TableStats:
    """Statistics for one table."""

    table_name: str
    n_rows: int
    n_pages: int
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name)


def analyze_column(name: str, values: Sequence[Value],
                   avg_width: float = 8.0) -> ColumnStats:
    """Compute :class:`ColumnStats` for one column's values."""
    n_values = len(values)
    non_null = [v for v in values if v is not None]
    null_fraction = 0.0 if n_values == 0 else (n_values - len(non_null)) / n_values
    if not non_null:
        return ColumnStats(
            name=name, n_values=n_values, null_fraction=null_fraction,
            n_distinct=0, avg_width=avg_width,
        )
    counter = Counter(non_null)
    n_distinct = len(counter)
    ordered = sorted(non_null)

    mcv: List[Tuple[Value, float]] = []
    if n_distinct <= MCV_ENTRIES * 4:
        # Only keep MCVs when they carry real skew information.
        common = counter.most_common(MCV_ENTRIES)
        uniform_freq = 1.0 / n_distinct
        mcv = [
            (value, count / len(non_null))
            for value, count in common
            if count / len(non_null) > uniform_freq * 1.5
        ]

    # The histogram covers the values the MCV list does not: duplicates
    # heavy enough to be MCVs would make equi-depth interpolation lie.
    mcv_values = {value for value, _freq in mcv}
    remainder = [v for v in ordered if v not in mcv_values]
    histogram: List[Value] = []
    remainder_distinct = len(set(remainder))
    if remainder_distinct > 1:
        buckets = min(HISTOGRAM_BUCKETS, remainder_distinct)
        histogram = [remainder[0]]
        for i in range(1, buckets):
            histogram.append(remainder[(i * (len(remainder) - 1)) // buckets])
        histogram.append(remainder[-1])

    return ColumnStats(
        name=name,
        n_values=n_values,
        null_fraction=null_fraction,
        n_distinct=n_distinct,
        min_value=ordered[0],
        max_value=ordered[-1],
        histogram=histogram,
        mcv=mcv,
        avg_width=avg_width,
    )


def analyze_table(heap: HeapFile) -> TableStats:
    """Full-scan ANALYZE of a heap file."""
    schema: TableSchema = heap.schema
    columns_values: List[List[Value]] = [[] for _ in schema.columns]
    for page in heap.pages():
        for row in page.rows:
            for i, value in enumerate(row):
                columns_values[i].append(value)
    stats = TableStats(
        table_name=schema.name,
        n_rows=heap.n_rows,
        n_pages=heap.n_pages,
    )
    for column, values in zip(schema.columns, columns_values):
        stats.columns[column.name] = analyze_column(
            column.name, values, avg_width=float(column.avg_width)
        )
    return stats
