"""A clock-sweep buffer pool.

The buffer pool decides whether a page request is served from memory (a
*hit*) or from disk (a *miss* — charged to the work trace as a
sequential or random read). Its capacity is set by the virtual
machine's memory share, which is how memory allocation reaches query
performance in this simulation, exactly the channel the paper's memory
knob controls.

Like PostgreSQL, large sequential scans read through a small ring
buffer instead of the main pool, so one big scan does not evict the
working set of everything else; this makes memory sensitivity depend on
whether a relation fits in the pool, an effect the calibration must
capture.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.engine.trace import WorkTrace
from repro.util.errors import StorageError

#: A relation larger than this fraction of the pool scans via ring buffer.
#: PostgreSQL rings at pool/4, but its large scans still benefit from the
#: OS page cache, which this engine does not model separately; ringing
#: only relations that cannot fit at all keeps the memory share's effect
#: on scan performance (the channel the paper's memory knob uses) intact.
RING_THRESHOLD_FRACTION = 1.0


class _Frame:
    __slots__ = ("key", "referenced")

    def __init__(self, key: Tuple[int, int]):
        self.key = key
        # Installed unreferenced: only a subsequent hit earns the page a
        # second chance, so one-touch pages are evicted before re-used ones.
        self.referenced = False


class BufferPool:
    """Clock-sweep page cache keyed by (file id, page number)."""

    def __init__(self, capacity_pages: int):
        if capacity_pages < 0:
            raise StorageError("buffer pool capacity must be non-negative")
        self._capacity = capacity_pages
        self._frames: Dict[Tuple[int, int], _Frame] = {}
        self._clock: list = []  # list of _Frame, clock order
        self._hand = 0
        self.hits = 0
        self.misses = 0

    # -- sizing --------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    def resize(self, capacity_pages: int) -> None:
        """Change capacity; shrinking evicts pages in clock order."""
        if capacity_pages < 0:
            raise StorageError("buffer pool capacity must be non-negative")
        self._capacity = capacity_pages
        while len(self._frames) > self._capacity:
            self._evict_one()

    def __len__(self) -> int:
        return len(self._frames)

    def contains(self, file_id: int, page_no: int) -> bool:
        return (file_id, page_no) in self._frames

    # -- the access path ----------------------------------------------------------

    def access(self, file_id: int, page_no: int, trace: WorkTrace,
               sequential: bool = False, bypass: bool = False) -> bool:
        """Request a page; returns True on a hit.

        *sequential* selects the I/O cost of a miss (sequential vs
        random read). With *bypass* (ring-buffer mode) a miss is served
        without installing the page in the pool.
        """
        if sequential:
            trace.seq_page_requests += 1
        else:
            trace.random_page_requests += 1
        key = (file_id, page_no)
        frame = self._frames.get(key)
        if frame is not None:
            frame.referenced = True
            self.hits += 1
            trace.add_buffer_hit()
            return True
        self.misses += 1
        if sequential:
            trace.add_seq_read()
        else:
            trace.add_random_read()
        if not bypass and self._capacity > 0:
            self._install(key)
        return False

    def should_use_ring(self, relation_pages: int) -> bool:
        """Whether a sequential scan of this many pages bypasses the pool."""
        if self._capacity <= 0:
            return True
        return relation_pages > self._capacity * RING_THRESHOLD_FRACTION

    def prewarm(self, file_id: int, n_pages: int) -> int:
        """Install the first pages of a file without charging I/O.

        Models a freshly loaded / OS-cached relation; returns how many
        pages were actually installed (bounded by capacity).
        """
        installed = 0
        for page_no in range(n_pages):
            if len(self._frames) >= self._capacity:
                break
            key = (file_id, page_no)
            if key not in self._frames:
                self._install(key)
                installed += 1
        return installed

    def clear(self) -> None:
        """Drop all cached pages (a cold restart)."""
        self._frames.clear()
        self._clock.clear()
        self._hand = 0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    # -- clock internals ---------------------------------------------------------

    def _install(self, key: Tuple[int, int]) -> None:
        while len(self._frames) >= self._capacity:
            self._evict_one()
        frame = _Frame(key)
        self._frames[key] = frame
        self._clock.append(frame)

    def _evict_one(self) -> None:
        if not self._clock:
            raise StorageError("cannot evict from an empty buffer pool")
        while True:
            if self._hand >= len(self._clock):
                self._hand = 0
            frame = self._clock[self._hand]
            if frame.referenced:
                frame.referenced = False
                self._hand += 1
            else:
                self._clock.pop(self._hand)
                del self._frames[frame.key]
                return

    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 1.0
        return self.hits / total

    def publish_metrics(self) -> None:
        """Surface pool state as gauges on the process-wide registry.

        Called per executed statement (not per page access, which would
        put a registry lookup on the hottest path in the engine).
        Gauges: ``engine.buffer_pool.{capacity,resident,hits,misses,
        hit_ratio}``.
        """
        from repro.obs import metrics

        metrics.gauge("engine.buffer_pool.capacity").set(self._capacity)
        metrics.gauge("engine.buffer_pool.resident").set(len(self._frames))
        metrics.gauge("engine.buffer_pool.hits").set(self.hits)
        metrics.gauge("engine.buffer_pool.misses").set(self.misses)
        metrics.gauge("engine.buffer_pool.hit_ratio").set(self.hit_ratio())

    def __repr__(self) -> str:
        return (
            f"BufferPool(capacity={self._capacity}, resident={len(self._frames)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
