"""A relational database engine substrate.

Implements the pieces of a PostgreSQL-class system that the paper's
method touches: paged heap storage, a clock-sweep buffer pool, B+-tree
indexes, table statistics, an iterator executor whose operators mirror
the optimizer's plan shapes, and a SQL front end. Execution produces
correct answers *and* a :class:`~repro.engine.trace.WorkTrace` of the
CPU and I/O work performed, which the virtualization layer converts to
simulated wall-clock time.
"""

from repro.engine.types import Date, Value
from repro.engine.schema import Column, ColumnType, TableSchema
from repro.engine.storage import HeapFile, RecordId
from repro.engine.bufferpool import BufferPool
from repro.engine.index import BPlusTreeIndex
from repro.engine.statistics import ColumnStats, TableStats, analyze_table
from repro.engine.catalog import Catalog, IndexInfo, TableInfo
from repro.engine.trace import WorkTrace
from repro.engine.database import Database, QueryResult

__all__ = [
    "Date",
    "Value",
    "Column",
    "ColumnType",
    "TableSchema",
    "HeapFile",
    "RecordId",
    "BufferPool",
    "BPlusTreeIndex",
    "ColumnStats",
    "TableStats",
    "analyze_table",
    "Catalog",
    "IndexInfo",
    "TableInfo",
    "WorkTrace",
    "Database",
    "QueryResult",
]
