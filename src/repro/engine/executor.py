"""The plan executor.

Executes physical plans against the catalog, producing correct results
while charging every unit of work to a :class:`WorkTrace`: page
requests go through the buffer pool (which decides hit vs sequential or
random read), tuples and predicate steps are charged at the rates in
:mod:`repro.engine.trace`, sorts spill to simulated temp files when the
input exceeds sort memory.

Operators materialize their outputs as lists of tuples. At the scales
this library runs (TPC-H scale factors well below 0.1) materialization
is cheaper than iterator plumbing and makes the accounting exact.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.engine.bufferpool import BufferPool
from repro.engine.catalog import Catalog
from repro.engine.expr import EvalContext, Expr
from repro.engine.plans import (
    AggFunc,
    Aggregate,
    Filter,
    HashJoin,
    IndexScan,
    JoinType,
    Limit,
    MergeJoin,
    NestedLoopJoin,
    PlanNode,
    Project,
    SeqScan,
    Sort,
    SortKey,
)
from repro.engine.trace import (
    CPU_AGG_TRANSITION_UNITS,
    CPU_HASH_UNITS,
    CPU_INDEX_TUPLE_UNITS,
    CPU_LIKE_BYTE_UNITS,
    CPU_OPERATOR_STARTUP_UNITS,
    CPU_OPERATOR_UNITS,
    CPU_PAGE_PROCESS_UNITS,
    CPU_SORT_COMPARE_UNITS,
    CPU_TUPLE_UNITS,
    WorkTrace,
)
from repro.engine.types import Value
from repro.obs import metrics
from repro.util.errors import PlanningError
from repro.util.units import PAGE_SIZE

#: When true (the default), operators charge per-tuple CPU work in
#: batches — one multiply per page/input instead of one addition per
#: row — whenever :meth:`WorkTrace.can_batch_cpu` guarantees the batch
#: lands on the identical float. The scalar path is kept both as the
#: exactness fallback and as the reference the property tests compare
#: against (see :func:`scalar_fallback`).
FAST_PATH = True


@contextmanager
def scalar_fallback() -> Iterator[None]:
    """Force per-row (unbatched) trace charging within the block.

    Used by the bit-identity property tests and the hot-path benchmark
    to run the reference scalar executor; restores the previous mode on
    exit. Affects this process only — parallel workers inherit the
    default.
    """
    global FAST_PATH
    previous = FAST_PATH
    FAST_PATH = False
    try:
        yield
    finally:
        FAST_PATH = previous


@dataclass
class ExecutionContext:
    """Everything an execution needs: data, cache, and the meter."""

    catalog: Catalog
    buffer_pool: BufferPool
    trace: WorkTrace = field(default_factory=WorkTrace)
    #: Pages of memory available to a single sort before spilling.
    sort_mem_pages: int = 256

    def charge_eval(self, ctx: EvalContext) -> None:
        """Flush accumulated expression-evaluation work into the trace."""
        if ctx.ops:
            self.trace.add_cpu(ctx.ops * CPU_OPERATOR_UNITS)
            self.trace.predicate_ops += ctx.ops
        if ctx.like_bytes:
            self.trace.add_cpu(ctx.like_bytes * CPU_LIKE_BYTE_UNITS)
            self.trace.like_bytes += ctx.like_bytes
        ctx.reset()


class Executor:
    """Executes physical plans."""

    def __init__(self, context: ExecutionContext):
        self._ctx = context

    @property
    def trace(self) -> WorkTrace:
        return self._ctx.trace

    def run(self, plan: PlanNode) -> List[tuple]:
        """Execute *plan* and return its result rows."""
        metrics.counter("engine.executor.plans").inc()
        self._ctx.trace.add_cpu(CPU_OPERATOR_STARTUP_UNITS)
        self._resolve_subplans(plan)
        return self._execute(plan)

    # -- scalar subqueries ----------------------------------------------------

    def _resolve_subplans(self, plan: PlanNode) -> None:
        """Run every scalar subplan once and fold its value in as a literal.

        Uncorrelated scalar subqueries are constants with respect to the
        outer query, so they execute exactly once (their work is charged
        to this execution's trace) before the outer plan runs.
        """
        from repro.engine.expr import SubplanExpr, map_children
        from repro.engine.plans import walk

        values: Dict[int, Value] = {}

        def resolve(expr: Expr) -> Expr:
            if isinstance(expr, SubplanExpr):
                key = id(expr)
                if key not in values:
                    if expr.plan is None:
                        raise PlanningError(
                            "scalar subquery was never planned"
                        )
                    rows = self._execute(expr.plan)
                    if len(rows) > 1:
                        raise PlanningError(
                            "scalar subquery returned more than one row"
                        )
                    values[key] = rows[0][0] if rows else None
                from repro.engine.expr import Literal

                return Literal(values[key])
            return map_children(expr, resolve)

        def resolve_optional(expr: Optional[Expr]) -> Optional[Expr]:
            return resolve(expr) if expr is not None else None

        for node in walk(plan):
            if isinstance(node, (SeqScan, IndexScan)):
                node.filter_expr = resolve_optional(node.filter_expr)
            elif isinstance(node, HashJoin):
                node.outer_keys = [resolve(k) for k in node.outer_keys]
                node.inner_keys = [resolve(k) for k in node.inner_keys]
                node.residual = resolve_optional(node.residual)
            elif isinstance(node, NestedLoopJoin):
                node.predicate = resolve_optional(node.predicate)
            elif isinstance(node, MergeJoin):
                node.outer_key = resolve(node.outer_key)
                node.inner_key = resolve(node.inner_key)
            elif isinstance(node, Sort):
                for key in node.keys:
                    key.expr = resolve(key.expr)
            elif isinstance(node, Aggregate):
                node.group_keys = [resolve(k) for k in node.group_keys]
                for spec in node.aggregates:
                    if spec.arg is not None:
                        spec.arg = resolve(spec.arg)
                node.having = resolve_optional(node.having)
            elif isinstance(node, Filter):
                node.predicate = resolve(node.predicate)
            elif isinstance(node, Project):
                node.exprs = [resolve(e) for e in node.exprs]

    # -- dispatch -----------------------------------------------------------

    def _execute(self, plan: PlanNode) -> List[tuple]:
        rows = self._execute_node(plan)
        plan.actual_rows = len(rows)  # EXPLAIN ANALYZE bookkeeping
        return rows

    def _execute_node(self, plan: PlanNode) -> List[tuple]:
        if isinstance(plan, SeqScan):
            return self._seq_scan(plan)
        if isinstance(plan, IndexScan):
            return self._index_scan(plan)
        if isinstance(plan, HashJoin):
            return self._hash_join(plan)
        if isinstance(plan, NestedLoopJoin):
            return self._nested_loop_join(plan)
        if isinstance(plan, MergeJoin):
            return self._merge_join(plan)
        if isinstance(plan, Sort):
            return self._sort(plan)
        if isinstance(plan, Aggregate):
            return self._aggregate(plan)
        if isinstance(plan, Filter):
            return self._filter(plan)
        if isinstance(plan, Project):
            return self._project(plan)
        if isinstance(plan, Limit):
            return self._limit(plan)
        raise PlanningError(f"executor cannot run node {type(plan).__name__}")

    # -- scans ---------------------------------------------------------------

    def _seq_scan(self, plan: SeqScan) -> List[tuple]:
        info = self._ctx.catalog.table(plan.table_name)
        heap = info.heap
        pool = self._ctx.buffer_pool
        trace = self._ctx.trace
        use_ring = pool.should_use_ring(heap.n_pages)
        predicate = _bind_optional(plan.filter_expr, plan.layout)
        eval_ctx = EvalContext()
        out: List[tuple] = []
        batched = FAST_PATH and trace.can_batch_cpu()
        for page in heap.pages():
            pool.access(heap.file_id, page.page_no, trace,
                        sequential=True, bypass=use_ring)
            trace.add_cpu(CPU_PAGE_PROCESS_UNITS)
            rows = page.rows
            if batched:
                trace.add_tuples(len(rows), CPU_TUPLE_UNITS)
                if predicate is None:
                    out.extend(rows)
                else:
                    for row in rows:
                        if predicate.eval(row, eval_ctx) is True:
                            out.append(row)
            else:
                for row in rows:
                    trace.add_tuples(1, CPU_TUPLE_UNITS)
                    if predicate is None or predicate.eval(row, eval_ctx) is True:
                        out.append(row)
        self._ctx.charge_eval(eval_ctx)
        return out

    def _index_scan(self, plan: IndexScan) -> List[tuple]:
        info = self._ctx.catalog.table(plan.table_name)
        index_info = info.indexes.get(plan.index_name)
        if index_info is None:
            raise PlanningError(
                f"table {plan.table_name!r} has no index {plan.index_name!r}"
            )
        if index_info.hypothetical:
            raise PlanningError(
                f"index {plan.index_name!r} is hypothetical (what-if only); "
                f"materialize it with Catalog.create_index before executing"
            )
        tree = index_info.index
        heap = info.heap
        pool = self._ctx.buffer_pool
        trace = self._ctx.trace
        predicate = _bind_optional(plan.filter_expr, plan.layout)
        eval_ctx = EvalContext()
        out: List[tuple] = []
        per_tuple_units = CPU_INDEX_TUPLE_UNITS + CPU_TUPLE_UNITS
        batched = FAST_PATH and trace.can_batch_cpu()
        fetched = 0

        for page_no in tree.descend_pages(plan.low):
            pool.access(tree.file_id, page_no, trace, sequential=False)
        last_leaf = -1
        for _key, rid, leaf_page in tree.range_scan(
            plan.low, plan.high, plan.low_inclusive, plan.high_inclusive
        ):
            if leaf_page != last_leaf:
                pool.access(tree.file_id, leaf_page, trace, sequential=False)
                last_leaf = leaf_page
            pool.access(heap.file_id, rid.page_no, trace, sequential=False)
            if batched:
                fetched += 1
            else:
                trace.add_tuples(1, per_tuple_units)
                trace.index_tuples += 1
            row = heap.fetch(rid)
            if predicate is None or predicate.eval(row, eval_ctx) is True:
                out.append(row)
        if batched and fetched:
            trace.add_tuples(fetched, per_tuple_units)
            trace.index_tuples += fetched
        self._ctx.charge_eval(eval_ctx)
        return out

    # -- joins -----------------------------------------------------------------

    def _hash_join(self, plan: HashJoin) -> List[tuple]:
        outer_rows = self._execute(plan.outer)
        inner_rows = self._execute(plan.inner)
        trace = self._ctx.trace
        trace.add_cpu(CPU_OPERATOR_STARTUP_UNITS)
        eval_ctx = EvalContext()

        outer_keys = [k.bind(plan.outer.layout) for k in plan.outer_keys]
        inner_keys = [k.bind(plan.inner.layout) for k in plan.inner_keys]
        residual = _bind_optional(
            plan.residual,
            plan.outer.layout.concat(plan.inner.layout)
            if plan.join_type in (JoinType.INNER, JoinType.LEFT)
            else plan.outer.layout.concat(plan.inner.layout),
        )

        batched = FAST_PATH and trace.can_batch_cpu()
        if batched:
            trace.add_cpu((len(inner_rows) + len(outer_rows)) * CPU_HASH_UNITS)
        match_steps = 0

        # Build phase on the inner side.
        table: Dict[tuple, List[tuple]] = {}
        for row in inner_rows:
            key = tuple(k.eval(row, eval_ctx) for k in inner_keys)
            if not batched:
                trace.add_cpu(CPU_HASH_UNITS)
            if any(part is None for part in key):
                continue  # NULL keys never join
            table.setdefault(key, []).append(row)

        null_inner = (None,) * len(plan.inner.layout)
        out: List[tuple] = []
        for row in outer_rows:
            key = tuple(k.eval(row, eval_ctx) for k in outer_keys)
            if not batched:
                trace.add_cpu(CPU_HASH_UNITS)
            matches = [] if any(part is None for part in key) else table.get(key, [])
            matched = False
            for inner_row in matches:
                if batched:
                    match_steps += 1
                else:
                    trace.add_cpu(CPU_OPERATOR_UNITS)
                if residual is not None:
                    combined = row + inner_row
                    if residual.eval(combined, eval_ctx) is not True:
                        continue
                matched = True
                if plan.join_type in (JoinType.INNER, JoinType.LEFT):
                    out.append(row + inner_row)
                elif plan.join_type is JoinType.SEMI:
                    break
            if plan.join_type is JoinType.SEMI and matched:
                out.append(row)
            elif plan.join_type is JoinType.ANTI and not matched:
                out.append(row)
            elif plan.join_type is JoinType.LEFT and not matched:
                out.append(row + null_inner)
        if batched and match_steps:
            trace.add_cpu(match_steps * CPU_OPERATOR_UNITS)
        self._ctx.charge_eval(eval_ctx)
        return out

    def _nested_loop_join(self, plan: NestedLoopJoin) -> List[tuple]:
        outer_rows = self._execute(plan.outer)
        inner_rows = self._execute(plan.inner)  # materialized once
        trace = self._ctx.trace
        trace.add_cpu(CPU_OPERATOR_STARTUP_UNITS)
        eval_ctx = EvalContext()
        combined_layout = plan.outer.layout.concat(plan.inner.layout)
        predicate = _bind_optional(plan.predicate, combined_layout)
        null_inner = (None,) * len(plan.inner.layout)
        out: List[tuple] = []
        batched = FAST_PATH and trace.can_batch_cpu()
        pairs_examined = 0
        for row in outer_rows:
            matched = False
            for inner_row in inner_rows:
                if batched:
                    pairs_examined += 1
                else:
                    trace.add_cpu(CPU_OPERATOR_UNITS)
                combined = row + inner_row
                if predicate is not None and predicate.eval(combined, eval_ctx) is not True:
                    continue
                matched = True
                if plan.join_type in (JoinType.INNER, JoinType.LEFT):
                    out.append(combined)
                elif plan.join_type is JoinType.SEMI:
                    break
            if plan.join_type is JoinType.SEMI and matched:
                out.append(row)
            elif plan.join_type is JoinType.ANTI and not matched:
                out.append(row)
            elif plan.join_type is JoinType.LEFT and not matched:
                out.append(row + null_inner)
        if batched and pairs_examined:
            trace.add_cpu(pairs_examined * CPU_OPERATOR_UNITS)
        self._ctx.charge_eval(eval_ctx)
        return out

    def _merge_join(self, plan: MergeJoin) -> List[tuple]:
        outer_rows = self._execute(plan.outer)
        inner_rows = self._execute(plan.inner)
        trace = self._ctx.trace
        trace.add_cpu(CPU_OPERATOR_STARTUP_UNITS)
        eval_ctx = EvalContext()
        outer_key = plan.outer_key.bind(plan.outer.layout)
        inner_key = plan.inner_key.bind(plan.inner.layout)

        out: List[tuple] = []
        i = j = 0
        n_outer, n_inner = len(outer_rows), len(inner_rows)
        batched = FAST_PATH and trace.can_batch_cpu()
        steps = 0
        while i < n_outer and j < n_inner:
            ok = outer_key.eval(outer_rows[i], eval_ctx)
            ik = inner_key.eval(inner_rows[j], eval_ctx)
            if batched:
                steps += 1
            else:
                trace.add_cpu(CPU_OPERATOR_UNITS)
            if ok is None:
                i += 1
                continue
            if ik is None:
                j += 1
                continue
            if ok < ik:
                i += 1
            elif ok > ik:
                j += 1
            else:
                # Emit the cross product of the equal groups.
                j_end = j
                while j_end < n_inner:
                    k = inner_key.eval(inner_rows[j_end], eval_ctx)
                    if k != ok:
                        break
                    j_end += 1
                i_run = i
                while i_run < n_outer:
                    k = outer_key.eval(outer_rows[i_run], eval_ctx)
                    if k != ok:
                        break
                    for jj in range(j, j_end):
                        if batched:
                            steps += 1
                        else:
                            trace.add_cpu(CPU_OPERATOR_UNITS)
                        out.append(outer_rows[i_run] + inner_rows[jj])
                    i_run += 1
                i = i_run
                j = j_end
        if batched and steps:
            trace.add_cpu(steps * CPU_OPERATOR_UNITS)
        self._ctx.charge_eval(eval_ctx)
        return out

    # -- sort / aggregate / project ------------------------------------------------

    def _sort(self, plan: Sort) -> List[tuple]:
        rows = self._execute(plan.input)
        trace = self._ctx.trace
        trace.add_cpu(CPU_OPERATOR_STARTUP_UNITS)
        eval_ctx = EvalContext()
        keys = [SortKey(k.expr.bind(plan.input.layout), k.ascending) for k in plan.keys]

        n = len(rows)
        if n > 1:
            comparisons = n * math.log2(n) * max(1, len(keys))
            trace.add_cpu(comparisons * CPU_SORT_COMPARE_UNITS)
        # External sort: if the input exceeds sort memory, charge the
        # spill passes (write out runs, read them back to merge).
        row_bytes = max(16, 24 + 8 * len(plan.input.layout))
        input_pages = (n * row_bytes + PAGE_SIZE - 1) // PAGE_SIZE
        if input_pages > self._ctx.sort_mem_pages and input_pages > 0:
            trace.add_page_write(input_pages)
            trace.add_seq_read(input_pages)

        # Stable multi-pass sort, last key first; NULLs sort last.
        for key in reversed(keys):
            expr = key.expr
            if key.ascending:
                rows.sort(key=lambda row: _asc_key(expr.eval(row, eval_ctx)))
            else:
                rows.sort(key=lambda row: _desc_key(expr.eval(row, eval_ctx)),
                          reverse=True)
        self._ctx.charge_eval(eval_ctx)
        return rows

    def _aggregate(self, plan: Aggregate) -> List[tuple]:
        rows = self._execute(plan.input)
        trace = self._ctx.trace
        trace.add_cpu(CPU_OPERATOR_STARTUP_UNITS)
        eval_ctx = EvalContext()
        group_keys = [k.bind(plan.input.layout) for k in plan.group_keys]
        agg_args = [
            spec.arg.bind(plan.input.layout) if spec.arg is not None else None
            for spec in plan.aggregates
        ]

        per_row_units = (CPU_HASH_UNITS
                         + CPU_AGG_TRANSITION_UNITS * max(1, len(plan.aggregates)))
        batched = FAST_PATH and trace.can_batch_cpu()
        if batched and rows:
            trace.add_cpu(len(rows) * per_row_units)

        groups: Dict[tuple, List[_AggState]] = {}
        order: List[tuple] = []
        if (batched and rows and not group_keys
                and all(spec.func is AggFunc.COUNT_STAR
                        for spec in plan.aggregates)):
            # Global COUNT(*) fast path: no keys to evaluate, no args to
            # feed — the whole input collapses to one count per state.
            states = [_AggState(spec.func, spec.distinct)
                      for spec in plan.aggregates]
            for state in states:
                state.count = len(rows)
            groups[()] = states
            order.append(())
        else:
            for row in rows:
                key = tuple(k.eval(row, eval_ctx) for k in group_keys)
                if not batched:
                    trace.add_cpu(per_row_units)
                states = groups.get(key)
                if states is None:
                    states = [_AggState(spec.func, spec.distinct)
                              for spec in plan.aggregates]
                    groups[key] = states
                    order.append(key)
                for state, arg in zip(states, agg_args):
                    value = arg.eval(row, eval_ctx) if arg is not None else None
                    state.update(value)

        if not group_keys and not groups:
            # Global aggregate over an empty input still yields one row.
            groups[()] = [_AggState(spec.func, spec.distinct)
                          for spec in plan.aggregates]
            order.append(())

        having = _bind_optional(plan.having, plan.layout)
        out: List[tuple] = []
        for key in order:
            result = key + tuple(state.finalize() for state in groups[key])
            if having is not None:
                trace.add_cpu(CPU_OPERATOR_UNITS)
                if having.eval(result, eval_ctx) is not True:
                    continue
            out.append(result)
        self._ctx.charge_eval(eval_ctx)
        return out

    def _filter(self, plan: Filter) -> List[tuple]:
        rows = self._execute(plan.input)
        trace = self._ctx.trace
        eval_ctx = EvalContext()
        predicate = plan.predicate.bind(plan.input.layout)
        out = []
        if FAST_PATH and trace.can_batch_cpu():
            if rows:
                trace.add_cpu(len(rows) * CPU_OPERATOR_UNITS)
            for row in rows:
                if predicate.eval(row, eval_ctx) is True:
                    out.append(row)
        else:
            for row in rows:
                trace.add_cpu(CPU_OPERATOR_UNITS)
                if predicate.eval(row, eval_ctx) is True:
                    out.append(row)
        self._ctx.charge_eval(eval_ctx)
        return out

    def _project(self, plan: Project) -> List[tuple]:
        rows = self._execute(plan.input)
        trace = self._ctx.trace
        trace.add_cpu(CPU_OPERATOR_STARTUP_UNITS)
        eval_ctx = EvalContext()
        exprs = [e.bind(plan.input.layout) for e in plan.exprs]
        out = [tuple(e.eval(row, eval_ctx) for e in exprs) for row in rows]
        self._ctx.charge_eval(eval_ctx)
        return out

    def _limit(self, plan: Limit) -> List[tuple]:
        rows = self._execute(plan.input)
        return rows[: plan.count]


class _AggState:
    """Running state of one aggregate."""

    __slots__ = ("func", "count", "total", "extreme", "seen", "distinct_values")

    def __init__(self, func: AggFunc, distinct: bool = False):
        self.func = func
        self.count = 0
        self.total: float = 0.0
        self.extreme: Optional[Value] = None
        self.seen = False
        self.distinct_values: Optional[set] = set() if distinct else None

    def update(self, value: Value) -> None:
        func = self.func
        if func is AggFunc.COUNT_STAR:
            self.count += 1
            return
        if value is None:
            return
        if self.distinct_values is not None:
            if value in self.distinct_values:
                return
            self.distinct_values.add(value)
        self.seen = True
        if func is AggFunc.COUNT:
            self.count += 1
        elif func in (AggFunc.SUM, AggFunc.AVG):
            self.count += 1
            self.total += value  # type: ignore[operator]
        elif func is AggFunc.MIN:
            if self.extreme is None or value < self.extreme:  # type: ignore[operator]
                self.extreme = value
        elif func is AggFunc.MAX:
            if self.extreme is None or value > self.extreme:  # type: ignore[operator]
                self.extreme = value

    def finalize(self) -> Value:
        func = self.func
        if func in (AggFunc.COUNT, AggFunc.COUNT_STAR):
            return self.count
        if func is AggFunc.SUM:
            return self.total if self.seen else None
        if func is AggFunc.AVG:
            return (self.total / self.count) if self.count else None
        return self.extreme


def _bind_optional(expr: Optional[Expr], layout) -> Optional[Expr]:
    return expr.bind(layout) if expr is not None else None


def _asc_key(value: Value):
    from repro.engine.types import Date

    if isinstance(value, Date):
        value = value.ordinal
    return (value is None, value)


def _desc_key(value: Value):
    from repro.engine.types import Date

    if isinstance(value, Date):
        value = value.ordinal
    return (value is not None, value)
