"""The database facade.

A :class:`Database` bundles a catalog, a buffer pool, and an execution
entry point. It is designed to live inside a
:class:`repro.virt.vm.VirtualMachine`: when the VM's memory share
changes, the VM calls :meth:`Database.resize_memory` and the buffer
pool and sort memory are re-sized accordingly — the interaction between
the virtualization knobs and the database knobs that the paper points
out must be tuned together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.engine.bufferpool import BufferPool
from repro.engine.catalog import Catalog
from repro.engine.executor import ExecutionContext, Executor
from repro.engine.plans import PlanNode
from repro.engine.schema import TableSchema
from repro.engine.trace import WorkTrace

#: Fraction of database memory given to the buffer pool; the rest backs
#: per-query sort/hash work memory.
BUFFER_POOL_FRACTION = 0.75
#: Minimum sizes so a tiny VM still runs (thrashing, but running).
MIN_BUFFER_POOL_PAGES = 64
MIN_SORT_MEM_PAGES = 16


@dataclass
class QueryResult:
    """Rows plus the work performed to produce them."""

    rows: List[tuple]
    column_names: List[str]
    trace: WorkTrace
    plan: Optional[PlanNode] = None

    def __len__(self) -> int:
        return len(self.rows)


class Database:
    """One database instance: catalog + buffer pool + executor."""

    def __init__(self, name: str, memory_pages: int = 4096):
        self.name = name
        self.catalog = Catalog()
        self._memory_pages = max(
            memory_pages, MIN_BUFFER_POOL_PAGES + MIN_SORT_MEM_PAGES
        )
        self.buffer_pool = BufferPool(self._buffer_pages(self._memory_pages))
        self.sort_mem_pages = self._sort_pages(self._memory_pages)

    @staticmethod
    def _buffer_pages(total: int) -> int:
        return max(MIN_BUFFER_POOL_PAGES, int(total * BUFFER_POOL_FRACTION))

    @staticmethod
    def _sort_pages(total: int) -> int:
        return max(MIN_SORT_MEM_PAGES, total - Database._buffer_pages(total))

    @property
    def memory_pages(self) -> int:
        return self._memory_pages

    def resize_memory(self, memory_pages: int) -> None:
        """Re-size buffer pool and sort memory to a new total budget.

        Called by the hosting VM when its memory share changes.
        """
        self._memory_pages = max(
            memory_pages, MIN_BUFFER_POOL_PAGES + MIN_SORT_MEM_PAGES
        )
        self.buffer_pool.resize(self._buffer_pages(self._memory_pages))
        self.sort_mem_pages = self._sort_pages(self._memory_pages)

    # -- DDL / loading -------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        self.catalog.create_table(schema)

    def load_rows(self, table_name: str, rows) -> int:
        """Bulk load rows into a table; returns the count loaded.

        Existing indexes on the table are maintained (loading before
        creating indexes is still preferable — bulk-loaded trees pack
        better than insert-built ones).
        """
        info = self.catalog.table(table_name)
        indexes = list(info.indexes.values())
        if not indexes:
            return info.heap.bulk_load(rows)
        count = 0
        positions = {
            index.name: info.schema.column_index(index.column_name)
            for index in indexes
        }
        for row in rows:
            rid = info.heap.append(row)
            for index in indexes:
                key = row[positions[index.name]]
                if key is not None:
                    index.index.insert(key, rid)
            count += 1
        return count

    def create_index(self, index_name: str, table_name: str,
                     column_name: str, unique: bool = False) -> None:
        self.catalog.create_index(index_name, table_name, column_name, unique=unique)

    def analyze(self, table_name: Optional[str] = None) -> None:
        self.catalog.analyze(table_name)

    # -- execution -------------------------------------------------------------

    def execution_context(self) -> ExecutionContext:
        return ExecutionContext(
            catalog=self.catalog,
            buffer_pool=self.buffer_pool,
            sort_mem_pages=self.sort_mem_pages,
        )

    def run_plan(self, plan: PlanNode) -> QueryResult:
        """Execute a pre-built physical plan."""
        context = self.execution_context()
        rows = Executor(context).run(plan)
        names = [column for _alias, column in plan.layout.slots]
        self._publish_trace(context.trace)
        return QueryResult(rows=rows, column_names=names, trace=context.trace, plan=plan)

    def _publish_trace(self, trace: WorkTrace) -> None:
        """Fold one execution's page accounting into the metrics registry.

        Done once per statement so the per-page path stays free of
        metric lookups; the counters make I/O behaviour visible in run
        reports instead of staying buried in per-query traces.
        """
        from repro.obs import metrics

        if trace.seq_page_reads:
            metrics.counter("engine.pages.seq_reads").inc(trace.seq_page_reads)
        if trace.random_page_reads:
            metrics.counter("engine.pages.random_reads").inc(
                trace.random_page_reads)
        if trace.buffer_hits:
            metrics.counter("engine.pages.buffer_hits").inc(trace.buffer_hits)
        if trace.page_writes:
            metrics.counter("engine.pages.writes").inc(trace.page_writes)
        metrics.counter("engine.cpu_units").inc(trace.cpu_units)
        self.buffer_pool.publish_metrics()

    def run_sql(self, sql: str) -> QueryResult:
        """Parse, optimize (under this database's default parameters),
        and execute a SQL query."""
        # Imported here: the optimizer depends on the engine, not vice versa.
        from repro.optimizer.planner import Planner
        from repro.optimizer.params import OptimizerParameters

        planner = Planner(self.catalog, OptimizerParameters.defaults())
        plan = planner.plan_sql(sql)
        return self.run_plan(plan)

    def explain_analyze(self, sql: str) -> str:
        """Execute *sql* and render the plan with actual row counts.

        The per-node "actual rows" next to the optimizer's estimates
        expose cardinality estimation errors the way PostgreSQL's
        ``EXPLAIN ANALYZE`` does.
        """
        result = self.run_sql(sql)
        assert result.plan is not None
        return result.plan.explain(analyze=True)

    def warm_cache(self, table_names: Optional[Sequence[str]] = None) -> None:
        """Prewarm the buffer pool with the given tables (or all)."""
        names = list(table_names) if table_names is not None else self.catalog.table_names()
        for name in names:
            info = self.catalog.table(name)
            self.buffer_pool.prewarm(info.heap.file_id, info.heap.n_pages)

    def cold_restart(self) -> None:
        """Drop all cached pages (simulates a VM restart)."""
        self.buffer_pool.clear()

    def __repr__(self) -> str:
        return (
            f"Database({self.name!r}, tables={self.catalog.table_names()}, "
            f"buffer={self.buffer_pool.capacity}p)"
        )
