"""Work accounting for query execution.

The executor does not measure host wall-clock time (which would make
every figure depend on the machine running the reproduction). Instead
every operator charges the work it performs to a :class:`WorkTrace`:
abstract CPU units and page-level I/O events. The virtualization layer
(:class:`repro.virt.perf.VMPerfModel`) converts a trace into simulated
seconds for a given resource allocation.

The CPU unit charges below are the *ground truth* of the simulation —
the executor's analogue of instructions retired. They are deliberately
richer than the optimizer's cost formulas (startup overheads, per-hit
buffer charges, hash and sort constants), so calibrating the optimizer
against measurements is a genuine fitting problem, as it is on real
hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

# -- CPU unit schedule --------------------------------------------------
# One "unit" is an abstract quantum of CPU work; the physical machine is
# rated in units/second. Relative magnitudes follow folk knowledge about
# row engines: touching a tuple costs ~10x a predicate step, hashing is
# a few predicate steps, etc.

#: Charged for every tuple an operator pulls from a scan.
CPU_TUPLE_UNITS = 120.0
#: Charged per primitive predicate/expression step (comparison,
#: arithmetic op, column fetch).
CPU_OPERATOR_UNITS = 12.0
#: Charged per tuple emitted through an index scan (descent amortized).
CPU_INDEX_TUPLE_UNITS = 60.0
#: Charged per byte examined by LIKE pattern matching.
CPU_LIKE_BYTE_UNITS = 10.0
#: Charged per tuple inserted into / probed against a hash table.
CPU_HASH_UNITS = 45.0
#: Charged per comparison during sorting.
CPU_SORT_COMPARE_UNITS = 18.0
#: Charged per tuple passed through an aggregation transition.
CPU_AGG_TRANSITION_UNITS = 30.0
#: Charged once when an operator starts (plan node startup).
CPU_OPERATOR_STARTUP_UNITS = 2_000.0
#: Charged per buffer-pool hit (locating + pinning a resident page).
CPU_BUFFER_HIT_UNITS = 25.0
#: Charged per page processed by a scan in addition to per-tuple work
#: (page header parsing, slot iteration).
CPU_PAGE_PROCESS_UNITS = 180.0

#: Ceiling under which double-precision floats represent every integer
#: exactly; batched CPU charging is only used below it.
EXACT_CPU_LIMIT = float(2**53)


@dataclass
class WorkTrace:
    """Accumulated CPU and I/O work for one execution.

    Attributes are plain counters; :meth:`merge` combines traces from
    sub-executions (e.g. the statements of a workload).
    """

    cpu_units: float = 0.0
    seq_page_reads: int = 0
    random_page_reads: int = 0
    buffer_hits: int = 0
    page_writes: int = 0
    tuples_processed: int = 0
    # Instrumentation counters (do not add CPU by themselves): page
    # *requests* by access intent regardless of hit/miss, and the
    # fine-grained work categories calibration fits parameters to.
    seq_page_requests: int = 0
    random_page_requests: int = 0
    predicate_ops: int = 0
    like_bytes: int = 0
    index_tuples: int = 0

    # -- charging -------------------------------------------------------

    def add_cpu(self, units: float) -> None:
        """Charge raw CPU units."""
        if units < 0:
            raise ValueError("cannot charge negative CPU work")
        self.cpu_units += units

    def can_batch_cpu(self) -> bool:
        """Whether charging ``n * units`` once equals ``n`` unit charges.

        Every unit constant in this module is an integer-valued float,
        so as long as the accumulator holds an exact integer below
        :data:`EXACT_CPU_LIMIT`, a single multiply-and-add lands on the
        same double as the per-row addition sequence. Sort comparison
        charges are the one non-integral source; after one of those the
        executor's batched fast paths fall back to scalar charging so
        traces stay bit-identical either way.
        """
        return self.cpu_units < EXACT_CPU_LIMIT and self.cpu_units.is_integer()

    def add_tuples(self, n: int, units_per_tuple: float = CPU_TUPLE_UNITS) -> None:
        """Charge per-tuple CPU work for *n* tuples."""
        if n < 0:
            raise ValueError("cannot process a negative tuple count")
        self.tuples_processed += n
        self.cpu_units += n * units_per_tuple

    def add_seq_read(self, pages: int = 1) -> None:
        """Record *pages* sequential page reads from disk."""
        if pages < 0:
            raise ValueError("negative page count")
        self.seq_page_reads += pages

    def add_random_read(self, pages: int = 1) -> None:
        """Record *pages* random page reads from disk."""
        if pages < 0:
            raise ValueError("negative page count")
        self.random_page_reads += pages

    def add_buffer_hit(self, pages: int = 1) -> None:
        """Record page requests satisfied from the buffer pool."""
        if pages < 0:
            raise ValueError("negative page count")
        self.buffer_hits += pages
        self.cpu_units += pages * CPU_BUFFER_HIT_UNITS

    def add_page_write(self, pages: int = 1) -> None:
        """Record dirty pages written back."""
        if pages < 0:
            raise ValueError("negative page count")
        self.page_writes += pages

    # -- aggregate views ---------------------------------------------------

    @property
    def total_page_reads(self) -> int:
        """Physical page reads (sequential + random), excluding hits."""
        return self.seq_page_reads + self.random_page_reads

    @property
    def total_page_requests(self) -> int:
        """All page requests, hit or miss."""
        return self.total_page_reads + self.buffer_hits

    def hit_ratio(self) -> float:
        """Buffer hit ratio over all page requests (1.0 when no requests)."""
        requests = self.total_page_requests
        if requests == 0:
            return 1.0
        return self.buffer_hits / requests

    def merge(self, other: "WorkTrace") -> None:
        """Fold *other*'s counters into this trace."""
        self.cpu_units += other.cpu_units
        self.seq_page_reads += other.seq_page_reads
        self.random_page_reads += other.random_page_reads
        self.buffer_hits += other.buffer_hits
        self.page_writes += other.page_writes
        self.tuples_processed += other.tuples_processed
        self.seq_page_requests += other.seq_page_requests
        self.random_page_requests += other.random_page_requests
        self.predicate_ops += other.predicate_ops
        self.like_bytes += other.like_bytes
        self.index_tuples += other.index_tuples

    def copy(self) -> "WorkTrace":
        """An independent copy of the counters."""
        return WorkTrace(
            cpu_units=self.cpu_units,
            seq_page_reads=self.seq_page_reads,
            random_page_reads=self.random_page_reads,
            buffer_hits=self.buffer_hits,
            page_writes=self.page_writes,
            tuples_processed=self.tuples_processed,
            seq_page_requests=self.seq_page_requests,
            random_page_requests=self.random_page_requests,
            predicate_ops=self.predicate_ops,
            like_bytes=self.like_bytes,
            index_tuples=self.index_tuples,
        )

    def __repr__(self) -> str:
        return (
            f"WorkTrace(cpu={self.cpu_units:.0f}u, seq={self.seq_page_reads}, "
            f"rand={self.random_page_reads}, hits={self.buffer_hits}, "
            f"tuples={self.tuples_processed})"
        )
