"""Paged heap storage.

Tables live in heap files made of fixed-size pages (8 KiB). Rows are
Python tuples; the page tracks an accounting byte budget so fan-out per
page matches what a real slotted page of the schema's row width would
hold. "Disk" is simply the heap file — whether touching a page costs a
physical read or a buffer hit is decided by the buffer pool.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.engine.schema import TableSchema
from repro.engine.types import Value
from repro.util.errors import StorageError
from repro.util.units import PAGE_SIZE

#: Bytes per page reserved for the page header and slot directory.
PAGE_HEADER_BYTES = 64

_file_ids = itertools.count(1)


@dataclass(frozen=True)
class RecordId:
    """Physical address of a tuple: (page number, slot in page)."""

    page_no: int
    slot: int

    def __repr__(self) -> str:
        return f"Rid({self.page_no}, {self.slot})"


class Page:
    """One heap page holding whole rows."""

    __slots__ = ("page_no", "rows", "used_bytes")

    def __init__(self, page_no: int):
        self.page_no = page_no
        self.rows: List[tuple] = []
        self.used_bytes = PAGE_HEADER_BYTES

    def fits(self, row_bytes: int) -> bool:
        return self.used_bytes + row_bytes <= PAGE_SIZE

    def append(self, row: tuple, row_bytes: int) -> int:
        """Add *row*; returns its slot number."""
        if not self.fits(row_bytes):
            raise StorageError(f"page {self.page_no} cannot fit a {row_bytes}-byte row")
        self.rows.append(row)
        self.used_bytes += row_bytes
        return len(self.rows) - 1

    def __len__(self) -> int:
        return len(self.rows)


class HeapFile:
    """An append-oriented heap file for one table."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self.file_id = next(_file_ids)
        self._pages: List[Page] = []
        self._n_rows = 0

    # -- geometry ----------------------------------------------------------

    @property
    def n_pages(self) -> int:
        return len(self._pages)

    @property
    def n_rows(self) -> int:
        return self._n_rows

    def rows_per_page(self) -> int:
        """Nominal fan-out for this schema's average row width."""
        return max(1, (PAGE_SIZE - PAGE_HEADER_BYTES) // self.schema.row_width)

    # -- writes ----------------------------------------------------------------

    def append(self, row: Sequence[Value]) -> RecordId:
        """Validate and append one row; returns its record id."""
        self.schema.validate_row(row)
        row = tuple(row)
        row_bytes = self.schema.row_width
        if not self._pages or not self._pages[-1].fits(row_bytes):
            self._pages.append(Page(len(self._pages)))
        page = self._pages[-1]
        slot = page.append(row, row_bytes)
        self._n_rows += 1
        return RecordId(page.page_no, slot)

    def bulk_load(self, rows: Iterable[Sequence[Value]]) -> int:
        """Append many rows; returns the number loaded."""
        count = 0
        for row in rows:
            self.append(row)
            count += 1
        return count

    # -- reads -----------------------------------------------------------------

    def page(self, page_no: int) -> Page:
        try:
            return self._pages[page_no]
        except IndexError:
            raise StorageError(
                f"heap file for {self.schema.name!r} has no page {page_no}"
            ) from None

    def pages(self) -> Iterator[Page]:
        """Pages in physical order (a sequential scan's access pattern)."""
        return iter(self._pages)

    def fetch(self, rid: RecordId) -> tuple:
        """The row at *rid*."""
        page = self.page(rid.page_no)
        try:
            return page.rows[rid.slot]
        except IndexError:
            raise StorageError(f"no tuple at {rid!r} in {self.schema.name!r}") from None

    def scan_rids(self) -> Iterator[Tuple[RecordId, tuple]]:
        """All (rid, row) pairs in physical order."""
        for page in self._pages:
            for slot, row in enumerate(page.rows):
                yield RecordId(page.page_no, slot), row

    def __repr__(self) -> str:
        return (
            f"HeapFile({self.schema.name!r}, rows={self._n_rows}, "
            f"pages={self.n_pages})"
        )
