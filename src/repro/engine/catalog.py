"""The system catalog: tables, indexes, and their statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine.index import BPlusTreeIndex, HypotheticalIndex
from repro.engine.schema import TableSchema
from repro.engine.statistics import TableStats, analyze_table
from repro.engine.storage import HeapFile
from repro.util.errors import CatalogError


@dataclass
class IndexInfo:
    """Catalog entry for one index (real or hypothetical)."""

    name: str
    table_name: str
    column_name: str
    index: BPlusTreeIndex
    unique: bool = False
    #: What-if entry: costed by the planner, unreadable by the executor.
    hypothetical: bool = False


@dataclass
class TableInfo:
    """Catalog entry for one table."""

    schema: TableSchema
    heap: HeapFile
    stats: Optional[TableStats] = None
    indexes: Dict[str, IndexInfo] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.schema.name


class Catalog:
    """Registry of tables and indexes for one database."""

    def __init__(self):
        self._tables: Dict[str, TableInfo] = {}

    # -- tables ---------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> TableInfo:
        if schema.name in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        info = TableInfo(schema=schema, heap=HeapFile(schema))
        self._tables[schema.name] = info
        return info

    def drop_table(self, name: str) -> None:
        self.table(name)  # raise if absent
        del self._tables[name]

    def table(self, name: str) -> TableInfo:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    # -- indexes ----------------------------------------------------------------

    def create_index(self, index_name: str, table_name: str, column_name: str,
                     unique: bool = False) -> IndexInfo:
        """Build a B+-tree over an existing table column (bulk load)."""
        info = self.table(table_name)
        if not info.schema.has_column(column_name):
            raise CatalogError(
                f"table {table_name!r} has no column {column_name!r}"
            )
        for table in self._tables.values():
            if index_name in table.indexes:
                raise CatalogError(f"index {index_name!r} already exists")
        col_pos = info.schema.column_index(column_name)
        key_width = info.schema.columns[col_pos].avg_width
        entries = (
            (row[col_pos], rid)
            for rid, row in info.heap.scan_rids()
            if row[col_pos] is not None
        )
        tree = BPlusTreeIndex.bulk_load(
            index_name, table_name, column_name, entries,
            key_width=key_width, unique=unique,
        )
        index_info = IndexInfo(
            name=index_name, table_name=table_name,
            column_name=column_name, index=tree, unique=unique,
        )
        info.indexes[index_name] = index_info
        return index_info

    def create_hypothetical_index(self, index_name: str, table_name: str,
                                  column_name: str,
                                  unique: bool = False) -> IndexInfo:
        """Register a what-if index: costed by planning, never built.

        Geometry (pages, height, fanout) is estimated from the table's
        statistics with the same arithmetic a real bulk load uses, so
        what-if plans price it like the materialized tree would. Shows
        up in :meth:`fingerprint` like real DDL — cached plans and
        compiled recost programs invalidate on create *and* drop.
        """
        info = self.table(table_name)
        if not info.schema.has_column(column_name):
            raise CatalogError(
                f"table {table_name!r} has no column {column_name!r}"
            )
        for table in self._tables.values():
            if index_name in table.indexes:
                raise CatalogError(f"index {index_name!r} already exists")
        if info.stats is None:
            self.analyze(table_name)
        stats = info.stats
        assert stats is not None
        col_pos = info.schema.column_index(column_name)
        key_width = info.schema.columns[col_pos].avg_width
        col_stats = stats.column(column_name)
        if col_stats is not None:
            n_entries = round(stats.n_rows * (1.0 - col_stats.null_fraction))
            n_keys = round(col_stats.n_distinct)
        else:
            n_entries = stats.n_rows
            n_keys = stats.n_rows
        tree = HypotheticalIndex(
            index_name, table_name, column_name,
            n_entries=n_entries, n_keys=n_keys,
            key_width=key_width, unique=unique,
        )
        index_info = IndexInfo(
            name=index_name, table_name=table_name,
            column_name=column_name, index=tree, unique=unique,
            hypothetical=True,
        )
        info.indexes[index_name] = index_info
        return index_info

    def drop_index(self, index_name: str) -> None:
        """Drop an index (real or hypothetical) by name."""
        for table in self._tables.values():
            if index_name in table.indexes:
                del table.indexes[index_name]
                return
        raise CatalogError(f"unknown index {index_name!r}")

    def indexes_on(self, table_name: str) -> List[IndexInfo]:
        return list(self.table(table_name).indexes.values())

    def index_on_column(self, table_name: str, column_name: str) -> Optional[IndexInfo]:
        """The first index over (table, column), if any."""
        for index_info in self.table(table_name).indexes.values():
            if index_info.column_name == column_name:
                return index_info
        return None

    # -- identity ----------------------------------------------------------------

    def fingerprint(self) -> tuple:
        """A hashable summary of everything planning depends on.

        Covers, per table: the row/page population, whether statistics
        are present (and how many rows they describe), and the index
        set. Cached plans and compiled recost programs key on this —
        any DDL, load, or ``analyze`` that could change a plan changes
        the fingerprint (see :mod:`repro.optimizer.recost`).
        """
        tables = []
        for name in self.table_names():
            info = self._tables[name]
            stats = info.stats
            tables.append((
                name,
                info.heap.n_rows,
                info.heap.n_pages,
                None if stats is None else (stats.n_rows, stats.n_pages),
                tuple(sorted(
                    (idx.name, idx.column_name, idx.unique, idx.hypothetical)
                    for idx in info.indexes.values()
                )),
            ))
        return tuple(tables)

    # -- statistics --------------------------------------------------------------

    def analyze(self, table_name: Optional[str] = None) -> None:
        """Refresh statistics for one table or all tables."""
        names = [table_name] if table_name is not None else self.table_names()
        for name in names:
            info = self.table(name)
            info.stats = analyze_table(info.heap)

    def stats(self, table_name: str) -> TableStats:
        info = self.table(table_name)
        if info.stats is None:
            raise CatalogError(
                f"table {table_name!r} has no statistics; run analyze() first"
            )
        return info.stats

    def __repr__(self) -> str:
        return f"Catalog(tables={self.table_names()})"
