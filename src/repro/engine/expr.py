"""Expression trees and their evaluator.

One expression representation is shared by the SQL binder (which
produces it), the optimizer (which estimates selectivities over it),
and the executor (which evaluates it per row). Expressions are bound to
a :class:`RowLayout` — the positional layout of the rows an operator
produces — before evaluation, so evaluation is index-based.

Evaluation is three-valued: comparisons involving NULL yield ``None``
(unknown) and AND/OR follow SQL's truth tables. Filters keep only rows
whose predicate is exactly ``True``.

Every evaluation charges primitive steps to an :class:`EvalContext`, so
the executor can account CPU work per predicate step — the quantity the
paper's ``cpu_operator_cost`` calibration measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.types import Date, Value
from repro.util.errors import PlanningError


class RowLayout:
    """Positional layout of a row: ordered (relation alias, column) slots."""

    def __init__(self, slots: Sequence[Tuple[str, str]]):
        self.slots: Tuple[Tuple[str, str], ...] = tuple(slots)
        self._index: Dict[Tuple[str, str], int] = {}
        for i, slot in enumerate(self.slots):
            # Later duplicates lose; binder guarantees uniqueness.
            self._index.setdefault(slot, i)

    def index_of(self, alias: str, column: str) -> int:
        try:
            return self._index[(alias, column)]
        except KeyError:
            raise PlanningError(
                f"layout has no slot for {alias}.{column}"
            ) from None

    def has(self, alias: str, column: str) -> bool:
        return (alias, column) in self._index

    def concat(self, other: "RowLayout") -> "RowLayout":
        return RowLayout(self.slots + other.slots)

    def __len__(self) -> int:
        return len(self.slots)

    def __repr__(self) -> str:
        return f"RowLayout({['.'.join(s) for s in self.slots]})"


class EvalContext:
    """Accumulates the primitive work performed by expression evaluation."""

    __slots__ = ("ops", "like_bytes")

    def __init__(self):
        self.ops = 0
        self.like_bytes = 0

    def reset(self) -> None:
        self.ops = 0
        self.like_bytes = 0


class Expr:
    """Base class for expression nodes."""

    def bind(self, layout: RowLayout) -> "Expr":
        """Return a copy with column references resolved to slot indexes."""
        raise NotImplementedError

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        raise NotImplementedError

    def columns(self) -> List[Tuple[str, str]]:
        """All (alias, column) references under this node."""
        out: List[Tuple[str, str]] = []
        self._collect_columns(out)
        return out

    def _collect_columns(self, out: List[Tuple[str, str]]) -> None:
        raise NotImplementedError

    def op_count(self) -> int:
        """Static count of primitive steps one evaluation performs.

        Used by the optimizer's ``cpu_operator_cost`` charging; the
        executor's dynamic count (which honors short-circuiting) is the
        ground truth.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A reference to a column of some relation in scope."""

    alias: str
    column: str
    index: int = -1  # slot position once bound

    def bind(self, layout: RowLayout) -> "ColumnRef":
        return ColumnRef(self.alias, self.column, layout.index_of(self.alias, self.column))

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        ctx.ops += 1
        if self.index < 0:
            raise PlanningError(f"unbound column reference {self.alias}.{self.column}")
        return row[self.index]

    def _collect_columns(self, out: List[Tuple[str, str]]) -> None:
        out.append((self.alias, self.column))

    def op_count(self) -> int:
        return 1

    def __str__(self) -> str:
        return f"{self.alias}.{self.column}"


@dataclass(frozen=True)
class Literal(Expr):
    """A constant."""

    value: Value

    def bind(self, layout: RowLayout) -> "Literal":
        return self

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        return self.value

    def _collect_columns(self, out: List[Tuple[str, str]]) -> None:
        pass

    def op_count(self) -> int:
        return 0

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


#: Comparison operators and their result when compare(a,b) returns c.
_COMPARISONS = {
    "=": lambda c: c == 0,
    "<>": lambda c: c != 0,
    "<": lambda c: c < 0,
    "<=": lambda c: c <= 0,
    ">": lambda c: c > 0,
    ">=": lambda c: c >= 0,
}

_ARITHMETIC = {"+", "-", "*", "/"}


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Arithmetic, comparison, or boolean connective."""

    op: str
    left: Expr
    right: Expr

    def bind(self, layout: RowLayout) -> "BinaryOp":
        return BinaryOp(self.op, self.left.bind(layout), self.right.bind(layout))

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        op = self.op
        if op == "and":
            left = self.left.eval(row, ctx)
            ctx.ops += 1
            if left is False:
                return False  # short-circuit
            right = self.right.eval(row, ctx)
            if right is False:
                return False
            if left is None or right is None:
                return None
            return True
        if op == "or":
            left = self.left.eval(row, ctx)
            ctx.ops += 1
            if left is True:
                return True
            right = self.right.eval(row, ctx)
            if right is True:
                return True
            if left is None or right is None:
                return None
            return False

        left = self.left.eval(row, ctx)
        right = self.right.eval(row, ctx)
        ctx.ops += 1
        if left is None or right is None:
            return None
        if op in _COMPARISONS:
            return _COMPARISONS[op](_compare(left, right))
        if op in _ARITHMETIC:
            return _arith(op, left, right)
        raise PlanningError(f"unknown operator {op!r}")

    def _collect_columns(self, out: List[Tuple[str, str]]) -> None:
        self.left._collect_columns(out)
        self.right._collect_columns(out)

    def op_count(self) -> int:
        return 1 + self.left.op_count() + self.right.op_count()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class NotExpr(Expr):
    """Logical negation (three-valued)."""

    operand: Expr

    def bind(self, layout: RowLayout) -> "NotExpr":
        return NotExpr(self.operand.bind(layout))

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        value = self.operand.eval(row, ctx)
        ctx.ops += 1
        if value is None:
            return None
        return not value

    def _collect_columns(self, out: List[Tuple[str, str]]) -> None:
        self.operand._collect_columns(out)

    def op_count(self) -> int:
        return 1 + self.operand.op_count()

    def __str__(self) -> str:
        return f"(not {self.operand})"


@dataclass(frozen=True)
class IsNullExpr(Expr):
    """``expr IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False

    def bind(self, layout: RowLayout) -> "IsNullExpr":
        return IsNullExpr(self.operand.bind(layout), self.negated)

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        value = self.operand.eval(row, ctx)
        ctx.ops += 1
        is_null = value is None
        return (not is_null) if self.negated else is_null

    def _collect_columns(self, out: List[Tuple[str, str]]) -> None:
        self.operand._collect_columns(out)

    def op_count(self) -> int:
        return 1 + self.operand.op_count()

    def __str__(self) -> str:
        return f"({self.operand} is {'not ' if self.negated else ''}null)"


class LikeExpr(Expr):
    """SQL LIKE with ``%`` and ``_`` wildcards.

    Matching uses the greedy segment algorithm (split the pattern at
    each ``%``, locate every segment left to right), which is linear in
    the subject — a backtracking regex would be quadratic-to-exponential
    on patterns like ``%a%a%a%b``, a denial-of-service a database
    cannot afford.

    Pattern matching is CPU-intensive: evaluation charges one op plus
    the number of subject bytes examined — this is what makes TPC-H Q13
    CPU-bound in this engine, as it is on real hardware.
    """

    __slots__ = ("operand", "pattern", "negated", "_segments")

    def __init__(self, operand: Expr, pattern: str, negated: bool = False):
        self.operand = operand
        self.pattern = pattern
        self.negated = negated
        # Segments between % signs; each is matched literally except
        # that '_' matches any single character.
        self._segments = pattern.split("%")

    def bind(self, layout: RowLayout) -> "LikeExpr":
        return LikeExpr(self.operand.bind(layout), self.pattern, self.negated)

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        value = self.operand.eval(row, ctx)
        ctx.ops += 1
        if value is None:
            return None
        if not isinstance(value, str):
            raise PlanningError("LIKE applied to a non-text value")
        ctx.like_bytes += len(value)
        matched = _like_match(value, self._segments)
        return (not matched) if self.negated else matched

    def _collect_columns(self, out: List[Tuple[str, str]]) -> None:
        self.operand._collect_columns(out)

    def op_count(self) -> int:
        return 1 + self.operand.op_count()

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, LikeExpr)
            and self.operand == other.operand
            and self.pattern == other.pattern
            and self.negated == other.negated
        )

    def __hash__(self) -> int:
        return hash((type(self), self.operand, self.pattern, self.negated))

    def __str__(self) -> str:
        return f"({self.operand} {'not ' if self.negated else ''}like '{self.pattern}')"


@dataclass(frozen=True)
class InListExpr(Expr):
    """``expr [NOT] IN (v1, v2, ...)`` over constant values."""

    operand: Expr
    values: Tuple[Value, ...]
    negated: bool = False

    def bind(self, layout: RowLayout) -> "InListExpr":
        return InListExpr(self.operand.bind(layout), self.values, self.negated)

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        value = self.operand.eval(row, ctx)
        ctx.ops += max(1, len(self.values))
        if value is None:
            return None
        found = any(_compare(value, v) == 0 for v in self.values if v is not None)
        if not found and any(v is None for v in self.values):
            return None  # SQL: x IN (..., NULL) is unknown when not found
        return (not found) if self.negated else found

    def _collect_columns(self, out: List[Tuple[str, str]]) -> None:
        self.operand._collect_columns(out)

    def op_count(self) -> int:
        return max(1, len(self.values)) + self.operand.op_count()

    def __str__(self) -> str:
        vals = ", ".join(str(v) for v in self.values)
        return f"({self.operand} {'not ' if self.negated else ''}in ({vals}))"


@dataclass(frozen=True)
class CaseExpr(Expr):
    """``CASE WHEN cond THEN value ... [ELSE value] END``."""

    branches: Tuple[Tuple[Expr, Expr], ...]
    default: Optional[Expr] = None

    def bind(self, layout: RowLayout) -> "CaseExpr":
        return CaseExpr(
            tuple((cond.bind(layout), value.bind(layout)) for cond, value in self.branches),
            self.default.bind(layout) if self.default is not None else None,
        )

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        for cond, value in self.branches:
            ctx.ops += 1
            if cond.eval(row, ctx) is True:
                return value.eval(row, ctx)
        if self.default is not None:
            return self.default.eval(row, ctx)
        return None

    def _collect_columns(self, out: List[Tuple[str, str]]) -> None:
        for cond, value in self.branches:
            cond._collect_columns(out)
            value._collect_columns(out)
        if self.default is not None:
            self.default._collect_columns(out)

    def op_count(self) -> int:
        total = 0
        for cond, value in self.branches:
            total += 1 + cond.op_count() + value.op_count()
        if self.default is not None:
            total += self.default.op_count()
        return total

    def __str__(self) -> str:
        parts = " ".join(f"when {c} then {v}" for c, v in self.branches)
        tail = f" else {self.default}" if self.default is not None else ""
        return f"(case {parts}{tail} end)"


@dataclass(frozen=True)
class ExtractExpr(Expr):
    """``EXTRACT(unit FROM date_expr)`` for unit in year/month/day."""

    unit: str
    operand: Expr

    def bind(self, layout: RowLayout) -> "ExtractExpr":
        return ExtractExpr(self.unit, self.operand.bind(layout))

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        value = self.operand.eval(row, ctx)
        ctx.ops += 1
        if value is None:
            return None
        if not isinstance(value, Date):
            raise PlanningError("EXTRACT applied to a non-date value")
        date = value.to_date()
        if self.unit == "year":
            return date.year
        if self.unit == "month":
            return date.month
        if self.unit == "day":
            return date.day
        raise PlanningError(f"unsupported EXTRACT unit {self.unit!r}")

    def _collect_columns(self, out: List[Tuple[str, str]]) -> None:
        self.operand._collect_columns(out)

    def op_count(self) -> int:
        return 1 + self.operand.op_count()

    def __str__(self) -> str:
        return f"extract({self.unit} from {self.operand})"


class SubplanExpr(Expr):
    """Placeholder for an uncorrelated scalar subquery.

    Carries the bound logical query (attached by the binder) and, once
    planned, the costed physical plan (attached by the planner). The
    executor resolves every occurrence to a :class:`Literal` — by
    running the subplan once — before evaluating the enclosing
    expression, so :meth:`eval` is never reached.
    """

    __slots__ = ("logical", "plan")

    def __init__(self, logical, plan=None):
        self.logical = logical
        self.plan = plan

    def bind(self, layout: RowLayout) -> "SubplanExpr":
        return self  # no column references of its own

    def eval(self, row: tuple, ctx: EvalContext) -> Value:
        raise PlanningError(
            "scalar subquery was not resolved before evaluation"
        )

    def _collect_columns(self, out: List[Tuple[str, str]]) -> None:
        pass  # uncorrelated: no outer references

    def op_count(self) -> int:
        return 1

    def __str__(self) -> str:
        return "(scalar subquery)"


def map_children(expr: Expr, fn) -> Expr:
    """Rebuild *expr* with *fn* applied to each direct child expression.

    Leaves (column refs, literals, subplans) are returned unchanged;
    callers handle them in their own recursion.
    """
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, fn(expr.left), fn(expr.right))
    if isinstance(expr, NotExpr):
        return NotExpr(fn(expr.operand))
    if isinstance(expr, IsNullExpr):
        return IsNullExpr(fn(expr.operand), expr.negated)
    if isinstance(expr, LikeExpr):
        return LikeExpr(fn(expr.operand), expr.pattern, expr.negated)
    if isinstance(expr, InListExpr):
        return InListExpr(fn(expr.operand), expr.values, expr.negated)
    if isinstance(expr, CaseExpr):
        return CaseExpr(
            tuple((fn(c), fn(v)) for c, v in expr.branches),
            fn(expr.default) if expr.default is not None else None,
        )
    if isinstance(expr, ExtractExpr):
        return ExtractExpr(expr.unit, fn(expr.operand))
    return expr


def contains_subplan(expr: Optional[Expr]) -> bool:
    """Whether any :class:`SubplanExpr` occurs under *expr*."""
    if expr is None:
        return False
    if isinstance(expr, SubplanExpr):
        return True
    found = False

    def probe(child: Expr) -> Expr:
        nonlocal found
        if contains_subplan(child):
            found = True
        return child

    map_children(expr, probe)
    return found


def _compare(a: Value, b: Value) -> int:
    """Three-way compare of two non-null values."""
    if isinstance(a, Date) and isinstance(b, Date):
        return (a.ordinal > b.ordinal) - (a.ordinal < b.ordinal)
    if isinstance(a, bool) or isinstance(b, bool):
        a, b = int(a), int(b)  # type: ignore[arg-type]
    try:
        return (a > b) - (a < b)  # type: ignore[operator]
    except TypeError:
        raise PlanningError(
            f"cannot compare {type(a).__name__} with {type(b).__name__}"
        ) from None


def _arith(op: str, a: Value, b: Value) -> Value:
    if isinstance(a, Date) or isinstance(b, Date):
        # Date arithmetic is normalized by the binder to add_days; here
        # only date - date (day difference) remains meaningful.
        if op == "-" and isinstance(a, Date) and isinstance(b, Date):
            return a - b
        raise PlanningError(f"unsupported date arithmetic: {op}")
    if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
        raise PlanningError(f"arithmetic on non-numeric values: {a!r} {op} {b!r}")
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if b == 0:
            return None  # SQL raises; we follow the "unknown" convention
        return a / b
    raise PlanningError(f"unknown arithmetic operator {op!r}")


def _segment_matches_at(subject: str, position: int, segment: str) -> bool:
    """Whether *segment* (literal text, '_' = any char) matches at *position*."""
    end = position + len(segment)
    if end > len(subject):
        return False
    for offset, ch in enumerate(segment):
        if ch != "_" and subject[position + offset] != ch:
            return False
    return True


def _find_segment(subject: str, start: int, segment: str) -> int:
    """Earliest position >= *start* where *segment* matches, or -1."""
    if not segment:
        return start
    if "_" not in segment:
        return subject.find(segment, start)
    last = len(subject) - len(segment)
    for position in range(start, last + 1):
        if _segment_matches_at(subject, position, segment):
            return position
    return -1


def _like_match(subject: str, segments: List[str]) -> bool:
    """Greedy LIKE matching over pattern *segments* (split at '%').

    A single segment means no '%' in the pattern: exact-length match.
    Otherwise the first segment anchors at the start, the last at the
    end, and every middle segment is located greedily left-to-right —
    the classic linear algorithm for glob matching.
    """
    if len(segments) == 1:
        return len(subject) == len(segments[0]) and \
            _segment_matches_at(subject, 0, segments[0])

    first, *middles, last = segments
    if not _segment_matches_at(subject, 0, first):
        return False
    position = len(first)
    for segment in middles:
        found = _find_segment(subject, position, segment)
        if found < 0:
            return False
        position = found + len(segment)
    tail_start = len(subject) - len(last)
    return tail_start >= position and \
        _segment_matches_at(subject, tail_start, last)


def conjuncts(expr: Optional[Expr]) -> List[Expr]:
    """Flatten a predicate into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def and_together(exprs: Sequence[Expr]) -> Optional[Expr]:
    """Combine predicates with AND; ``None`` for an empty list."""
    result: Optional[Expr] = None
    for expr in exprs:
        result = expr if result is None else BinaryOp("and", result, expr)
    return result
