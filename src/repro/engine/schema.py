"""Table schemas.

A :class:`TableSchema` names a table's columns and types and computes
the fixed accounting width of a row, which the storage layer uses to
pack tuples into pages. Types are deliberately coarse — the engine
cares about comparison semantics and byte width, not SQL's full type
lattice.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Sequence, Tuple

from repro.engine.types import Date, Value
from repro.util.errors import CatalogError


class ColumnType(str, Enum):
    """Storage type of a column."""

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    DATE = "date"

    def python_types(self) -> tuple:
        if self is ColumnType.INT:
            return (int,)
        if self is ColumnType.FLOAT:
            return (int, float)
        if self is ColumnType.TEXT:
            return (str,)
        return (Date,)


@dataclass(frozen=True)
class Column:
    """One column: a name, a type, and an average stored width."""

    name: str
    col_type: ColumnType
    #: Average width in bytes; for TEXT this is the expected string
    #: length (set by the schema author), for others the fixed width.
    avg_width: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise CatalogError("column name must be non-empty")
        if self.avg_width == 0:
            defaults = {
                ColumnType.INT: 8,
                ColumnType.FLOAT: 8,
                ColumnType.DATE: 4,
                ColumnType.TEXT: 24,
            }
            object.__setattr__(self, "avg_width", defaults[self.col_type])

    def accepts(self, value: Value) -> bool:
        """Whether *value* (or NULL) may be stored in this column."""
        if value is None:
            return True
        return isinstance(value, self.col_type.python_types())


class TableSchema:
    """An ordered collection of named columns."""

    def __init__(self, name: str, columns: Sequence[Column]):
        if not name:
            raise CatalogError("table name must be non-empty")
        if not columns:
            raise CatalogError(f"table {name!r} needs at least one column")
        seen = set()
        for column in columns:
            if column.name in seen:
                raise CatalogError(f"duplicate column {column.name!r} in {name!r}")
            seen.add(column.name)
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._index: Dict[str, int] = {c.name: i for i, c in enumerate(self.columns)}

    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def column_index(self, name: str) -> int:
        """Ordinal position of a column, raising :class:`CatalogError` if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise CatalogError(f"table {self.name!r} has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        return name in self._index

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    @property
    def row_width(self) -> int:
        """Average stored bytes per row, including a small tuple header."""
        header = 24  # tuple header + item pointer, PostgreSQL-ish
        return header + sum(c.avg_width for c in self.columns)

    def validate_row(self, row: Sequence[Value]) -> None:
        """Raise :class:`CatalogError` if *row* does not fit this schema."""
        if len(row) != len(self.columns):
            raise CatalogError(
                f"row has {len(row)} values; table {self.name!r} has "
                f"{len(self.columns)} columns"
            )
        for column, value in zip(self.columns, row):
            if not column.accepts(value):
                raise CatalogError(
                    f"value {value!r} is not valid for column "
                    f"{self.name}.{column.name} ({column.col_type.value})"
                )

    def __len__(self) -> int:
        return len(self.columns)

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name} {c.col_type.value}" for c in self.columns)
        return f"TableSchema({self.name!r}: {cols})"
