"""Physical query plans.

These nodes are the contract between the optimizer (which builds and
costs them) and the executor (which runs them). Each node carries its
output :class:`RowLayout` plus the optimizer's row/cost estimates so a
plan can be explained exactly as ``EXPLAIN`` would print it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence

from repro.engine.expr import Expr, RowLayout
from repro.engine.types import Value


class JoinType(str, Enum):
    """Join semantics supported by the executor."""

    INNER = "inner"
    LEFT = "left"
    SEMI = "semi"
    ANTI = "anti"


class AggFunc(str, Enum):
    """Aggregate functions."""

    COUNT = "count"        # count(expr): non-null inputs
    COUNT_STAR = "count*"  # count(*): all rows
    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"


@dataclass
class AggSpec:
    """One aggregate in an Aggregate node's output."""

    func: AggFunc
    arg: Optional[Expr]  # None only for COUNT_STAR
    output_name: str
    #: Deduplicate inputs before aggregating (COUNT/SUM/AVG DISTINCT).
    distinct: bool = False


@dataclass
class SortKey:
    """One ORDER BY / merge-join ordering key."""

    expr: Expr
    ascending: bool = True


class PlanNode:
    """Base class for physical plan nodes."""

    #: Output row layout; set by the planner / builder.
    layout: RowLayout

    # Optimizer annotations (filled in by the cost model).
    est_rows: float = 0.0
    est_startup_cost: float = 0.0
    est_total_cost: float = 0.0
    #: Rows this node actually produced, recorded by the executor.
    actual_rows: Optional[int] = None

    def children(self) -> Sequence["PlanNode"]:
        return ()

    def node_label(self) -> str:
        return type(self).__name__

    def explain(self, indent: int = 0, analyze: bool = False) -> str:
        """Render the plan tree like EXPLAIN (ANALYZE) output."""
        pad = "  " * indent
        line = (
            f"{pad}{self.node_label()}  "
            f"(cost={self.est_startup_cost:.2f}..{self.est_total_cost:.2f} "
            f"rows={self.est_rows:.0f})"
        )
        if analyze and self.actual_rows is not None:
            line += f" (actual rows={self.actual_rows})"
        parts = [line]
        parts.extend(
            child.explain(indent + 1, analyze=analyze)
            for child in self.children()
        )
        return "\n".join(parts)


@dataclass
class SeqScan(PlanNode):
    """Full scan of a heap file, with an optional pushed-down filter."""

    table_name: str
    alias: str
    filter_expr: Optional[Expr] = None

    def __post_init__(self) -> None:
        self.layout = RowLayout(())  # set by planner/builder

    def node_label(self) -> str:
        label = f"SeqScan {self.table_name} as {self.alias}"
        if self.filter_expr is not None:
            label += f" filter={self.filter_expr}"
        return label


@dataclass
class IndexScan(PlanNode):
    """B+-tree range scan plus heap fetches, with a residual filter."""

    table_name: str
    alias: str
    index_name: str
    low: Optional[Value] = None
    high: Optional[Value] = None
    low_inclusive: bool = True
    high_inclusive: bool = True
    filter_expr: Optional[Expr] = None

    def __post_init__(self) -> None:
        self.layout = RowLayout(())

    def node_label(self) -> str:
        lo = "" if self.low is None else f"{'>=' if self.low_inclusive else '>'}{self.low}"
        hi = "" if self.high is None else f"{'<=' if self.high_inclusive else '<'}{self.high}"
        bounds = " ".join(b for b in (lo, hi) if b)
        label = f"IndexScan {self.index_name} on {self.table_name} as {self.alias}"
        if bounds:
            label += f" [{bounds}]"
        if self.filter_expr is not None:
            label += f" filter={self.filter_expr}"
        return label


@dataclass
class NestedLoopJoin(PlanNode):
    """Nested loops with a materialized inner side."""

    outer: PlanNode
    inner: PlanNode
    join_type: JoinType = JoinType.INNER
    predicate: Optional[Expr] = None

    def __post_init__(self) -> None:
        self.layout = _join_layout(self.outer, self.inner, self.join_type)

    def children(self) -> Sequence[PlanNode]:
        return (self.outer, self.inner)

    def node_label(self) -> str:
        pred = f" on {self.predicate}" if self.predicate is not None else ""
        return f"NestedLoopJoin ({self.join_type.value}){pred}"


@dataclass
class HashJoin(PlanNode):
    """Hash join: build on the inner (right) side, probe with the outer."""

    outer: PlanNode
    inner: PlanNode
    outer_keys: List[Expr] = field(default_factory=list)
    inner_keys: List[Expr] = field(default_factory=list)
    join_type: JoinType = JoinType.INNER
    residual: Optional[Expr] = None

    def __post_init__(self) -> None:
        self.layout = _join_layout(self.outer, self.inner, self.join_type)

    def children(self) -> Sequence[PlanNode]:
        return (self.outer, self.inner)

    def node_label(self) -> str:
        keys = ", ".join(
            f"{o} = {i}" for o, i in zip(self.outer_keys, self.inner_keys)
        )
        label = f"HashJoin ({self.join_type.value}) on {keys}"
        if self.residual is not None:
            label += f" residual={self.residual}"
        return label


@dataclass
class MergeJoin(PlanNode):
    """Merge join of two inputs sorted on the join keys (inner only)."""

    outer: PlanNode
    inner: PlanNode
    outer_key: Expr = None  # type: ignore[assignment]
    inner_key: Expr = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.layout = _join_layout(self.outer, self.inner, JoinType.INNER)

    def children(self) -> Sequence[PlanNode]:
        return (self.outer, self.inner)

    def node_label(self) -> str:
        return f"MergeJoin on {self.outer_key} = {self.inner_key}"


@dataclass
class Sort(PlanNode):
    """Sort the input; spills to simulated temp files when too large."""

    input: PlanNode
    keys: List[SortKey] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.layout = self.input.layout

    def children(self) -> Sequence[PlanNode]:
        return (self.input,)

    def node_label(self) -> str:
        keys = ", ".join(
            f"{k.expr} {'asc' if k.ascending else 'desc'}" for k in self.keys
        )
        return f"Sort by {keys}"


@dataclass
class Aggregate(PlanNode):
    """Hash aggregation with optional grouping and HAVING."""

    input: PlanNode
    group_keys: List[Expr] = field(default_factory=list)
    aggregates: List[AggSpec] = field(default_factory=list)
    having: Optional[Expr] = None
    #: Output column names for the group keys.
    group_names: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.group_names:
            self.group_names = [f"g{i}" for i in range(len(self.group_keys))]
        slots = [("_agg", name) for name in self.group_names]
        slots += [("_agg", spec.output_name) for spec in self.aggregates]
        self.layout = RowLayout(slots)

    def children(self) -> Sequence[PlanNode]:
        return (self.input,)

    def node_label(self) -> str:
        groups = ", ".join(str(k) for k in self.group_keys) or "()"
        aggs = ", ".join(
            f"{s.func.value}({s.arg if s.arg is not None else '*'})"
            for s in self.aggregates
        )
        label = f"Aggregate group by {groups} agg [{aggs}]"
        if self.having is not None:
            label += f" having {self.having}"
        return label


@dataclass
class Filter(PlanNode):
    """Apply a predicate to the input (used for non-pushable conjuncts)."""

    input: PlanNode
    predicate: Expr = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.layout = self.input.layout

    def children(self) -> Sequence[PlanNode]:
        return (self.input,)

    def node_label(self) -> str:
        return f"Filter {self.predicate}"


@dataclass
class Project(PlanNode):
    """Compute output expressions."""

    input: PlanNode
    exprs: List[Expr] = field(default_factory=list)
    names: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.names:
            self.names = [f"c{i}" for i in range(len(self.exprs))]
        self.layout = RowLayout([("_out", name) for name in self.names])

    def children(self) -> Sequence[PlanNode]:
        return (self.input,)

    def node_label(self) -> str:
        cols = ", ".join(f"{e} as {n}" for e, n in zip(self.exprs, self.names))
        return f"Project {cols}"


@dataclass
class Limit(PlanNode):
    """Return at most *count* rows."""

    input: PlanNode
    count: int = 0

    def __post_init__(self) -> None:
        self.layout = self.input.layout

    def children(self) -> Sequence[PlanNode]:
        return (self.input,)

    def node_label(self) -> str:
        return f"Limit {self.count}"


def _join_layout(outer: PlanNode, inner: PlanNode, join_type: JoinType) -> RowLayout:
    """Joined row layout: semi/anti joins emit only the outer side."""
    if join_type in (JoinType.SEMI, JoinType.ANTI):
        return outer.layout
    return outer.layout.concat(inner.layout)


def walk(plan: PlanNode):
    """Yield every node in the tree, pre-order."""
    yield plan
    for child in plan.children():
        yield from walk(child)
