"""SQL front end: lexer, parser, and binder.

Supports the SELECT dialect needed by the TPC-H workload kit: implicit
and explicit joins (including LEFT OUTER JOIN), WHERE with the usual
predicates (comparisons, BETWEEN, IN lists, LIKE, IS NULL), correlated
EXISTS / NOT EXISTS and uncorrelated IN subqueries (decorrelated into
semi/anti joins), derived tables in FROM, aggregates with GROUP BY /
HAVING, expressions over aggregates, ORDER BY on output columns, LIMIT,
and DATE/INTERVAL literal arithmetic.
"""

from repro.engine.sql.lexer import Lexer, Token, TokenType
from repro.engine.sql.parser import parse_select
from repro.engine.sql.binder import Binder, LogicalQuery

__all__ = [
    "Lexer",
    "Token",
    "TokenType",
    "parse_select",
    "Binder",
    "LogicalQuery",
]
