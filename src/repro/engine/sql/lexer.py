"""SQL tokenizer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List

from repro.util.errors import SqlError

KEYWORDS = {
    "select", "from", "where", "group", "by", "having", "order", "limit",
    "as", "and", "or", "not", "in", "like", "between", "is", "null",
    "exists", "case", "when", "then", "else", "end", "join", "inner",
    "left", "right", "outer", "on", "date", "interval", "asc", "desc",
    "distinct", "day", "month", "year",
}


class TokenType(str, Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word


#: Multi-character operators, longest first.
_OPERATORS = ("<>", "<=", ">=", "!=", "=", "<", ">", "+", "-", "*", "/")
_PUNCT = "(),."


class Lexer:
    """Turns SQL text into a token list."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0

    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self._pos >= len(self._text):
                tokens.append(Token(TokenType.EOF, "", self._pos))
                return tokens
            tokens.append(self._next_token())

    def _skip_whitespace_and_comments(self) -> None:
        text = self._text
        while self._pos < len(text):
            ch = text[self._pos]
            if ch.isspace():
                self._pos += 1
            elif text.startswith("--", self._pos):
                end = text.find("\n", self._pos)
                self._pos = len(text) if end < 0 else end + 1
            else:
                return

    def _next_token(self) -> Token:
        text = self._text
        start = self._pos
        ch = text[start]

        if ch == "'":
            return self._string(start)
        if ch.isdigit() or (ch == "." and start + 1 < len(text) and text[start + 1].isdigit()):
            return self._number(start)
        if ch.isalpha() or ch == "_":
            return self._word(start)
        for op in _OPERATORS:
            if text.startswith(op, start):
                self._pos = start + len(op)
                value = "<>" if op == "!=" else op
                return Token(TokenType.OPERATOR, value, start)
        if ch in _PUNCT:
            self._pos = start + 1
            return Token(TokenType.PUNCT, ch, start)
        raise SqlError(f"unexpected character {ch!r} at position {start}")

    def _string(self, start: int) -> Token:
        text = self._text
        pos = start + 1
        out = []
        while pos < len(text):
            ch = text[pos]
            if ch == "'":
                if pos + 1 < len(text) and text[pos + 1] == "'":
                    out.append("'")  # escaped quote
                    pos += 2
                    continue
                self._pos = pos + 1
                return Token(TokenType.STRING, "".join(out), start)
            out.append(ch)
            pos += 1
        raise SqlError(f"unterminated string literal at position {start}")

    def _number(self, start: int) -> Token:
        text = self._text
        pos = start
        seen_dot = False
        while pos < len(text):
            ch = text[pos]
            if ch.isdigit():
                pos += 1
            elif ch == "." and not seen_dot:
                seen_dot = True
                pos += 1
            else:
                break
        self._pos = pos
        return Token(TokenType.NUMBER, text[start:pos], start)

    def _word(self, start: int) -> Token:
        text = self._text
        pos = start
        while pos < len(text) and (text[pos].isalnum() or text[pos] == "_"):
            pos += 1
        self._pos = pos
        word = text[start:pos]
        lowered = word.lower()
        if lowered in KEYWORDS:
            return Token(TokenType.KEYWORD, lowered, start)
        return Token(TokenType.IDENT, lowered, start)
