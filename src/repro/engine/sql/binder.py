"""Name resolution and logical query construction.

The binder turns a parsed :class:`SelectStmt` into a
:class:`LogicalQuery`: a join tree of base/derived relations plus bound
predicate, grouping, and output expressions. Along the way it

* resolves (possibly unqualified) column names against the FROM scope,
* folds DATE/INTERVAL literal arithmetic into date constants,
* decorrelates ``EXISTS`` / ``NOT EXISTS`` and uncorrelated
  ``IN (SELECT ...)`` predicates into semi/anti joins — the same
  flattening PostgreSQL performs, and
* separates aggregate computation from post-aggregation expressions,
  so ``100 * sum(a) / sum(b)`` becomes a projection over two
  aggregate outputs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.catalog import Catalog
from repro.engine.expr import (
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Expr,
    ExtractExpr,
    InListExpr,
    IsNullExpr,
    LikeExpr,
    Literal,
    NotExpr,
    SubplanExpr,
    and_together,
    conjuncts,
    map_children,
)
from repro.engine.plans import AggFunc, AggSpec, JoinType, SortKey
from repro.engine.sql import ast
from repro.engine.types import Date
from repro.util.errors import SqlError

_derived_ids = itertools.count(1)

_AGG_FUNCS = {
    "count": AggFunc.COUNT,
    "sum": AggFunc.SUM,
    "avg": AggFunc.AVG,
    "min": AggFunc.MIN,
    "max": AggFunc.MAX,
}


@dataclass(frozen=True)
class AggregateCall(Expr):
    """Placeholder for an aggregate call inside a bound expression.

    Never evaluated: the binder's aggregation pass replaces these with
    references to the Aggregate operator's outputs.
    """

    func: AggFunc
    arg: Optional[Expr]
    distinct: bool = False

    def bind(self, layout):  # pragma: no cover - defensive
        raise SqlError("aggregate call survived binding; planner bug")

    def eval(self, row, ctx):  # pragma: no cover - defensive
        raise SqlError("aggregate call cannot be evaluated directly")

    def _collect_columns(self, out) -> None:
        if self.arg is not None:
            self.arg._collect_columns(out)

    def op_count(self) -> int:
        return 1 + (self.arg.op_count() if self.arg is not None else 0)

    def __str__(self) -> str:
        arg = "*" if self.arg is None else str(self.arg)
        return f"{self.func.value}({arg})"


# -- logical plan nodes -------------------------------------------------------


class LogicalNode:
    """Base class for FROM-tree nodes."""

    def aliases(self) -> List[str]:
        raise NotImplementedError


@dataclass
class LogicalRelation(LogicalNode):
    """A base table reference."""

    table: str
    alias: str

    def aliases(self) -> List[str]:
        return [self.alias]


@dataclass
class LogicalDerived(LogicalNode):
    """A derived table (subquery in FROM, or a flattened IN subquery)."""

    query: "LogicalQuery"
    alias: str
    column_names: List[str]

    def aliases(self) -> List[str]:
        return [self.alias]


@dataclass
class LogicalJoin(LogicalNode):
    """A join between two FROM subtrees."""

    left: LogicalNode
    right: LogicalNode
    join_type: JoinType
    condition: Optional[Expr] = None

    def aliases(self) -> List[str]:
        return self.left.aliases() + self.right.aliases()


@dataclass
class LogicalQuery:
    """A fully bound SELECT."""

    from_tree: Optional[LogicalNode]
    where: List[Expr] = field(default_factory=list)
    group_keys: List[Expr] = field(default_factory=list)
    group_names: List[str] = field(default_factory=list)
    aggregates: List[AggSpec] = field(default_factory=list)
    having: Optional[Expr] = None
    select_exprs: List[Expr] = field(default_factory=list)
    select_names: List[str] = field(default_factory=list)
    order_by: List[SortKey] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False

    @property
    def is_aggregated(self) -> bool:
        return bool(self.aggregates) or bool(self.group_keys)


# -- scope --------------------------------------------------------------------


class _Scope:
    """Visible relations during binding, with an optional outer scope."""

    def __init__(self, outer: Optional["_Scope"] = None):
        self.relations: Dict[str, List[str]] = {}
        self.outer = outer

    def add(self, alias: str, columns: Sequence[str]) -> None:
        if alias in self.relations:
            raise SqlError(f"duplicate relation alias {alias!r}")
        self.relations[alias] = list(columns)

    def local_aliases(self) -> List[str]:
        return list(self.relations)

    def resolve(self, qualifier: Optional[str], name: str) -> ColumnRef:
        """Resolve a column, searching this scope then outer scopes."""
        scope: Optional[_Scope] = self
        while scope is not None:
            ref = scope._resolve_local(qualifier, name)
            if ref is not None:
                return ref
            scope = scope.outer
        target = f"{qualifier}.{name}" if qualifier else name
        raise SqlError(f"unknown column {target!r}")

    def _resolve_local(self, qualifier: Optional[str], name: str) -> Optional[ColumnRef]:
        if qualifier is not None:
            columns = self.relations.get(qualifier)
            if columns is None:
                return None
            if name not in columns:
                raise SqlError(f"relation {qualifier!r} has no column {name!r}")
            return ColumnRef(qualifier, name)
        matches = [alias for alias, cols in self.relations.items() if name in cols]
        if len(matches) > 1:
            raise SqlError(f"ambiguous column {name!r} (in {sorted(matches)})")
        if matches:
            return ColumnRef(matches[0], name)
        return None


# -- the binder --------------------------------------------------------------------


class Binder:
    """Binds parsed statements against a catalog."""

    def __init__(self, catalog: Catalog):
        self._catalog = catalog

    def bind(self, stmt: ast.SelectStmt) -> LogicalQuery:
        return self._bind_select(stmt, outer_scope=None)

    def bind_sql(self, sql: str) -> LogicalQuery:
        from repro.engine.sql.parser import parse_select

        return self.bind(parse_select(sql))

    # -- FROM ------------------------------------------------------------------

    def _bind_select(self, stmt: ast.SelectStmt,
                     outer_scope: Optional[_Scope]) -> LogicalQuery:
        scope = _Scope(outer=outer_scope)
        from_tree: Optional[LogicalNode] = None
        for item in stmt.from_items:
            node = self._bind_from_item(item, scope)
            if from_tree is None:
                from_tree = node
            else:
                from_tree = LogicalJoin(from_tree, node, JoinType.INNER, None)
        if from_tree is None:
            raise SqlError("queries without a FROM clause are not supported")

        # WHERE: split off subquery predicates for decorrelation.
        where_conjuncts: List[Expr] = []
        if stmt.where is not None:
            for conjunct in _ast_conjuncts(stmt.where):
                bound = self._bind_where_conjunct(conjunct, scope)
                if isinstance(bound, _SubqueryJoin):
                    from_tree = LogicalJoin(
                        from_tree, bound.right, bound.join_type, bound.condition
                    )
                else:
                    for piece in conjuncts(bound):
                        where_conjuncts.extend(_factor_or(piece))

        query = LogicalQuery(from_tree=from_tree, where=where_conjuncts,
                             limit=stmt.limit, distinct=stmt.distinct)
        self._decorrelate_scalar_subqueries(query)
        self._bind_outputs(stmt, scope, query)
        return query

    # -- correlated scalar subqueries -----------------------------------------

    def _decorrelate_scalar_subqueries(self, query: LogicalQuery) -> None:
        """Rewrite equality-correlated scalar subqueries in WHERE.

        The classic magic-set rewrite: a correlated single-aggregate
        subquery becomes a derived table grouped by its correlation
        columns, LEFT-joined to the outer query (LEFT preserves scalar
        semantics — a missing group yields NULL, and NULL comparisons
        reject the row just as the original subquery would). TPC-H Q2
        and Q17 are the canonical shapes.
        """
        query.where = [
            self._rewrite_correlated(conjunct, query)
            for conjunct in query.where
        ]

    def _rewrite_correlated(self, expr: Expr, query: LogicalQuery) -> Expr:
        if isinstance(expr, SubplanExpr):
            rewritten = self._try_decorrelate(expr, query)
            return rewritten if rewritten is not None else expr
        return map_children(
            expr, lambda child: self._rewrite_correlated(child, query)
        )

    def _try_decorrelate(self, subplan: SubplanExpr,
                         query: LogicalQuery) -> Optional[Expr]:
        sub = subplan.logical
        if sub.from_tree is None:
            return None
        local_aliases = set(sub.from_tree.aliases())

        correlated: List[Expr] = []
        inner_where: List[Expr] = []
        for conjunct in sub.where:
            refs = {alias for alias, _c in conjunct.columns()}
            if refs <= local_aliases:
                inner_where.append(conjunct)
            else:
                correlated.append(conjunct)
        if not correlated:
            return None  # genuinely uncorrelated: executes as a subplan

        if sub.group_keys or sub.having is not None or sub.order_by \
                or sub.limit is not None or len(sub.select_exprs) != 1 \
                or not sub.aggregates:
            raise SqlError(
                "correlated scalar subqueries must be single-aggregate "
                "queries without grouping"
            )

        # Each correlation conjunct must be inner_col = outer_col.
        group_keys: List[Expr] = []
        outer_keys: List[Expr] = []
        for conjunct in correlated:
            pair = self._correlation_pair(conjunct, local_aliases)
            if pair is None:
                raise SqlError(
                    f"unsupported correlated predicate {conjunct}; only "
                    f"equality correlation is supported"
                )
            inner_col, outer_col = pair
            group_keys.append(inner_col)
            outer_keys.append(outer_col)

        alias = f"_corr_{next(_derived_ids)}"
        group_names = [f"k{i}" for i in range(len(group_keys))]
        derived_query = LogicalQuery(
            from_tree=sub.from_tree,
            where=inner_where,
            group_keys=group_keys,
            group_names=group_names,
            aggregates=sub.aggregates,
            select_exprs=[ColumnRef("_agg", name) for name in group_names]
            + [sub.select_exprs[0]],
            select_names=group_names + ["scalar_value"],
        )
        derived = LogicalDerived(query=derived_query, alias=alias,
                                 column_names=group_names + ["scalar_value"])
        condition = and_together([
            BinaryOp("=", outer_col, ColumnRef(alias, name))
            for outer_col, name in zip(outer_keys, group_names)
        ])
        assert query.from_tree is not None
        query.from_tree = LogicalJoin(query.from_tree, derived,
                                      JoinType.LEFT, condition)
        return ColumnRef(alias, "scalar_value")

    def _reject_correlated_scalars(self, expr: Expr, where: str) -> None:
        """Correlated scalars are only decorrelated in WHERE conjuncts."""
        def visit(node: Expr) -> Expr:
            if isinstance(node, SubplanExpr):
                sub = node.logical
                local = set(sub.from_tree.aliases()) if sub.from_tree else set()
                for conjunct in sub.where:
                    refs = {alias for alias, _c in conjunct.columns()}
                    if not refs <= local:
                        raise SqlError(
                            f"correlated scalar subqueries are not supported "
                            f"in {where}"
                        )
            else:
                map_children(node, visit)
            return node

        visit(expr)

    @staticmethod
    def _correlation_pair(conjunct: Expr, local_aliases: set):
        """Match ``inner_col = outer_col``; returns (inner, outer) refs."""
        if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
            return None
        left, right = conjunct.left, conjunct.right
        if not (isinstance(left, ColumnRef) and isinstance(right, ColumnRef)):
            return None
        if left.alias in local_aliases and right.alias not in local_aliases:
            return left, right
        if right.alias in local_aliases and left.alias not in local_aliases:
            return right, left
        return None

    def _bind_from_item(self, item: ast.FromItem, scope: _Scope) -> LogicalNode:
        if isinstance(item, ast.TableRef):
            alias = item.effective_alias
            if not self._catalog.has_table(item.table):
                raise SqlError(f"unknown table {item.table!r}")
            schema = self._catalog.table(item.table).schema
            scope.add(alias, schema.column_names())
            return LogicalRelation(table=item.table, alias=alias)
        if isinstance(item, ast.SubqueryRef):
            sub = self._bind_select(item.subquery, outer_scope=None)
            names = list(item.column_names) or list(sub.select_names)
            if len(names) != len(sub.select_names):
                raise SqlError(
                    f"derived table {item.alias!r} declares {len(names)} columns "
                    f"but its query produces {len(sub.select_names)}"
                )
            scope.add(item.alias, names)
            return LogicalDerived(query=sub, alias=item.alias, column_names=names)
        if isinstance(item, ast.JoinClause):
            left = self._bind_from_item(item.left, scope)
            right = self._bind_from_item(item.right, scope)
            condition = (
                self._bind_expr(item.condition, scope)
                if item.condition is not None else None
            )
            join_type = JoinType.LEFT if item.join_type == "left" else JoinType.INNER
            return LogicalJoin(left, right, join_type, condition)
        raise SqlError(f"unsupported FROM item {type(item).__name__}")

    # -- WHERE subqueries --------------------------------------------------------

    def _bind_where_conjunct(self, conjunct: ast.AstExpr, scope: _Scope):
        if isinstance(conjunct, ast.Exists):
            return self._bind_exists(conjunct, scope)
        if isinstance(conjunct, ast.Not) and isinstance(conjunct.operand, ast.Exists):
            inner = conjunct.operand
            return self._bind_exists(
                ast.Exists(inner.subquery, negated=not inner.negated), scope
            )
        if isinstance(conjunct, ast.InSubquery):
            return self._bind_in_subquery(conjunct, scope)
        return self._bind_expr(conjunct, scope)

    def _bind_exists(self, exists: ast.Exists, scope: _Scope) -> "_SubqueryJoin":
        """Flatten [NOT] EXISTS into a semi/anti join against the subquery's FROM."""
        sub = exists.subquery
        if sub.group_by or sub.having or sub.order_by or sub.limit:
            raise SqlError("EXISTS subqueries with grouping are not supported")
        sub_scope = _Scope(outer=scope)
        sub_tree: Optional[LogicalNode] = None
        for item in sub.from_items:
            node = self._bind_from_item(item, sub_scope)
            sub_tree = node if sub_tree is None else LogicalJoin(
                sub_tree, node, JoinType.INNER, None
            )
        if sub_tree is None:
            raise SqlError("EXISTS subquery needs a FROM clause")
        condition: Optional[Expr] = None
        if sub.where is not None:
            # All conjuncts (correlated or not) ride on the join condition;
            # the planner pushes single-relation conjuncts down.
            condition = self._bind_expr(sub.where, sub_scope)
        join_type = JoinType.ANTI if exists.negated else JoinType.SEMI
        return _SubqueryJoin(right=sub_tree, join_type=join_type, condition=condition)

    def _bind_in_subquery(self, pred: ast.InSubquery, scope: _Scope) -> "_SubqueryJoin":
        """Flatten uncorrelated ``expr [NOT] IN (SELECT ...)`` into semi/anti join."""
        operand = self._bind_expr(pred.operand, scope)
        sub = self._bind_select(pred.subquery, outer_scope=None)
        if len(sub.select_names) != 1:
            raise SqlError("IN subquery must produce exactly one column")
        alias = f"_in_{next(_derived_ids)}"
        derived = LogicalDerived(query=sub, alias=alias,
                                 column_names=[sub.select_names[0]])
        condition = BinaryOp("=", operand, ColumnRef(alias, sub.select_names[0]))
        join_type = JoinType.ANTI if pred.negated else JoinType.SEMI
        return _SubqueryJoin(right=derived, join_type=join_type, condition=condition)

    # -- outputs (select / group by / having / order by) ----------------------------

    def _bind_outputs(self, stmt: ast.SelectStmt, scope: _Scope,
                      query: LogicalQuery) -> None:
        raw_selects: List[Expr] = []
        select_names: List[str] = []
        for i, item in enumerate(stmt.items):
            bound = self._bind_expr(item.expr, scope, allow_aggregates=True)
            self._reject_correlated_scalars(bound, "the select list")
            raw_selects.append(bound)
            select_names.append(item.alias or _default_name(bound, i))
        if len(set(select_names)) != len(select_names):
            # Disambiguate duplicated implicit names.
            seen: Dict[str, int] = {}
            for i, name in enumerate(select_names):
                count = seen.get(name, 0)
                seen[name] = count + 1
                if count:
                    select_names[i] = f"{name}_{count}"

        group_keys = [self._bind_expr(g, scope) for g in stmt.group_by]
        having = (
            self._bind_expr(stmt.having, scope, allow_aggregates=True)
            if stmt.having is not None else None
        )
        if having is not None:
            self._reject_correlated_scalars(having, "HAVING")

        has_aggs = any(_contains_aggregate(e) for e in raw_selects)
        if having is not None:
            has_aggs = has_aggs or _contains_aggregate(having)

        if group_keys or has_aggs:
            self._bind_aggregated_outputs(
                query, raw_selects, select_names, group_keys, having
            )
        else:
            if having is not None:
                raise SqlError("HAVING requires GROUP BY or aggregates")
            query.select_exprs = raw_selects
            query.select_names = select_names

        query.order_by = self._bind_order_by(stmt.order_by, scope, query, raw_selects,
                                             select_names)

    def _bind_aggregated_outputs(self, query: LogicalQuery, raw_selects: List[Expr],
                                 select_names: List[str], group_keys: List[Expr],
                                 having: Optional[Expr]) -> None:
        group_names = [
            key.column if isinstance(key, ColumnRef) else f"group_{i}"
            for i, key in enumerate(group_keys)
        ]
        collector = _AggCollector(group_keys, group_names)
        query.select_exprs = [collector.rewrite(e) for e in raw_selects]
        query.select_names = select_names
        if having is not None:
            query.having = collector.rewrite(having)
        query.group_keys = group_keys
        query.group_names = group_names
        query.aggregates = collector.specs
        # Anything still referencing a base relation was neither grouped
        # nor aggregated.
        for expr, name in zip(query.select_exprs, select_names):
            for alias, column in expr.columns():
                if alias != "_agg":
                    raise SqlError(
                        f"column {alias}.{column} in select item {name!r} must "
                        f"appear in GROUP BY or inside an aggregate"
                    )

    def _bind_order_by(self, order_items: List[ast.OrderItem], scope: _Scope,
                       query: LogicalQuery, raw_selects: List[Expr],
                       select_names: List[str]) -> List[SortKey]:
        keys: List[SortKey] = []
        for item in order_items:
            # Case 1: a bare name that matches a select output.
            if isinstance(item.expr, ast.Identifier) and item.expr.qualifier is None \
                    and item.expr.name in select_names:
                keys.append(SortKey(ColumnRef("_out", item.expr.name), item.ascending))
                continue
            # Case 2: an expression equal to some select expression.
            bound = self._bind_expr(item.expr, scope, allow_aggregates=True)
            matched = False
            for raw, name in zip(raw_selects, select_names):
                if raw == bound:
                    keys.append(SortKey(ColumnRef("_out", name), item.ascending))
                    matched = True
                    break
            if not matched:
                raise SqlError(
                    f"ORDER BY expression {item.expr} must match a select output"
                )
        return keys

    # -- expression conversion --------------------------------------------------------

    def _bind_expr(self, node: ast.AstExpr, scope: _Scope,
                   allow_aggregates: bool = False) -> Expr:
        if isinstance(node, ast.Identifier):
            return scope.resolve(node.qualifier, node.name)
        if isinstance(node, ast.NumberLit):
            return Literal(node.value)
        if isinstance(node, ast.StringLit):
            return Literal(node.value)
        if isinstance(node, ast.DateLit):
            try:
                return Literal(Date.parse(node.text))
            except ValueError as exc:
                raise SqlError(f"bad date literal {node.text!r}: {exc}") from None
        if isinstance(node, ast.NullLit):
            return Literal(None)
        if isinstance(node, ast.IntervalLit):
            raise SqlError("INTERVAL is only valid in date +/- interval arithmetic")
        if isinstance(node, ast.Binary):
            return self._bind_binary(node, scope, allow_aggregates)
        if isinstance(node, ast.Not):
            return NotExpr(self._bind_expr(node.operand, scope, allow_aggregates))
        if isinstance(node, ast.IsNull):
            return IsNullExpr(
                self._bind_expr(node.operand, scope, allow_aggregates), node.negated
            )
        if isinstance(node, ast.Like):
            return LikeExpr(
                self._bind_expr(node.operand, scope, allow_aggregates),
                node.pattern, node.negated,
            )
        if isinstance(node, ast.Between):
            operand = self._bind_expr(node.operand, scope, allow_aggregates)
            low = self._bind_expr(node.low, scope, allow_aggregates)
            high = self._bind_expr(node.high, scope, allow_aggregates)
            between = BinaryOp(
                "and", BinaryOp(">=", operand, low), BinaryOp("<=", operand, high)
            )
            return NotExpr(between) if node.negated else between
        if isinstance(node, ast.InList):
            operand = self._bind_expr(node.operand, scope, allow_aggregates)
            values = []
            for item in node.items:
                bound = self._bind_expr(item, scope)
                if not isinstance(bound, Literal):
                    raise SqlError("IN list items must be constants")
                values.append(bound.value)
            return InListExpr(operand, tuple(values), node.negated)
        if isinstance(node, ast.Case):
            branches = tuple(
                (self._bind_expr(cond, scope, allow_aggregates),
                 self._bind_expr(value, scope, allow_aggregates))
                for cond, value in node.branches
            )
            default = (
                self._bind_expr(node.default, scope, allow_aggregates)
                if node.default is not None else None
            )
            return CaseExpr(branches, default)
        if isinstance(node, ast.FuncCall):
            return self._bind_func(node, scope, allow_aggregates)
        if isinstance(node, ast.Extract):
            return ExtractExpr(
                node.unit,
                self._bind_expr(node.operand, scope, allow_aggregates),
            )
        if isinstance(node, ast.ScalarSubquery):
            # The enclosing scope stays visible: a correlated reference
            # resolves through it and is decorrelated afterwards.
            sub = self._bind_select(node.subquery, outer_scope=scope)
            if len(sub.select_names) != 1:
                raise SqlError("a scalar subquery must produce exactly one column")
            return SubplanExpr(sub)
        if isinstance(node, (ast.Exists, ast.InSubquery)):
            raise SqlError(
                "subquery predicates are only supported as top-level WHERE conjuncts"
            )
        raise SqlError(f"unsupported expression {type(node).__name__}")

    def _bind_binary(self, node: ast.Binary, scope: _Scope,
                     allow_aggregates: bool) -> Expr:
        # DATE +/- INTERVAL folds to a date constant.
        if isinstance(node.right, ast.IntervalLit):
            left = self._bind_expr(node.left, scope, allow_aggregates)
            return Literal(_shift_date(left, node.op, node.right))
        if isinstance(node.left, ast.IntervalLit):
            if node.op != "+":
                raise SqlError("INTERVAL may only be added to a date")
            right = self._bind_expr(node.right, scope, allow_aggregates)
            return Literal(_shift_date(right, "+", node.left))
        left = self._bind_expr(node.left, scope, allow_aggregates)
        right = self._bind_expr(node.right, scope, allow_aggregates)
        return BinaryOp(node.op, left, right)

    def _bind_func(self, node: ast.FuncCall, scope: _Scope,
                   allow_aggregates: bool) -> Expr:
        name = node.name
        if name in _AGG_FUNCS:
            if not allow_aggregates:
                raise SqlError(f"aggregate {name}() is not allowed here")
            if node.distinct and name not in ("count", "sum", "avg"):
                raise SqlError(f"DISTINCT is not supported for {name}()")
            if node.star:
                if name != "count":
                    raise SqlError(f"{name}(*) is not valid")
                return AggregateCall(AggFunc.COUNT_STAR, None)
            if len(node.args) != 1:
                raise SqlError(f"aggregate {name}() takes exactly one argument")
            arg = self._bind_expr(node.args[0], scope)
            if _contains_aggregate(arg):
                raise SqlError("nested aggregates are not allowed")
            return AggregateCall(_AGG_FUNCS[name], arg, distinct=node.distinct)
        raise SqlError(f"unknown function {name!r}")


@dataclass
class _SubqueryJoin:
    """Intermediate result of decorrelating a WHERE subquery predicate."""

    right: LogicalNode
    join_type: JoinType
    condition: Optional[Expr]


class _AggCollector:
    """Replaces aggregate calls and group keys with Aggregate-output refs."""

    def __init__(self, group_keys: List[Expr], group_names: List[str]):
        self._group_pairs = list(zip(group_keys, group_names))
        self.specs: List[AggSpec] = []
        self._spec_index: Dict[Tuple[AggFunc, Optional[Expr]], str] = {}

    def rewrite(self, expr: Expr) -> Expr:
        for key, name in self._group_pairs:
            if expr == key:
                return ColumnRef("_agg", name)
        if isinstance(expr, AggregateCall):
            return ColumnRef("_agg", self._spec_name(expr))
        return map_children(expr, self.rewrite)

    def _spec_name(self, call: AggregateCall) -> str:
        key = (call.func, call.arg, call.distinct)
        name = self._spec_index.get(key)
        if name is None:
            name = f"agg_{len(self.specs)}"
            self._spec_index[key] = name
            self.specs.append(AggSpec(func=call.func, arg=call.arg,
                                      output_name=name, distinct=call.distinct))
        return name


def _contains_aggregate(expr: Expr) -> bool:
    if isinstance(expr, AggregateCall):
        return True
    if isinstance(expr, BinaryOp):
        return _contains_aggregate(expr.left) or _contains_aggregate(expr.right)
    if isinstance(expr, (NotExpr, IsNullExpr, LikeExpr, InListExpr)):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, CaseExpr):
        parts = [c for c, _v in expr.branches] + [v for _c, v in expr.branches]
        if expr.default is not None:
            parts.append(expr.default)
        return any(_contains_aggregate(p) for p in parts)
    return False


def _default_name(expr: Expr, position: int) -> str:
    if isinstance(expr, ColumnRef):
        return expr.column
    if isinstance(expr, AggregateCall):
        return expr.func.value.rstrip("*")
    return f"col_{position}"


def _shift_date(date_expr: Expr, op: str, interval: ast.IntervalLit) -> Date:
    if not isinstance(date_expr, Literal) or not isinstance(date_expr.value, Date):
        raise SqlError("INTERVAL arithmetic requires a date literal")
    if op not in ("+", "-"):
        raise SqlError(f"invalid date operator {op!r} with INTERVAL")
    amount = interval.amount if op == "+" else -interval.amount
    date = date_expr.value
    if interval.unit == "day":
        return date.add_days(amount)
    if interval.unit == "month":
        return date.add_months(amount)
    return date.add_years(amount)


def _or_branches(expr: Expr) -> List[Expr]:
    if isinstance(expr, BinaryOp) and expr.op == "or":
        return _or_branches(expr.left) + _or_branches(expr.right)
    return [expr]


def _factor_or(expr: Expr) -> List[Expr]:
    """Pull conjuncts common to every OR branch out of the disjunction.

    ``(A and X) or (A and Y)`` becomes ``A`` plus ``(X or Y)`` — the
    rewrite PostgreSQL applies so that, e.g., TPC-H Q19's join key
    (which appears inside every OR arm) is visible to join planning
    instead of forcing a cross product.
    """
    if not (isinstance(expr, BinaryOp) and expr.op == "or"):
        return [expr]
    branch_lists = [conjuncts(branch) for branch in _or_branches(expr)]
    common = [c for c in branch_lists[0]
              if all(c in other for other in branch_lists[1:])]
    if not common:
        return [expr]
    residuals = []
    for branch in branch_lists:
        rest = [c for c in branch if c not in common]
        if not rest:
            # This branch is exactly the common part: the OR adds nothing.
            return common
        residuals.append(and_together(rest))
    combined = residuals[0]
    for residual in residuals[1:]:
        combined = BinaryOp("or", combined, residual)
    return common + [combined]


def _ast_conjuncts(node: ast.AstExpr) -> List[ast.AstExpr]:
    if isinstance(node, ast.Binary) and node.op == "and":
        return _ast_conjuncts(node.left) + _ast_conjuncts(node.right)
    return [node]
