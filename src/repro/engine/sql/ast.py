"""Parse-tree nodes produced by the SQL parser.

These are *unresolved*: identifiers are names, not slots; aggregate
calls are ordinary function calls. The binder turns them into engine
expressions and a logical query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# -- expressions -----------------------------------------------------------


class AstExpr:
    """Base class for parsed expressions."""


@dataclass(frozen=True)
class Identifier(AstExpr):
    """A possibly-qualified column name: ``alias.column`` or ``column``."""

    qualifier: Optional[str]
    name: str

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class NumberLit(AstExpr):
    text: str

    @property
    def value(self) -> Union[int, float]:
        return float(self.text) if "." in self.text else int(self.text)


@dataclass(frozen=True)
class StringLit(AstExpr):
    value: str


@dataclass(frozen=True)
class DateLit(AstExpr):
    """``DATE 'YYYY-MM-DD'``."""

    text: str


@dataclass(frozen=True)
class IntervalLit(AstExpr):
    """``INTERVAL 'n' DAY|MONTH|YEAR``."""

    amount: int
    unit: str  # day | month | year


@dataclass(frozen=True)
class NullLit(AstExpr):
    pass


@dataclass(frozen=True)
class Binary(AstExpr):
    op: str
    left: AstExpr
    right: AstExpr


@dataclass(frozen=True)
class Not(AstExpr):
    operand: AstExpr


@dataclass(frozen=True)
class IsNull(AstExpr):
    operand: AstExpr
    negated: bool = False


@dataclass(frozen=True)
class Like(AstExpr):
    operand: AstExpr
    pattern: str
    negated: bool = False


@dataclass(frozen=True)
class Between(AstExpr):
    operand: AstExpr
    low: AstExpr
    high: AstExpr
    negated: bool = False


@dataclass(frozen=True)
class InList(AstExpr):
    operand: AstExpr
    items: Tuple[AstExpr, ...]
    negated: bool = False


@dataclass(frozen=True)
class InSubquery(AstExpr):
    operand: AstExpr
    subquery: "SelectStmt"
    negated: bool = False


@dataclass(frozen=True)
class Exists(AstExpr):
    subquery: "SelectStmt"
    negated: bool = False


@dataclass(frozen=True)
class Extract(AstExpr):
    """``EXTRACT(unit FROM expr)``."""

    unit: str
    operand: AstExpr


@dataclass(frozen=True)
class ScalarSubquery(AstExpr):
    """An uncorrelated single-value subquery used as an expression."""

    subquery: "SelectStmt"


@dataclass(frozen=True)
class FuncCall(AstExpr):
    """A function call; ``star`` marks ``count(*)``."""

    name: str
    args: Tuple[AstExpr, ...]
    star: bool = False
    distinct: bool = False


@dataclass(frozen=True)
class Case(AstExpr):
    branches: Tuple[Tuple[AstExpr, AstExpr], ...]
    default: Optional[AstExpr] = None


# -- query structure ----------------------------------------------------------


@dataclass
class SelectItem:
    expr: AstExpr
    alias: Optional[str] = None


class FromItem:
    """Base class for FROM clause items."""


@dataclass
class TableRef(FromItem):
    table: str
    alias: Optional[str] = None

    @property
    def effective_alias(self) -> str:
        return self.alias or self.table


@dataclass
class SubqueryRef(FromItem):
    """A derived table: ``(SELECT ...) AS alias (col, ...)``."""

    subquery: "SelectStmt"
    alias: str
    column_names: Tuple[str, ...] = ()


@dataclass
class JoinClause(FromItem):
    """``left [LEFT|INNER] JOIN right ON condition``."""

    left: FromItem
    right: FromItem
    join_type: str  # "inner" | "left"
    condition: Optional[AstExpr] = None


@dataclass
class OrderItem:
    expr: AstExpr
    ascending: bool = True


@dataclass
class SelectStmt:
    """A parsed SELECT statement."""

    items: List[SelectItem]
    from_items: List[FromItem] = field(default_factory=list)
    where: Optional[AstExpr] = None
    group_by: List[AstExpr] = field(default_factory=list)
    having: Optional[AstExpr] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False
