"""Recursive-descent SQL parser for the supported SELECT dialect."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.engine.sql import ast
from repro.engine.sql.lexer import Lexer, Token, TokenType
from repro.util.errors import SqlError


def parse_select(sql: str) -> ast.SelectStmt:
    """Parse one SELECT statement (a trailing semicolon is allowed)."""
    parser = _Parser(Lexer(sql).tokenize())
    stmt = parser.select_statement()
    parser.expect_end()
    return stmt


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ---------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        pos = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        token = self._advance()
        if not (token.type is TokenType.KEYWORD and token.value == word):
            raise SqlError(f"expected {word.upper()!r}, got {token.value!r} "
                           f"at position {token.position}")

    def _accept_punct(self, symbol: str) -> bool:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.value == symbol:
            self._advance()
            return True
        return False

    def _expect_punct(self, symbol: str) -> None:
        token = self._advance()
        if not (token.type is TokenType.PUNCT and token.value == symbol):
            raise SqlError(f"expected {symbol!r}, got {token.value!r} "
                           f"at position {token.position}")

    def _accept_operator(self, *symbols: str) -> Optional[str]:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in symbols:
            self._advance()
            return token.value
        return None

    def expect_end(self) -> None:
        token = self._peek()
        if token.type is not TokenType.EOF:
            raise SqlError(f"unexpected trailing input {token.value!r} "
                           f"at position {token.position}")

    # -- statement --------------------------------------------------------------

    def select_statement(self) -> ast.SelectStmt:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct")
        items = [self._select_item()]
        while self._accept_punct(","):
            items.append(self._select_item())

        from_items: List[ast.FromItem] = []
        if self._accept_keyword("from"):
            from_items.append(self._from_item())
            while self._accept_punct(","):
                from_items.append(self._from_item())

        where = self.expression() if self._accept_keyword("where") else None

        group_by: List[ast.AstExpr] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self.expression())
            while self._accept_punct(","):
                group_by.append(self.expression())

        having = self.expression() if self._accept_keyword("having") else None

        order_by: List[ast.OrderItem] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._order_item())
            while self._accept_punct(","):
                order_by.append(self._order_item())

        limit: Optional[int] = None
        if self._accept_keyword("limit"):
            token = self._advance()
            if token.type is not TokenType.NUMBER or "." in token.value:
                raise SqlError(f"LIMIT expects an integer, got {token.value!r}")
            limit = int(token.value)

        return ast.SelectStmt(
            items=items, from_items=from_items, where=where,
            group_by=group_by, having=having, order_by=order_by,
            limit=limit, distinct=distinct,
        )

    def _select_item(self) -> ast.SelectItem:
        expr = self.expression()
        alias: Optional[str] = None
        if self._accept_keyword("as"):
            alias = self._identifier_name()
        elif self._peek().type is TokenType.IDENT:
            alias = self._identifier_name()
        return ast.SelectItem(expr=expr, alias=alias)

    def _order_item(self) -> ast.OrderItem:
        expr = self.expression()
        ascending = True
        if self._accept_keyword("desc"):
            ascending = False
        else:
            self._accept_keyword("asc")
        return ast.OrderItem(expr=expr, ascending=ascending)

    def _identifier_name(self) -> str:
        token = self._advance()
        if token.type is not TokenType.IDENT:
            raise SqlError(f"expected identifier, got {token.value!r} "
                           f"at position {token.position}")
        return token.value

    # -- FROM clause ------------------------------------------------------------

    def _from_item(self) -> ast.FromItem:
        item = self._table_primary()
        while True:
            join_type = self._peek_join_type()
            if join_type is None:
                return item
            right = self._table_primary()
            condition: Optional[ast.AstExpr] = None
            if self._accept_keyword("on"):
                condition = self.expression()
            item = ast.JoinClause(left=item, right=right,
                                  join_type=join_type, condition=condition)

    def _peek_join_type(self) -> Optional[str]:
        if self._accept_keyword("join") or (
            self._peek().is_keyword("inner") and self._peek(1).is_keyword("join")
        ):
            if self._peek().is_keyword("join"):
                self._advance()
            return "inner"
        if self._peek().is_keyword("left"):
            self._advance()
            self._accept_keyword("outer")
            self._expect_keyword("join")
            return "left"
        if self._peek().is_keyword("right"):
            raise SqlError("RIGHT JOIN is not supported; rewrite as LEFT JOIN")
        return None

    def _table_primary(self) -> ast.FromItem:
        if self._accept_punct("("):
            subquery = self.select_statement()
            self._expect_punct(")")
            self._accept_keyword("as")
            alias = self._identifier_name()
            column_names: Tuple[str, ...] = ()
            if self._accept_punct("("):
                names = [self._identifier_name()]
                while self._accept_punct(","):
                    names.append(self._identifier_name())
                self._expect_punct(")")
                column_names = tuple(names)
            return ast.SubqueryRef(subquery=subquery, alias=alias,
                                   column_names=column_names)
        table = self._identifier_name()
        alias: Optional[str] = None
        if self._accept_keyword("as"):
            alias = self._identifier_name()
        elif self._peek().type is TokenType.IDENT:
            alias = self._identifier_name()
        return ast.TableRef(table=table, alias=alias)

    # -- expressions --------------------------------------------------------------
    # Precedence (loosest first): OR, AND, NOT, predicate, additive,
    # multiplicative, unary, primary.

    def expression(self) -> ast.AstExpr:
        return self._or_expr()

    def _or_expr(self) -> ast.AstExpr:
        left = self._and_expr()
        while self._accept_keyword("or"):
            left = ast.Binary("or", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.AstExpr:
        left = self._not_expr()
        while self._accept_keyword("and"):
            left = ast.Binary("and", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.AstExpr:
        if self._peek().is_keyword("not") and self._peek(1).is_keyword("exists"):
            self._advance()
            self._advance()
            self._expect_punct("(")
            subquery = self.select_statement()
            self._expect_punct(")")
            return ast.Exists(subquery, negated=True)
        if self._accept_keyword("not"):
            return ast.Not(self._not_expr())
        return self._predicate()

    def _predicate(self) -> ast.AstExpr:
        left = self._additive()
        negated = False
        if self._peek().is_keyword("not"):
            # NOT LIKE / NOT IN / NOT BETWEEN
            next_token = self._peek(1)
            if next_token.is_keyword("like") or next_token.is_keyword("in") \
                    or next_token.is_keyword("between"):
                self._advance()
                negated = True

        if self._accept_keyword("like"):
            token = self._advance()
            if token.type is not TokenType.STRING:
                raise SqlError("LIKE expects a string pattern")
            return ast.Like(left, token.value, negated=negated)

        if self._accept_keyword("between"):
            low = self._additive()
            self._expect_keyword("and")
            high = self._additive()
            return ast.Between(left, low, high, negated=negated)

        if self._accept_keyword("in"):
            self._expect_punct("(")
            if self._peek().is_keyword("select"):
                subquery = self.select_statement()
                self._expect_punct(")")
                return ast.InSubquery(left, subquery, negated=negated)
            items = [self.expression()]
            while self._accept_punct(","):
                items.append(self.expression())
            self._expect_punct(")")
            return ast.InList(left, tuple(items), negated=negated)

        if negated:
            raise SqlError("dangling NOT before a non-predicate expression")

        if self._accept_keyword("is"):
            is_negated = self._accept_keyword("not")
            self._expect_keyword("null")
            return ast.IsNull(left, negated=is_negated)

        op = self._accept_operator("=", "<>", "<", "<=", ">", ">=")
        if op is not None:
            right = self._additive()
            return ast.Binary(op, left, right)
        return left

    def _additive(self) -> ast.AstExpr:
        left = self._multiplicative()
        while True:
            op = self._accept_operator("+", "-")
            if op is None:
                return left
            left = ast.Binary(op, left, self._multiplicative())

    def _multiplicative(self) -> ast.AstExpr:
        left = self._unary()
        while True:
            op = self._accept_operator("*", "/")
            if op is None:
                return left
            left = ast.Binary(op, left, self._unary())

    def _unary(self) -> ast.AstExpr:
        if self._accept_operator("-"):
            return ast.Binary("-", ast.NumberLit("0"), self._unary())
        if self._accept_operator("+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> ast.AstExpr:
        token = self._peek()

        if token.type is TokenType.NUMBER:
            self._advance()
            return ast.NumberLit(token.value)
        if token.type is TokenType.STRING:
            self._advance()
            return ast.StringLit(token.value)
        if token.is_keyword("null"):
            self._advance()
            return ast.NullLit()
        if token.is_keyword("date"):
            self._advance()
            lit = self._advance()
            if lit.type is not TokenType.STRING:
                raise SqlError("DATE expects a 'YYYY-MM-DD' string")
            return ast.DateLit(lit.value)
        if token.is_keyword("interval"):
            self._advance()
            amount_token = self._advance()
            if amount_token.type is TokenType.STRING:
                amount = int(amount_token.value)
            elif amount_token.type is TokenType.NUMBER:
                amount = int(amount_token.value)
            else:
                raise SqlError("INTERVAL expects a quoted or numeric amount")
            unit_token = self._advance()
            if unit_token.value not in ("day", "month", "year"):
                raise SqlError(f"unsupported interval unit {unit_token.value!r}")
            return ast.IntervalLit(amount=amount, unit=unit_token.value)
        if token.is_keyword("exists"):
            self._advance()
            self._expect_punct("(")
            subquery = self.select_statement()
            self._expect_punct(")")
            return ast.Exists(subquery)
        if token.is_keyword("not") and self._peek(1).is_keyword("exists"):
            self._advance()
            self._advance()
            self._expect_punct("(")
            subquery = self.select_statement()
            self._expect_punct(")")
            return ast.Exists(subquery, negated=True)
        if token.is_keyword("case"):
            return self._case_expr()
        if token.type is TokenType.PUNCT and token.value == "(":
            self._advance()
            if self._peek().is_keyword("select"):
                subquery = self.select_statement()
                self._expect_punct(")")
                return ast.ScalarSubquery(subquery)
            expr = self.expression()
            self._expect_punct(")")
            return expr
        if token.type is TokenType.IDENT:
            return self._identifier_or_call()
        if token.type is TokenType.OPERATOR and token.value == "*":
            # Bare * is only valid inside count(*), handled in the call path.
            raise SqlError("unexpected '*' outside an aggregate call")
        raise SqlError(f"unexpected token {token.value!r} at position {token.position}")

    def _case_expr(self) -> ast.AstExpr:
        self._expect_keyword("case")
        branches = []
        while self._accept_keyword("when"):
            cond = self.expression()
            self._expect_keyword("then")
            value = self.expression()
            branches.append((cond, value))
        if not branches:
            raise SqlError("CASE requires at least one WHEN branch")
        default = self.expression() if self._accept_keyword("else") else None
        self._expect_keyword("end")
        return ast.Case(tuple(branches), default)

    def _identifier_or_call(self) -> ast.AstExpr:
        name = self._identifier_name()
        if name == "extract" and self._accept_punct("("):
            unit_token = self._advance()
            if unit_token.value not in ("year", "month", "day"):
                raise SqlError(
                    f"unsupported EXTRACT unit {unit_token.value!r}"
                )
            self._expect_keyword("from")
            operand = self.expression()
            self._expect_punct(")")
            return ast.Extract(unit=unit_token.value, operand=operand)
        if self._accept_punct("("):
            distinct = self._accept_keyword("distinct")
            if self._peek().type is TokenType.OPERATOR and self._peek().value == "*":
                self._advance()
                self._expect_punct(")")
                return ast.FuncCall(name=name, args=(), star=True)
            if self._accept_punct(")"):
                return ast.FuncCall(name=name, args=())
            args = [self.expression()]
            while self._accept_punct(","):
                args.append(self.expression())
            self._expect_punct(")")
            return ast.FuncCall(name=name, args=tuple(args), distinct=distinct)
        if self._accept_punct("."):
            column = self._identifier_name()
            return ast.Identifier(qualifier=name, name=column)
        return ast.Identifier(qualifier=None, name=name)
