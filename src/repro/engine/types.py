"""Value types used by the engine.

Values flowing through the engine are plain Python objects: ``int``,
``float``, ``str``, ``None`` (SQL NULL), and :class:`Date`. Dates are
thin wrappers over proleptic-Gregorian day ordinals so comparisons and
interval arithmetic are integer operations.
"""

from __future__ import annotations

import datetime
from functools import total_ordering
from typing import Union


@total_ordering
class Date:
    """A calendar date stored as a day ordinal.

    Supports the arithmetic TPC-H queries need: adding or subtracting
    day counts and whole months/years (used by ``INTERVAL`` handling in
    the SQL layer).
    """

    __slots__ = ("_ordinal",)

    def __init__(self, ordinal: int):
        self._ordinal = int(ordinal)

    @classmethod
    def parse(cls, text: str) -> "Date":
        """Parse ``YYYY-MM-DD``."""
        d = datetime.date.fromisoformat(text)
        return cls(d.toordinal())

    @classmethod
    def from_ymd(cls, year: int, month: int, day: int) -> "Date":
        return cls(datetime.date(year, month, day).toordinal())

    @property
    def ordinal(self) -> int:
        return self._ordinal

    def to_date(self) -> datetime.date:
        return datetime.date.fromordinal(self._ordinal)

    def add_days(self, days: int) -> "Date":
        return Date(self._ordinal + days)

    def add_months(self, months: int) -> "Date":
        """Add whole months, clamping the day to the target month's length."""
        d = self.to_date()
        month_index = d.year * 12 + (d.month - 1) + months
        year, month = divmod(month_index, 12)
        month += 1
        day = d.day
        while True:
            try:
                return Date(datetime.date(year, month, day).toordinal())
            except ValueError:
                day -= 1
                if day < 1:  # pragma: no cover - defensive
                    raise

    def add_years(self, years: int) -> "Date":
        return self.add_months(12 * years)

    @property
    def year(self) -> int:
        return self.to_date().year

    def __eq__(self, other) -> bool:
        if isinstance(other, Date):
            return self._ordinal == other._ordinal
        return NotImplemented

    def __lt__(self, other) -> bool:
        if isinstance(other, Date):
            return self._ordinal < other._ordinal
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Date", self._ordinal))

    def __sub__(self, other) -> int:
        """Difference in days."""
        if isinstance(other, Date):
            return self._ordinal - other._ordinal
        return NotImplemented

    def __str__(self) -> str:
        return self.to_date().isoformat()

    def __repr__(self) -> str:
        return f"Date({self.to_date().isoformat()!r})"


#: A SQL value as represented inside the engine.
Value = Union[int, float, str, None, Date]


def value_byte_size(value: Value) -> int:
    """Approximate on-disk size of a value, used for page packing."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, Date):
        return 4
    if isinstance(value, str):
        return 4 + len(value)
    raise TypeError(f"unsupported value type: {type(value)!r}")


def compare_values(a: Value, b: Value) -> int:
    """Three-way compare with SQL-ish NULL ordering (NULLs sort last).

    Returns -1, 0, or 1. Mixed int/float compare numerically; other
    mixed-type comparisons raise ``TypeError`` (a schema bug upstream).
    """
    if a is None and b is None:
        return 0
    if a is None:
        return 1
    if b is None:
        return -1
    if a < b:
        return -1
    if a > b:
        return 1
    return 0
