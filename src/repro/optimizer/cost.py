"""Cost formulas for physical plan operators.

PostgreSQL-style: every formula is a linear combination of the
parameters in :class:`OptimizerParameters`, with quantities (pages,
tuples, operator evaluations) estimated from statistics. Like the
genuine article these formulas are deliberately *simpler* than what the
executor actually does — no buffer-residency tracking, independence
assumptions everywhere — so estimates can diverge from measurements in
realistic ways.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.engine.expr import (
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Expr,
    InListExpr,
    IsNullExpr,
    LikeExpr,
    NotExpr,
)
from repro.optimizer.params import OptimizerParameters
from repro.optimizer.selectivity import SelectivityEstimator
from repro.util.units import PAGE_SIZE

#: Default average text width when statistics are unavailable.
DEFAULT_TEXT_WIDTH = 32.0


def expr_like_bytes(expr: Optional[Expr],
                    estimator: Optional[SelectivityEstimator]) -> float:
    """Expected LIKE subject bytes examined per evaluation of *expr*."""
    if expr is None:
        return 0.0
    total = 0.0
    for node in _walk_expr(expr):
        if isinstance(node, LikeExpr):
            width = DEFAULT_TEXT_WIDTH
            if estimator is not None and isinstance(node.operand, ColumnRef):
                stats = estimator.column_stats(node.operand)
                if stats is not None:
                    width = stats.avg_width
            total += width
    return total


def predicate_cpu_cost(expr: Optional[Expr], params: OptimizerParameters,
                       estimator: Optional[SelectivityEstimator] = None) -> float:
    """CPU cost of evaluating *expr* once against one tuple."""
    if expr is None:
        return 0.0
    ops_cost = expr.op_count() * params.cpu_operator_cost
    like_cost = expr_like_bytes(expr, estimator) * params.cpu_like_byte_cost
    return ops_cost + like_cost


def _walk_expr(expr: Expr):
    yield expr
    if isinstance(expr, BinaryOp):
        yield from _walk_expr(expr.left)
        yield from _walk_expr(expr.right)
    elif isinstance(expr, (NotExpr, IsNullExpr, LikeExpr, InListExpr)):
        yield from _walk_expr(expr.operand)
    elif isinstance(expr, CaseExpr):
        for cond, value in expr.branches:
            yield from _walk_expr(cond)
            yield from _walk_expr(value)
        if expr.default is not None:
            yield from _walk_expr(expr.default)


# -- scans -------------------------------------------------------------------


def seq_scan_cost(params: OptimizerParameters, n_pages: int, n_rows: float,
                  filter_cost_per_tuple: float) -> float:
    """Full heap scan: read every page, examine every tuple."""
    io = n_pages * params.seq_page_cost
    cpu = n_rows * (params.cpu_tuple_cost + filter_cost_per_tuple)
    return io + cpu


def cache_discount(params: OptimizerParameters, relation_pages: int) -> float:
    """Fraction of random page fetches expected to hit cache.

    A crude Mackert–Lohman stand-in: the discount grows with how much of
    the relation fits in ``effective_cache_size``.
    """
    if relation_pages <= 0:
        return 1.0
    fraction_cached = min(1.0, params.effective_cache_size / relation_pages)
    return 0.9 * fraction_cached


def index_scan_cost(params: OptimizerParameters, index_height: int,
                    leaf_pages_fetched: float, tuples_fetched: float,
                    heap_pages: int, filter_cost_per_tuple: float) -> float:
    """Index range scan plus heap fetches.

    Heap fetches are random reads discounted by expected caching; index
    tuples cost ``cpu_index_tuple_cost`` each.
    """
    discount = cache_discount(params, heap_pages)
    effective_random = params.random_page_cost * (1.0 - discount) \
        + params.seq_page_cost * discount
    descent = index_height * params.random_page_cost
    leaf_io = leaf_pages_fetched * effective_random
    heap_io = tuples_fetched * effective_random
    cpu = tuples_fetched * (
        params.cpu_index_tuple_cost + params.cpu_tuple_cost + filter_cost_per_tuple
    )
    return descent + leaf_io + heap_io + cpu


# -- joins ------------------------------------------------------------------------


def hash_join_cost(params: OptimizerParameters, outer_cost: float, inner_cost: float,
                   outer_rows: float, inner_rows: float, result_rows: float,
                   residual_cost_per_row: float = 0.0) -> float:
    """Build on inner, probe with outer."""
    build = inner_rows * (params.cpu_operator_cost * 2 + params.cpu_tuple_cost)
    probe = outer_rows * params.cpu_operator_cost * 2
    emit = result_rows * (params.cpu_tuple_cost + residual_cost_per_row)
    return outer_cost + inner_cost + build + probe + emit


def nested_loop_cost(params: OptimizerParameters, outer_cost: float,
                     inner_cost: float, outer_rows: float, inner_rows: float,
                     result_rows: float, predicate_cost_per_pair: float) -> float:
    """Nested loops over a materialized inner side."""
    pairs = outer_rows * inner_rows
    rescan_cpu = pairs * max(params.cpu_operator_cost, predicate_cost_per_pair)
    emit = result_rows * params.cpu_tuple_cost
    return outer_cost + inner_cost + rescan_cpu + emit


def merge_join_cost(params: OptimizerParameters, outer_cost: float,
                    inner_cost: float, outer_rows: float, inner_rows: float,
                    result_rows: float) -> float:
    """Merge of two sorted inputs (sort costs are on the inputs)."""
    walk = (outer_rows + inner_rows) * params.cpu_operator_cost
    emit = result_rows * params.cpu_tuple_cost
    return outer_cost + inner_cost + walk + emit


# -- sort / aggregate / rest ----------------------------------------------------------


def sort_cost(params: OptimizerParameters, input_cost: float, n_rows: float,
              row_width: float, n_keys: int) -> float:
    """Comparison sort, with spill I/O beyond ``sort_mem_pages``."""
    cpu = 0.0
    if n_rows > 1:
        cpu = 2.0 * n_rows * math.log2(n_rows) * max(1, n_keys) \
            * params.cpu_operator_cost
    pages = (n_rows * row_width) / PAGE_SIZE
    io = 0.0
    if pages > params.sort_mem_pages:
        io = 2.0 * pages * params.seq_page_cost  # write runs + read back
    return input_cost + cpu + io


def aggregate_cost(params: OptimizerParameters, input_cost: float, input_rows: float,
                   n_groups: float, n_aggs: int, arg_cost_per_row: float) -> float:
    """Hash aggregation."""
    transition = input_rows * (
        params.cpu_operator_cost * (1 + n_aggs) + arg_cost_per_row
        + params.cpu_tuple_cost
    )
    finalize = n_groups * params.cpu_tuple_cost
    return input_cost + transition + finalize


def project_cost(params: OptimizerParameters, input_cost: float, n_rows: float,
                 expr_cost_per_row: float) -> float:
    return input_cost + n_rows * (expr_cost_per_row + params.cpu_tuple_cost * 0.5)


def filter_cost(params: OptimizerParameters, input_cost: float, n_rows: float,
                predicate_cost_per_row: float) -> float:
    return input_cost + n_rows * predicate_cost_per_row
