"""Predicate selectivity estimation.

Estimates the fraction of rows a predicate keeps, from the catalog's
per-column statistics, with PostgreSQL's defaults when statistics do
not apply. These estimates feed row-count estimation, which feeds the
cost formulas — the chain that makes optimizer estimates *estimates*.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.engine.expr import (
    BinaryOp,
    ColumnRef,
    Expr,
    InListExpr,
    IsNullExpr,
    LikeExpr,
    Literal,
    NotExpr,
)
from repro.engine.statistics import ColumnStats, TableStats

#: PostgreSQL-style defaults when statistics cannot answer.
DEFAULT_EQ_SELECTIVITY = 0.005
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_LIKE_SELECTIVITY = 0.005
DEFAULT_ANCHORED_LIKE_SELECTIVITY = 0.02


def _simple_range_bound(expr: Expr):
    """Match ``column <ineq> constant``; returns ((alias, col), op, value)."""
    if not isinstance(expr, BinaryOp) or expr.op not in ("<", "<=", ">", ">="):
        return None
    left, right = expr.left, expr.right
    if isinstance(left, ColumnRef) and isinstance(right, Literal) \
            and right.value is not None:
        return (left.alias, left.column), expr.op, right.value
    if isinstance(left, Literal) and isinstance(right, ColumnRef) \
            and left.value is not None:
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[expr.op]
        return (right.alias, right.column), flipped, left.value
    return None


def _tighten(entry: dict, op: str, value) -> None:
    """Fold one inequality into an interval, keeping the tightest bounds."""
    try:
        if op in (">", ">="):
            if entry["low"] is None or value > entry["low"]:
                entry["low"], entry["low_inc"] = value, op == ">="
            elif value == entry["low"] and op == ">":
                entry["low_inc"] = False
        else:
            if entry["high"] is None or value < entry["high"]:
                entry["high"], entry["high_inc"] = value, op == "<="
            elif value == entry["high"] and op == "<":
                entry["high_inc"] = False
    except TypeError:
        # Mixed-type bounds on one column: keep the existing bound.
        pass


class SelectivityEstimator:
    """Estimates selectivities against a set of visible relations."""

    def __init__(self, stats_by_alias: Dict[str, Optional[TableStats]]):
        self._stats_by_alias = stats_by_alias

    def column_stats(self, ref: ColumnRef) -> Optional[ColumnStats]:
        table_stats = self._stats_by_alias.get(ref.alias)
        if table_stats is None:
            return None
        return table_stats.column(ref.column)

    def estimate(self, predicate: Optional[Expr]) -> float:
        """Selectivity of *predicate* in [0, 1]; 1.0 for ``None``."""
        if predicate is None:
            return 1.0
        return min(1.0, max(0.0, self._estimate(predicate)))

    def estimate_conjuncts(self, predicates: Sequence[Expr]) -> float:
        """Selectivity of ANDed conjuncts.

        Mostly the independence-assumption product, with PostgreSQL's
        range-pair refinement: several inequality conjuncts on the same
        column (``date >= lo AND date < hi``) are combined into one
        interval instead of multiplied — naive independence would square
        the estimate for the common between-style pattern.
        """
        selectivity = 1.0
        range_bounds: Dict[tuple, dict] = {}
        for predicate in predicates:
            bound = _simple_range_bound(predicate)
            if bound is not None:
                column_key, op, value = bound
                entry = range_bounds.setdefault(
                    column_key, {"low": None, "low_inc": True,
                                 "high": None, "high_inc": True},
                )
                _tighten(entry, op, value)
            else:
                selectivity *= self.estimate(predicate)
        for (alias, column), entry in range_bounds.items():
            ref = ColumnRef(alias, column)
            stats = self.column_stats(ref)
            if stats is None:
                if entry["low"] is not None:
                    selectivity *= DEFAULT_RANGE_SELECTIVITY
                if entry["high"] is not None:
                    selectivity *= DEFAULT_RANGE_SELECTIVITY
                continue
            selectivity *= stats.selectivity_range(
                entry["low"], entry["high"],
                low_inclusive=entry["low_inc"],
                high_inclusive=entry["high_inc"],
            )
        return min(1.0, max(0.0, selectivity))

    # -- node dispatch ------------------------------------------------------

    def _estimate(self, expr: Expr) -> float:
        if isinstance(expr, BinaryOp):
            return self._estimate_binary(expr)
        if isinstance(expr, NotExpr):
            return 1.0 - self._estimate(expr.operand)
        if isinstance(expr, IsNullExpr):
            return self._estimate_is_null(expr)
        if isinstance(expr, LikeExpr):
            return self._estimate_like(expr)
        if isinstance(expr, InListExpr):
            return self._estimate_in_list(expr)
        if isinstance(expr, Literal):
            if expr.value is True:
                return 1.0
            if expr.value is False:
                return 0.0
            return 0.5
        return 0.5  # unknown expression shape

    def _estimate_binary(self, expr: BinaryOp) -> float:
        op = expr.op
        if op == "and":
            return self._estimate(expr.left) * self._estimate(expr.right)
        if op == "or":
            s1, s2 = self._estimate(expr.left), self._estimate(expr.right)
            return s1 + s2 - s1 * s2
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return self._estimate_comparison(expr)
        return 0.5  # arithmetic in boolean position: no information

    def _estimate_comparison(self, expr: BinaryOp) -> float:
        left, right = expr.left, expr.right
        # Normalize to column <op> constant where possible.
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(expr.op, expr.op)
            return self._column_vs_constant(right, flipped, left.value)
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            return self._column_vs_constant(left, expr.op, right.value)
        if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            return self._column_vs_column(left, expr.op, right)
        # Expression comparisons (e.g. l_commitdate < l_receiptdate with
        # arithmetic): fall back to defaults by operator class.
        if expr.op == "=":
            return DEFAULT_EQ_SELECTIVITY
        if expr.op == "<>":
            return 1.0 - DEFAULT_EQ_SELECTIVITY
        return DEFAULT_RANGE_SELECTIVITY

    def _column_vs_constant(self, ref: ColumnRef, op: str, value) -> float:
        stats = self.column_stats(ref)
        if stats is None:
            if op == "=":
                return DEFAULT_EQ_SELECTIVITY
            if op == "<>":
                return 1.0 - DEFAULT_EQ_SELECTIVITY
            return DEFAULT_RANGE_SELECTIVITY
        if op == "=":
            return stats.selectivity_eq(value)
        if op == "<>":
            return max(0.0, 1.0 - stats.selectivity_eq(value) - stats.null_fraction)
        if op == "<":
            return stats.selectivity_range(None, value, high_inclusive=False)
        if op == "<=":
            return stats.selectivity_range(None, value, high_inclusive=True)
        if op == ">":
            return stats.selectivity_range(value, None, low_inclusive=False)
        if op == ">=":
            return stats.selectivity_range(value, None, low_inclusive=True)
        return DEFAULT_RANGE_SELECTIVITY

    def _column_vs_column(self, left: ColumnRef, op: str, right: ColumnRef) -> float:
        if op != "=":
            return DEFAULT_RANGE_SELECTIVITY
        left_stats = self.column_stats(left)
        right_stats = self.column_stats(right)
        n_left = left_stats.n_distinct if left_stats is not None else 0
        n_right = right_stats.n_distinct if right_stats is not None else 0
        n_max = max(n_left, n_right)
        if n_max <= 0:
            return DEFAULT_EQ_SELECTIVITY
        return 1.0 / n_max

    def _estimate_is_null(self, expr: IsNullExpr) -> float:
        base = 0.01
        if isinstance(expr.operand, ColumnRef):
            stats = self.column_stats(expr.operand)
            if stats is not None:
                base = stats.null_fraction
        return (1.0 - base) if expr.negated else base

    def _estimate_like(self, expr: LikeExpr) -> float:
        pattern = expr.pattern
        if pattern.startswith("%") or pattern.startswith("_"):
            base = DEFAULT_LIKE_SELECTIVITY
        else:
            base = DEFAULT_ANCHORED_LIKE_SELECTIVITY
        # Longer literal content is more selective; PostgreSQL applies a
        # similar per-character discount.
        literal_chars = sum(1 for ch in pattern if ch not in "%_")
        base *= max(0.05, 0.9 ** max(0, literal_chars - 4))
        return (1.0 - base) if expr.negated else base

    def _estimate_in_list(self, expr: InListExpr) -> float:
        if isinstance(expr.operand, ColumnRef):
            stats = self.column_stats(expr.operand)
            if stats is not None:
                total = sum(stats.selectivity_eq(v) for v in expr.values)
                total = min(1.0, total)
                return (1.0 - total) if expr.negated else total
        total = min(1.0, DEFAULT_EQ_SELECTIVITY * len(expr.values))
        return (1.0 - total) if expr.negated else total
