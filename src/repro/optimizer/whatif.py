"""The virtualization-aware what-if optimizer mode.

This is the paper's instrument: optimize a workload's queries under an
arbitrary parameter set ``P`` — typically one calibrated for a resource
allocation ``R`` — and report estimated execution times *without
executing anything*. Access paths and database statistics are used
unchanged; only ``P`` varies, exactly as Section 4 of the paper
prescribes. Estimates are intended for *ranking* alternatives, not as
absolute predictions.

Optimize once, re-cost many: the first time a query is optimized, the
planner also records a :class:`~repro.optimizer.recost.CostProgram` —
a replayable cost expression whose structure (candidate plan shapes,
join lattice, row estimates) is ``P``-independent. Subsequent
estimates of the same query under *different* parameter sets replay
the program instead of re-planning, producing bit-identical costs at a
fraction of the work. Design search sweeps dozens of allocations over
one workload, so this turns its optimizer bill from
``O(queries x allocations)`` plans into ``O(queries)`` plans plus
cheap re-costs. Programs are guarded by the catalog fingerprint: any
DDL, data load, or ``analyze`` changes the fingerprint and invalidates
them.

Observability: full optimizations increment
``optimizer.whatif.estimates``; program replays increment
``optimizer.whatif.recosts``; estimates answered from the shared
(query, ``P``, catalog) cache increment
``optimizer.whatif.cache_hits``. Together they show how much true
re-optimization the what-if mode performs across a design run.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.engine.catalog import Catalog
from repro.engine.plans import PlanNode
from repro.obs import metrics
from repro.optimizer.params import OptimizerParameters
from repro.optimizer.planner import Planner
from repro.optimizer.recost import CostProgram, PlanCostRecorder

#: Module-level switch for the optimize-once/re-cost-many fast path.
#: With it off, every estimate plans fully and no program is compiled
#: or replayed — the reference path the fast path must match bit for
#: bit. Flip it through :func:`full_planning_fallback`, not directly.
FAST_PATH = True


@contextlib.contextmanager
def full_planning_fallback():
    """Run with program compilation and replay disabled.

    The benchmark harness (``scripts/bench_hotpath.py``) and the
    property suite use this to prove the replayed costs are
    bit-identical to full re-planning; it is not a tuning knob.
    """
    global FAST_PATH
    prior = FAST_PATH
    FAST_PATH = False
    try:
        yield
    finally:
        FAST_PATH = prior


@dataclass
class QueryEstimate:
    """What-if estimate for one query.

    Estimates produced by program replay carry no materialized plan —
    re-costing is the point of skipping plan construction — but
    :attr:`plan` stays available: accessing it plans the query on
    demand under the estimate's parameter set.
    """

    sql: str
    cost_units: float
    estimated_seconds: float
    _plan: Optional[PlanNode] = field(default=None, repr=False)
    _plan_factory: Optional[Callable[[], PlanNode]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def plan(self) -> Optional[PlanNode]:
        if self._plan is None and self._plan_factory is not None:
            self._plan = self._plan_factory()
        return self._plan


class WhatIfOptimizer:
    """Optimizes and costs queries under a swappable parameter set."""

    def __init__(self, catalog: Catalog, params: Optional[OptimizerParameters] = None):
        self._catalog = catalog
        self._params = params or OptimizerParameters.defaults()
        self._plan_cache: Dict[tuple, QueryEstimate] = {}
        #: (sql, catalog fingerprint) -> compiled program, or None when
        #: the query's plan structure depends on P (not replayable).
        self._programs: Dict[tuple, Optional[CostProgram]] = {}

    @property
    def params(self) -> OptimizerParameters:
        return self._params

    def with_params(self, params: OptimizerParameters) -> "WhatIfOptimizer":
        """A what-if instance for a different environment ``P``.

        The catalog (access paths, statistics), the estimate cache, and
        the compiled cost programs are shared — changing ``P`` must
        never touch the database itself, and programs are exactly the
        artifact that makes alternating between parameter sets cheap.
        """
        other = WhatIfOptimizer(self._catalog, params)
        other._plan_cache = self._plan_cache
        other._programs = self._programs
        return other

    # -- estimation ---------------------------------------------------------

    def estimate_query(self, sql: str) -> QueryEstimate:
        """Optimize *sql* under the current ``P`` and estimate its time."""
        fingerprint = self._catalog.fingerprint()
        key = (sql, self._params, fingerprint)
        cached = self._plan_cache.get(key)
        if cached is not None:
            metrics.counter("optimizer.whatif.cache_hits").inc()
            return cached

        program_key = (sql, fingerprint)
        program = self._programs.get(program_key) if FAST_PATH else None
        if program is not None:
            # Replay the recorded cost expression under the current P —
            # bit-identical to re-planning, without building a plan.
            metrics.counter("optimizer.whatif.recosts").inc()
            params = self._params
            cost = program.cost(params)
            catalog = self._catalog
            estimate = QueryEstimate(
                sql=sql,
                cost_units=cost,
                estimated_seconds=params.cost_to_seconds(cost),
                _plan_factory=lambda: Planner(catalog, params).plan_sql(sql),
            )
            self._plan_cache[key] = estimate
            return estimate

        metrics.counter("optimizer.whatif.estimates").inc()
        planner = Planner(self._catalog, self._params)
        if not FAST_PATH or program_key in self._programs:
            # Fallback mode, or known non-compilable: plan fully.
            plan = planner.plan_sql(sql)
        else:
            recorder = PlanCostRecorder()
            plan = planner.plan_sql(sql, recorder)
            self._programs[program_key] = recorder.program(
                fingerprint, plan.est_rows
            )
        estimate = QueryEstimate(
            sql=sql,
            cost_units=plan.est_total_cost,
            estimated_seconds=self._params.cost_to_seconds(plan.est_total_cost),
            _plan=plan,
        )
        self._plan_cache[key] = estimate
        return estimate

    def estimate_workload(self, statements: Sequence[str]) -> float:
        """Sum of estimated execution seconds over a workload.

        This is the paper's ``Cost(W_i, R_i)``: the query optimizer's
        estimated total resource consumption for the workload under the
        parameters calibrated for allocation ``R_i``.
        """
        return sum(self.estimate_query(sql).estimated_seconds for sql in statements)

    def explain(self, sql: str) -> str:
        """EXPLAIN-style plan text under the current ``P``."""
        estimate = self.estimate_query(sql)
        header = (
            f"What-if plan (cpu_tuple_cost={self._params.cpu_tuple_cost:.4g}, "
            f"cpu_operator_cost={self._params.cpu_operator_cost:.4g}, "
            f"random_page_cost={self._params.random_page_cost:.4g})"
        )
        return "\n".join([header, estimate.plan.explain()])

    def compare(self, sql: str,
                parameter_sets: Sequence[OptimizerParameters]) -> List[QueryEstimate]:
        """Estimate the same query under several environments."""
        return [self.with_params(p).estimate_query(sql) for p in parameter_sets]
