"""The virtualization-aware what-if optimizer mode.

This is the paper's instrument: optimize a workload's queries under an
arbitrary parameter set ``P`` — typically one calibrated for a resource
allocation ``R`` — and report estimated execution times *without
executing anything*. Access paths and database statistics are used
unchanged; only ``P`` varies, exactly as Section 4 of the paper
prescribes. Estimates are intended for *ranking* alternatives, not as
absolute predictions.

Observability: computed estimates increment
``optimizer.whatif.estimates``; estimates answered from the shared
(query, ``P``) plan cache increment ``optimizer.whatif.cache_hits``.
The difference is how much re-optimization the what-if mode actually
performs across a design run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.engine.catalog import Catalog
from repro.engine.plans import PlanNode
from repro.obs import metrics
from repro.optimizer.params import OptimizerParameters
from repro.optimizer.planner import Planner


@dataclass
class QueryEstimate:
    """What-if estimate for one query."""

    sql: str
    plan: PlanNode
    cost_units: float
    estimated_seconds: float


class WhatIfOptimizer:
    """Optimizes and costs queries under a swappable parameter set."""

    def __init__(self, catalog: Catalog, params: Optional[OptimizerParameters] = None):
        self._catalog = catalog
        self._params = params or OptimizerParameters.defaults()
        self._plan_cache: Dict[tuple, QueryEstimate] = {}

    @property
    def params(self) -> OptimizerParameters:
        return self._params

    def with_params(self, params: OptimizerParameters) -> "WhatIfOptimizer":
        """A what-if instance for a different environment ``P``.

        The catalog (access paths, statistics) and the plan cache are
        shared — changing ``P`` must never touch the database itself,
        and estimates are keyed by (query, P) so alternating between
        parameter sets stays cheap.
        """
        other = WhatIfOptimizer(self._catalog, params)
        other._plan_cache = self._plan_cache
        return other

    # -- estimation ---------------------------------------------------------

    def estimate_query(self, sql: str) -> QueryEstimate:
        """Optimize *sql* under the current ``P`` and estimate its time."""
        key = (sql, self._params)
        cached = self._plan_cache.get(key)
        if cached is not None:
            metrics.counter("optimizer.whatif.cache_hits").inc()
            return cached
        metrics.counter("optimizer.whatif.estimates").inc()
        planner = Planner(self._catalog, self._params)
        plan = planner.plan_sql(sql)
        estimate = QueryEstimate(
            sql=sql,
            plan=plan,
            cost_units=plan.est_total_cost,
            estimated_seconds=self._params.cost_to_seconds(plan.est_total_cost),
        )
        self._plan_cache[key] = estimate
        return estimate

    def estimate_workload(self, statements: Sequence[str]) -> float:
        """Sum of estimated execution seconds over a workload.

        This is the paper's ``Cost(W_i, R_i)``: the query optimizer's
        estimated total resource consumption for the workload under the
        parameters calibrated for allocation ``R_i``.
        """
        return sum(self.estimate_query(sql).estimated_seconds for sql in statements)

    def explain(self, sql: str) -> str:
        """EXPLAIN-style plan text under the current ``P``."""
        estimate = self.estimate_query(sql)
        header = (
            f"What-if plan (cpu_tuple_cost={self._params.cpu_tuple_cost:.4g}, "
            f"cpu_operator_cost={self._params.cpu_operator_cost:.4g}, "
            f"random_page_cost={self._params.random_page_cost:.4g})"
        )
        return "\n".join([header, estimate.plan.explain()])

    def compare(self, sql: str,
                parameter_sets: Sequence[OptimizerParameters]) -> List[QueryEstimate]:
        """Estimate the same query under several environments."""
        return [self.with_params(p).estimate_query(sql) for p in parameter_sets]
