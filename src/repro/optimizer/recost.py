"""Optimize once, re-cost many: compiled cost programs.

Design search evaluates the same workload under dozens of calibrated
parameter sets ``P`` — one per candidate allocation — and the planner
re-derives the *same* candidate plan shapes every time, because
everything structural (access-path candidates, the dpsize join lattice,
row and selectivity estimates) depends only on the catalog, never on
``P``. Only the cost arithmetic and the argmin decisions vary.

A :class:`CostProgram` captures that split. While the planner builds a
plan it can record, at every costing site, a small expression node:

* :class:`Call` — one cost-formula invocation, holding the formula and
  its ``P``-independent quantities, with child nodes where the formula
  consumes another plan's cost;
* :class:`Pred` — a predicate's ``(operator count, LIKE bytes)``, the
  two quantities :func:`repro.optimizer.cost.predicate_cpu_cost`
  prices;
* :class:`PredSum` — an ordered sum of predicate costs (aggregate
  arguments, projection expressions);
* :class:`Min` — one planner decision: the candidates, in the exact
  order the planner compared them, resolved by first minimum under
  strict ``<`` (Python's ``min`` tie-break);
* :class:`Sum` — the final plan cost plus its scalar-subquery costs.

Evaluating the program under a new ``P`` replays the identical
arithmetic — the :class:`Call` nodes invoke the *same* cost functions
in the same argument order — so the result is bit-identical to
re-running the planner under that ``P``, at a fraction of the work.
The dynamic-programming join order makes the nodes a DAG (each subset's
:class:`Min` is shared by every larger subset that splits through it);
evaluation memoizes per node.

Programs are only valid for the catalog they were compiled against:
:class:`CostProgram.fingerprint` holds
:meth:`repro.engine.catalog.Catalog.fingerprint` from compile time, and
:class:`repro.optimizer.whatif.WhatIfOptimizer` refuses to replay a
program whose fingerprint no longer matches. Queries whose structure
*does* depend on ``P`` (join regions past the DP limit use greedy
ordering, which prunes by cost) are flagged non-compilable at recording
time and keep the full re-planning path.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Union

from repro.optimizer.params import OptimizerParameters


class CostNode:
    """Base class for cost-expression nodes."""

    __slots__ = ()

    def evaluate(self, params: OptimizerParameters,
                 memo: Dict[int, float]) -> float:
        raise NotImplementedError


#: A recorded argument: either a replayable node or a frozen quantity.
Arg = Union[CostNode, float, int]


class Num(CostNode):
    """A ``P``-independent constant (rarely needed; args are inlined)."""

    __slots__ = ("value",)

    def __init__(self, value: float):
        self.value = value

    def evaluate(self, params, memo):
        return self.value


class Pred(CostNode):
    """Replay of ``predicate_cpu_cost``: priced operator and LIKE work."""

    __slots__ = ("ops", "like_bytes")

    def __init__(self, ops: int, like_bytes: float):
        self.ops = ops
        self.like_bytes = like_bytes

    def evaluate(self, params, memo):
        # Mirrors predicate_cpu_cost's arithmetic order exactly.
        ops_cost = self.ops * params.cpu_operator_cost
        like_cost = self.like_bytes * params.cpu_like_byte_cost
        return ops_cost + like_cost


class PredSum(CostNode):
    """Ordered sum of predicate costs (``sum`` starting from ``0``)."""

    __slots__ = ("preds",)

    def __init__(self, preds: Tuple[Pred, ...]):
        self.preds = preds

    def evaluate(self, params, memo):
        return sum(p.evaluate(params, memo) for p in self.preds)


class Call(CostNode):
    """One cost-formula invocation with frozen quantities."""

    __slots__ = ("fn", "args")

    def __init__(self, fn: Callable[..., float], args: Tuple[Arg, ...]):
        self.fn = fn
        self.args = args

    def evaluate(self, params, memo):
        resolved = [
            evaluate(arg, params, memo) if isinstance(arg, CostNode) else arg
            for arg in self.args
        ]
        return self.fn(params, *resolved)


class Min(CostNode):
    """One planner decision: first minimum over ordered candidates."""

    __slots__ = ("candidates",)

    def __init__(self, candidates: Tuple[CostNode, ...]):
        if not candidates:
            raise ValueError("a decision needs at least one candidate")
        self.candidates = candidates

    def evaluate(self, params, memo):
        best = evaluate(self.candidates[0], params, memo)
        for candidate in self.candidates[1:]:
            value = evaluate(candidate, params, memo)
            if value < best:
                best = value
        return best


class Sum(CostNode):
    """Plan cost plus scalar-subquery costs (``base + sum(parts)``)."""

    __slots__ = ("base", "parts")

    def __init__(self, base: CostNode, parts: Tuple[CostNode, ...]):
        self.base = base
        self.parts = parts

    def evaluate(self, params, memo):
        base = evaluate(self.base, params, memo)
        return base + sum(evaluate(p, params, memo) for p in self.parts)


def evaluate(node: CostNode, params: OptimizerParameters,
             memo: Dict[int, float]) -> float:
    """Evaluate *node* under *params*, memoized per DAG node."""
    key = id(node)
    cached = memo.get(key)
    if cached is None:
        cached = node.evaluate(params, memo)
        memo[key] = cached
    return cached


class CostProgram:
    """A compiled query: replayable cost DAG plus validity metadata."""

    __slots__ = ("root", "fingerprint", "est_rows")

    def __init__(self, root: CostNode, fingerprint: tuple, est_rows: float):
        self.root = root
        self.fingerprint = fingerprint
        self.est_rows = est_rows

    def cost(self, params: OptimizerParameters) -> float:
        """Total plan cost under *params* — bit-identical to replanning."""
        return evaluate(self.root, params, {})


class PlanCostRecorder:
    """Collects the cost DAG while :class:`~repro.optimizer.planner.Planner` runs.

    One recorder accompanies one top-level ``plan_query`` call,
    including its nested calls for derived tables and scalar
    subqueries: each nested build deposits its root here and the caller
    claims it immediately with :meth:`take_root`. If any build hits a
    structurally ``P``-dependent path it calls :meth:`mark_uncompilable`
    and the whole query keeps full re-planning.
    """

    __slots__ = ("compilable", "reason", "_root")

    def __init__(self):
        self.compilable = True
        self.reason: Optional[str] = None
        self._root: Optional[CostNode] = None

    def mark_uncompilable(self, reason: str) -> None:
        self.compilable = False
        self.reason = reason

    def deposit_root(self, node: Optional[CostNode]) -> None:
        self._root = node

    def take_root(self) -> Optional[CostNode]:
        node, self._root = self._root, None
        return node

    def program(self, fingerprint: tuple,
                est_rows: float) -> Optional[CostProgram]:
        """The compiled program, or ``None`` if recording bailed out."""
        root = self.take_root()
        if not self.compilable or root is None:
            return None
        return CostProgram(root=root, fingerprint=fingerprint,
                           est_rows=est_rows)
