"""Optimizer environment parameters (the paper's ``P``).

All costs are expressed in units of one sequential page fetch
(``seq_page_cost`` is pinned at 1.0), exactly as in PostgreSQL. The
parameters the paper names — ``cpu_tuple_cost`` and
``cpu_operator_cost`` — are the CPU cost of processing one tuple and
one WHERE-clause item as fractions of a sequential page fetch; they are
what the calibration process recovers for each resource allocation.

``seconds_per_seq_page`` converts optimizer cost units into (simulated)
seconds. The optimizer itself only needs ratios to *rank* plans and
allocations (the discipline the paper prescribes); the conversion is
kept so experiments can report comparable magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict


@dataclass(frozen=True)
class OptimizerParameters:
    """The physical-environment parameter set ``P``."""

    #: Cost of one sequential page fetch; the unit of all other costs.
    seq_page_cost: float = 1.0
    #: Cost of one non-sequential page fetch.
    random_page_cost: float = 4.0
    #: CPU cost of processing one tuple.
    cpu_tuple_cost: float = 0.01
    #: CPU cost of processing one index entry.
    cpu_index_tuple_cost: float = 0.005
    #: CPU cost of one operator/WHERE-clause item evaluation.
    cpu_operator_cost: float = 0.0025
    #: CPU cost of matching LIKE against one subject byte. An extension
    #: to PostgreSQL's parameter set: pattern matching dominates some
    #: TPC-H queries (Q13) and a per-clause charge cannot express that.
    cpu_like_byte_cost: float = 0.0002
    #: Pages of data expected to be cached (guides index-scan costing).
    effective_cache_size: int = 16384
    #: Pages one sort may use before spilling.
    sort_mem_pages: int = 256
    #: Seconds one sequential page fetch takes in the calibrated
    #: environment; converts cost units to estimated seconds.
    seconds_per_seq_page: float = 1.37e-4

    @classmethod
    def defaults(cls) -> "OptimizerParameters":
        """PostgreSQL-flavoured default parameters (uncalibrated)."""
        return cls()

    def with_values(self, **kwargs) -> "OptimizerParameters":
        """A copy with some parameters replaced."""
        return replace(self, **kwargs)

    def cost_to_seconds(self, cost: float) -> float:
        """Convert a plan cost (in seq-page units) to estimated seconds."""
        return cost * self.seconds_per_seq_page

    def as_dict(self) -> Dict[str, float]:
        return {
            "seq_page_cost": self.seq_page_cost,
            "random_page_cost": self.random_page_cost,
            "cpu_tuple_cost": self.cpu_tuple_cost,
            "cpu_index_tuple_cost": self.cpu_index_tuple_cost,
            "cpu_operator_cost": self.cpu_operator_cost,
            "cpu_like_byte_cost": self.cpu_like_byte_cost,
            "effective_cache_size": float(self.effective_cache_size),
            "sort_mem_pages": float(self.sort_mem_pages),
            "seconds_per_seq_page": self.seconds_per_seq_page,
        }

    @classmethod
    def from_dict(cls, values: Dict[str, float]) -> "OptimizerParameters":
        """Inverse of :meth:`as_dict` (used by calibration persistence)."""
        return cls(
            seq_page_cost=float(values["seq_page_cost"]),
            random_page_cost=float(values["random_page_cost"]),
            cpu_tuple_cost=float(values["cpu_tuple_cost"]),
            cpu_index_tuple_cost=float(values["cpu_index_tuple_cost"]),
            cpu_operator_cost=float(values["cpu_operator_cost"]),
            cpu_like_byte_cost=float(values["cpu_like_byte_cost"]),
            effective_cache_size=int(values["effective_cache_size"]),
            sort_mem_pages=int(values["sort_mem_pages"]),
            seconds_per_seq_page=float(values["seconds_per_seq_page"]),
        )

    def validate(self) -> None:
        """Raise ``ValueError`` on non-physical parameter values."""
        for name, value in self.as_dict().items():
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")
        if self.seq_page_cost <= 0:
            raise ValueError("seq_page_cost must be positive")
        if self.seconds_per_seq_page <= 0:
            raise ValueError("seconds_per_seq_page must be positive")
