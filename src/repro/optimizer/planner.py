"""The query planner.

Turns a bound :class:`LogicalQuery` into a costed physical plan:

1. derived tables are planned recursively,
2. each base relation gets cost-based access-path selection (seq scan
   vs B+-tree index scan) over the predicates pushed down to it,
3. maximal inner-join regions are ordered by dynamic programming over
   relation subsets (the textbook dpsize algorithm), choosing among
   hash, merge, and nested-loop joins by cost,
4. outer/semi/anti joins (from LEFT JOIN syntax and decorrelated
   subqueries) are applied in syntactic order with single-side
   predicates pushed below them,
5. aggregation, HAVING, projection, DISTINCT, ORDER BY, and LIMIT are
   stacked on top.

Every node is annotated with estimated rows and cost under the
planner's :class:`OptimizerParameters`, which is what the what-if
optimizer varies per resource allocation.

Observability: every :meth:`Planner.plan_query` call increments the
``optimizer.plans`` counter and is timed into ``optimizer.plan_seconds``
— the per-plan cost that what-if estimation pays when its plan cache
misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.engine.catalog import Catalog, IndexInfo, TableInfo
from repro.engine.expr import (
    BinaryOp,
    ColumnRef,
    Expr,
    Literal,
    RowLayout,
    SubplanExpr,
    and_together,
    conjuncts,
    map_children,
)
from repro.engine.plans import (
    Aggregate,
    Filter,
    HashJoin,
    IndexScan,
    JoinType,
    Limit,
    MergeJoin,
    NestedLoopJoin,
    PlanNode,
    Project,
    SeqScan,
    Sort,
    SortKey,
)
from repro.engine.sql.binder import (
    Binder,
    LogicalDerived,
    LogicalJoin,
    LogicalNode,
    LogicalQuery,
    LogicalRelation,
)
from repro.engine.statistics import TableStats
from repro.obs import metrics
from repro.optimizer import cost as costf
from repro.optimizer import recost
from repro.optimizer.params import OptimizerParameters
from repro.optimizer.selectivity import SelectivityEstimator
from repro.util.errors import PlanningError

#: Join regions larger than this use greedy ordering instead of DP.
DP_RELATION_LIMIT = 10
#: PostgreSQL's guess for group counts without statistics.
DEFAULT_GROUPS = 200.0
DEFAULT_HAVING_SELECTIVITY = 0.5


@dataclass
class _SubPlan:
    """A planned subtree during join ordering."""

    plan: PlanNode
    aliases: FrozenSet[str]
    rows: float
    cost: float
    #: Replayable cost expression for this subtree (recording mode only).
    node: Optional[recost.CostNode] = None


class Planner:
    """Cost-based planner over one catalog and one parameter set."""

    def __init__(self, catalog: Catalog, params: OptimizerParameters):
        self._catalog = catalog
        self._params = params

    @property
    def params(self) -> OptimizerParameters:
        return self._params

    # -- entry points ------------------------------------------------------

    def plan_sql(self, sql: str,
                 recorder: Optional[recost.PlanCostRecorder] = None) -> PlanNode:
        query = Binder(self._catalog).bind_sql(sql)
        return self.plan_query(query, recorder)

    def plan_query(self, query: LogicalQuery,
                   recorder: Optional[recost.PlanCostRecorder] = None) -> PlanNode:
        """Plan *query*; with a *recorder*, also capture its cost program.

        The recorder collects a replayable cost DAG (see
        :mod:`repro.optimizer.recost`) and receives the root node via
        :meth:`~repro.optimizer.recost.PlanCostRecorder.deposit_root`
        when the build finishes — claim it with ``take_root()``.
        """
        metrics.counter("optimizer.plans").inc()
        with metrics.timer("optimizer.plan_seconds"):
            state = _PlanState(self, query, recorder)
            return state.build()


class _PlanState:
    """Planning state for one query."""

    def __init__(self, planner: Planner, query: LogicalQuery,
                 recorder: Optional[recost.PlanCostRecorder] = None):
        self._planner = planner
        self._params = planner.params
        self._catalog = planner._catalog
        self._query = query
        self._recorder = recorder
        self._stats_by_alias: Dict[str, Optional[TableStats]] = {}
        self._derived_plans: Dict[str, PlanNode] = {}
        self._derived_cost_nodes: Dict[str, Optional[recost.CostNode]] = {}
        self._collect_stats(query.from_tree)
        self._estimator = SelectivityEstimator(self._stats_by_alias)

    # -- statistics collection -------------------------------------------------

    def _collect_stats(self, node: Optional[LogicalNode]) -> None:
        if node is None:
            return
        if isinstance(node, LogicalRelation):
            info = self._catalog.table(node.table)
            if info.stats is None:
                self._catalog.analyze(node.table)
                info = self._catalog.table(node.table)
            self._stats_by_alias[node.alias] = info.stats
        elif isinstance(node, LogicalDerived):
            recorder = self._recorder
            subplan = Planner(self._catalog, self._params).plan_query(
                node.query, recorder
            )
            if recorder is not None:
                root = recorder.take_root()
                if root is None:
                    recorder.mark_uncompilable(
                        f"derived table {node.alias!r} produced no cost node"
                    )
                self._derived_cost_nodes[node.alias] = root
            subplan.layout = RowLayout(
                [(node.alias, name) for name in node.column_names]
            )
            self._derived_plans[node.alias] = subplan
            self._stats_by_alias[node.alias] = None
        elif isinstance(node, LogicalJoin):
            self._collect_stats(node.left)
            self._collect_stats(node.right)

    # -- top level --------------------------------------------------------------

    def build(self) -> PlanNode:
        query = self._query
        recorder = self._recorder
        subplans, subplan_nodes = self._plan_scalar_subqueries()
        pool = _ConjunctPool(query.where)
        sub = self._plan_tree(query.from_tree, pool)
        plan, node = self._apply_leftover(
            sub, pool, frozenset(query.from_tree.aliases())
        )
        if pool.remaining():
            leftover = [str(c) for c in pool.remaining()]
            raise PlanningError(f"unplaced WHERE conjuncts: {leftover}")

        if query.is_aggregated:
            plan, node = self._add_aggregate(plan, node)
        plan, node = self._add_project(plan, node)
        if query.distinct:
            plan, node = self._add_distinct(plan, node)
        if query.order_by:
            plan, node = self._add_sort(plan, query.order_by, node)
        if query.limit is not None:
            limited = Limit(input=plan, count=query.limit)
            limited.est_rows = min(plan.est_rows, float(query.limit))
            limited.est_total_cost = plan.est_total_cost
            plan = limited  # cost passthrough: the node carries over
        # Each scalar subquery executes exactly once per outer execution.
        plan.est_total_cost += sum(sp.plan.est_total_cost for sp in subplans)
        if recorder is not None:
            if node is None:
                recorder.mark_uncompilable("plan root produced no cost node")
                recorder.deposit_root(None)
            else:
                recorder.deposit_root(
                    recost.Sum(node, tuple(subplan_nodes))
                )
        return plan

    def _plan_scalar_subqueries(
        self,
    ) -> Tuple[List[SubplanExpr], List[recost.CostNode]]:
        """Plan every uncorrelated scalar subquery under this query."""
        query = self._query
        exprs: List[Expr] = list(query.where) + list(query.select_exprs)
        exprs.extend(query.group_keys)
        if query.having is not None:
            exprs.append(query.having)
        for spec in query.aggregates:
            if spec.arg is not None:
                exprs.append(spec.arg)
        stack = [query.from_tree]
        while stack:
            node = stack.pop()
            if isinstance(node, LogicalJoin):
                if node.condition is not None:
                    exprs.append(node.condition)
                stack.append(node.left)
                stack.append(node.right)

        subplans: List[SubplanExpr] = []
        for expr in exprs:
            subplans.extend(_find_subplans(expr))
        recorder = self._recorder
        nodes: List[recost.CostNode] = []
        for subplan in subplans:
            subplan.plan = Planner(self._catalog, self._params).plan_query(
                subplan.logical, recorder
            )
            if recorder is not None:
                root = recorder.take_root()
                if root is None:
                    recorder.mark_uncompilable(
                        "scalar subquery produced no cost node"
                    )
                else:
                    nodes.append(root)
        return subplans, nodes

    # -- FROM tree ------------------------------------------------------------------

    def _plan_tree(self, node: LogicalNode, pool: "_ConjunctPool") -> _SubPlan:
        if isinstance(node, (LogicalRelation, LogicalDerived)):
            return self._plan_leaf(node, pool)
        if isinstance(node, LogicalJoin):
            if node.join_type is JoinType.INNER:
                return self._plan_inner_region(node, pool)
            return self._plan_special_join(node, pool)
        raise PlanningError(f"cannot plan FROM node {type(node).__name__}")

    def _plan_inner_region(self, node: LogicalJoin,
                           pool: "_ConjunctPool") -> _SubPlan:
        leaves: List[LogicalNode] = []
        region_conjuncts: List[Expr] = []
        self._flatten_inner(node, leaves, region_conjuncts)
        pool.extend(region_conjuncts)
        subplans = [self._plan_tree(leaf, pool) for leaf in leaves]
        region_aliases = frozenset.union(*(sp.aliases for sp in subplans))
        join_conjuncts = pool.take_multi_alias(region_aliases)
        if len(subplans) == 1:
            result = subplans[0]
        elif len(subplans) <= DP_RELATION_LIMIT:
            result = self._dp_join(subplans, join_conjuncts)
        else:
            result = self._greedy_join(subplans, join_conjuncts)
        return result

    def _flatten_inner(self, node: LogicalNode, leaves: List[LogicalNode],
                       out_conjuncts: List[Expr]) -> None:
        if isinstance(node, LogicalJoin) and node.join_type is JoinType.INNER:
            self._flatten_inner(node.left, leaves, out_conjuncts)
            self._flatten_inner(node.right, leaves, out_conjuncts)
            if node.condition is not None:
                out_conjuncts.extend(conjuncts(node.condition))
        else:
            leaves.append(node)

    def _plan_special_join(self, node: LogicalJoin,
                           pool: "_ConjunctPool") -> _SubPlan:
        left = self._plan_tree(node.left, pool)
        left = self._apply_leftover_sub(left, pool)

        cond_conjuncts = conjuncts(node.condition)
        right_aliases = frozenset(node.right.aliases())
        push_right = [c for c in cond_conjuncts
                      if _expr_aliases(c) and _expr_aliases(c) <= right_aliases]
        keep = [c for c in cond_conjuncts if c not in push_right]

        right_pool = _ConjunctPool(push_right)
        right = self._plan_tree(node.right, right_pool)
        right = self._apply_leftover_sub(right, right_pool)
        if right_pool.remaining():
            keep.extend(right_pool.remaining())

        return self._build_join(left, right, node.join_type, keep)

    # -- leaves: access path selection ----------------------------------------------

    def _plan_leaf(self, node: LogicalNode, pool: "_ConjunctPool") -> _SubPlan:
        if isinstance(node, LogicalDerived):
            plan = self._derived_plans[node.alias]
            rows = max(1.0, plan.est_rows)
            return _SubPlan(plan=plan, aliases=frozenset([node.alias]),
                            rows=rows, cost=plan.est_total_cost,
                            node=self._derived_cost_nodes.get(node.alias))
        assert isinstance(node, LogicalRelation)
        local = pool.take_single_alias(node.alias)
        return self._best_access_path(node, local)

    def _best_access_path(self, node: LogicalRelation,
                          local_conjuncts: List[Expr]) -> _SubPlan:
        info = self._catalog.table(node.table)
        stats = self._stats_by_alias[node.alias]
        assert stats is not None
        params = self._params
        layout = RowLayout(
            [(node.alias, col) for col in info.schema.column_names()]
        )
        selectivity = self._estimator.estimate_conjuncts(local_conjuncts)
        out_rows = max(1.0, stats.n_rows * selectivity)

        # Sequential scan candidate.
        filter_expr = and_together(local_conjuncts)
        per_tuple = costf.predicate_cpu_cost(filter_expr, params, self._estimator)
        seq = SeqScan(table_name=node.table, alias=node.alias,
                      filter_expr=filter_expr)
        seq.layout = layout
        seq.est_rows = out_rows
        seq.est_total_cost = costf.seq_scan_cost(
            params, stats.n_pages, stats.n_rows, per_tuple
        )
        best_plan: PlanNode = seq
        best_cost = seq.est_total_cost
        recording = self._recorder is not None
        path_nodes: List[recost.CostNode] = []
        if recording:
            path_nodes.append(recost.Call(costf.seq_scan_cost, (
                stats.n_pages, stats.n_rows, self._pred_node(filter_expr),
            )))

        for index_info in info.indexes.values():
            indexed = self._index_path(node, info, index_info, stats,
                                       local_conjuncts, layout, out_rows)
            if indexed is None:
                continue
            candidate, candidate_node = indexed
            if recording:
                path_nodes.append(candidate_node)
            if candidate.est_total_cost < best_cost:
                best_plan = candidate
                best_cost = candidate.est_total_cost

        return _SubPlan(plan=best_plan, aliases=frozenset([node.alias]),
                        rows=out_rows, cost=best_cost,
                        node=recost.Min(tuple(path_nodes)) if recording else None)

    def _index_path(
        self, node: LogicalRelation, info: TableInfo,
        index_info: IndexInfo, stats: TableStats,
        local_conjuncts: List[Expr], layout: RowLayout, out_rows: float,
    ) -> Optional[Tuple[IndexScan, Optional[recost.CostNode]]]:
        column = index_info.column_name
        low = high = None
        low_inc = high_inc = True
        bound: List[Expr] = []
        residual: List[Expr] = []
        for conjunct in local_conjuncts:
            bounds = _extract_bound(conjunct, node.alias, column)
            if bounds is None:
                residual.append(conjunct)
                continue
            op, value = bounds
            bound.append(conjunct)
            if op == "=":
                low = high = value
                low_inc = high_inc = True
            elif op in (">", ">="):
                if low is None or value > low:  # tightest bound wins
                    low, low_inc = value, op == ">="
            elif op in ("<", "<="):
                if high is None or value < high:
                    high, high_inc = value, op == "<="
        if not bound:
            return None

        params = self._params
        bound_sel = self._estimator.estimate_conjuncts(bound)
        tuples_fetched = max(1.0, stats.n_rows * bound_sel)
        tree = index_info.index
        leaf_pages = max(1.0, tuples_fetched / max(1.0, tree.fanout * 0.9))
        residual_expr = and_together(residual)
        per_tuple = costf.predicate_cpu_cost(residual_expr, params, self._estimator)

        scan = IndexScan(
            table_name=node.table, alias=node.alias, index_name=index_info.name,
            low=low, high=high, low_inclusive=low_inc, high_inclusive=high_inc,
            filter_expr=residual_expr,
        )
        scan.layout = layout
        scan.est_rows = out_rows
        scan.est_total_cost = costf.index_scan_cost(
            params, tree.height, leaf_pages, tuples_fetched,
            stats.n_pages, per_tuple,
        )
        scan_node = None
        if self._recorder is not None:
            scan_node = recost.Call(costf.index_scan_cost, (
                tree.height, leaf_pages, tuples_fetched,
                stats.n_pages, self._pred_node(residual_expr),
            ))
        return scan, scan_node

    def _pred_node(self, expr: Optional[Expr]) -> Optional[recost.Pred]:
        """The :class:`~repro.optimizer.recost.Pred` replaying *expr*'s cost.

        Mirrors :func:`repro.optimizer.cost.predicate_cpu_cost`: the
        operator count and expected LIKE bytes are ``P``-independent,
        so freezing them reproduces the cost bit-identically under any
        parameter set.
        """
        if self._recorder is None:
            return None
        if expr is None:
            return recost.Pred(0, 0.0)
        return recost.Pred(
            expr.op_count(), costf.expr_like_bytes(expr, self._estimator)
        )

    # -- join ordering --------------------------------------------------------------------

    def _dp_join(self, subplans: List[_SubPlan],
                 join_conjuncts: List[Expr]) -> _SubPlan:
        n = len(subplans)
        best: Dict[int, _SubPlan] = {}
        for i, sp in enumerate(subplans):
            best[1 << i] = sp

        alias_of_bit = [sp.aliases for sp in subplans]

        def aliases_of(mask: int) -> FrozenSet[str]:
            out: FrozenSet[str] = frozenset()
            for i in range(n):
                if mask & (1 << i):
                    out |= alias_of_bit[i]
            return out

        full = (1 << n) - 1
        for mask in range(1, full + 1):
            if mask in best or bin(mask).count("1") < 2:
                continue
            mask_aliases = aliases_of(mask)
            candidate: Optional[_SubPlan] = None
            mask_nodes: List[recost.CostNode] = []
            sub = (mask - 1) & mask
            while sub:
                other = mask ^ sub
                if sub < other:  # consider each unordered split once
                    left_mask, right_mask = sub, other
                    left_best = best.get(left_mask)
                    right_best = best.get(right_mask)
                    if left_best is not None and right_best is not None:
                        cross = _cross_conjuncts(
                            join_conjuncts, left_best.aliases, right_best.aliases
                        )
                        for joined in self._join_candidates(
                            left_best, right_best, cross
                        ):
                            if joined.node is not None:
                                mask_nodes.append(joined.node)
                            if candidate is None or joined.cost < candidate.cost:
                                candidate = joined
                sub = (sub - 1) & mask
            if candidate is not None:
                if self._recorder is not None:
                    # The replay must re-decide this subset's winner under
                    # the new P, over every candidate in comparison order
                    # — not just replay the winner chosen under this P.
                    candidate.node = recost.Min(tuple(mask_nodes))
                best[mask] = candidate
        result = best.get(full)
        if result is None:
            raise PlanningError("join ordering failed to cover all relations")
        return result

    def _greedy_join(self, subplans: List[_SubPlan],
                     join_conjuncts: List[Expr]) -> _SubPlan:
        if self._recorder is not None:
            # Greedy ordering prunes by cost, so the *structure* of the
            # search depends on P — no replayable program exists.
            self._recorder.mark_uncompilable(
                f"greedy join ordering over {len(subplans)} relations"
            )
        work = list(subplans)
        while len(work) > 1:
            best_pair: Optional[Tuple[int, int, _SubPlan]] = None
            for i in range(len(work)):
                for j in range(i + 1, len(work)):
                    cross = _cross_conjuncts(
                        join_conjuncts, work[i].aliases, work[j].aliases
                    )
                    for joined in self._join_candidates(work[i], work[j], cross):
                        if best_pair is None or joined.cost < best_pair[2].cost:
                            best_pair = (i, j, joined)
            assert best_pair is not None
            i, j, joined = best_pair
            work = [sp for k, sp in enumerate(work) if k not in (i, j)]
            work.append(joined)
        return work[0]

    def _join_candidates(self, left: _SubPlan, right: _SubPlan,
                         cross: List[Expr]) -> List[_SubPlan]:
        """All costed join operators for one (left, right) pair, both orders."""
        out: List[_SubPlan] = []
        for outer, inner in ((left, right), (right, left)):
            out.append(self._make_join(outer, inner, JoinType.INNER, cross))
        return out

    def _build_join(self, outer: _SubPlan, inner: _SubPlan,
                    join_type: JoinType, cond: List[Expr]) -> _SubPlan:
        return self._make_join(outer, inner, join_type, cond)

    def _make_join(self, outer: _SubPlan, inner: _SubPlan,
                   join_type: JoinType, cond: List[Expr]) -> _SubPlan:
        params = self._params
        recording = self._recorder is not None
        aliases = outer.aliases | inner.aliases
        equi, residual = _split_equi(cond, outer.aliases, inner.aliases)

        cond_sel = self._estimator.estimate_conjuncts(cond)
        inner_join_rows = max(1.0, outer.rows * inner.rows * cond_sel)
        if join_type is JoinType.INNER:
            result_rows = inner_join_rows
        elif join_type is JoinType.LEFT:
            result_rows = max(outer.rows, inner_join_rows)
        elif join_type is JoinType.SEMI:
            match_prob = min(1.0, inner.rows * cond_sel)
            result_rows = max(1.0, outer.rows * match_prob)
        else:  # ANTI
            match_prob = min(1.0, inner.rows * cond_sel)
            result_rows = max(1.0, outer.rows * (1.0 - match_prob))

        candidates: List[PlanNode] = []
        cand_nodes: List[recost.CostNode] = []
        if equi:
            outer_keys = [e[0] for e in equi]
            inner_keys = [e[1] for e in equi]
            residual_expr = and_together(residual)
            hash_join = HashJoin(
                outer=outer.plan, inner=inner.plan,
                outer_keys=outer_keys, inner_keys=inner_keys,
                join_type=join_type, residual=residual_expr,
            )
            residual_cost = costf.predicate_cpu_cost(
                residual_expr, params, self._estimator
            )
            hash_join.est_rows = result_rows
            hash_join.est_total_cost = costf.hash_join_cost(
                params, outer.cost, inner.cost, outer.rows, inner.rows,
                inner_join_rows, residual_cost,
            )
            candidates.append(hash_join)
            if recording:
                cand_nodes.append(recost.Call(costf.hash_join_cost, (
                    outer.node, inner.node, outer.rows, inner.rows,
                    inner_join_rows, self._pred_node(residual_expr),
                )))

            if len(equi) == 1 and join_type is JoinType.INNER and not residual:
                outer_sorted = self._sorted(outer, equi[0][0])
                inner_sorted = self._sorted(inner, equi[0][1])
                merge = MergeJoin(
                    outer=outer_sorted.plan, inner=inner_sorted.plan,
                    outer_key=equi[0][0], inner_key=equi[0][1],
                )
                merge.est_rows = result_rows
                merge.est_total_cost = costf.merge_join_cost(
                    params, outer_sorted.cost, inner_sorted.cost,
                    outer.rows, inner.rows, inner_join_rows,
                )
                candidates.append(merge)
                if recording:
                    cand_nodes.append(recost.Call(costf.merge_join_cost, (
                        outer_sorted.node, inner_sorted.node,
                        outer.rows, inner.rows, inner_join_rows,
                    )))

        predicate = and_together(cond)
        pred_cost = costf.predicate_cpu_cost(predicate, params, self._estimator)
        nested = NestedLoopJoin(
            outer=outer.plan, inner=inner.plan,
            join_type=join_type, predicate=predicate,
        )
        nested.est_rows = result_rows
        nested.est_total_cost = costf.nested_loop_cost(
            params, outer.cost, inner.cost, outer.rows, inner.rows,
            inner_join_rows, pred_cost,
        )
        candidates.append(nested)
        if recording:
            cand_nodes.append(recost.Call(costf.nested_loop_cost, (
                outer.node, inner.node, outer.rows, inner.rows,
                inner_join_rows, self._pred_node(predicate),
            )))

        best = min(candidates, key=lambda plan: plan.est_total_cost)
        return _SubPlan(plan=best, aliases=aliases, rows=result_rows,
                        cost=best.est_total_cost,
                        node=recost.Min(tuple(cand_nodes)) if recording else None)

    def _sorted(self, sub: _SubPlan, key: Expr) -> _SubPlan:
        sort = Sort(input=sub.plan, keys=[SortKey(key, True)])
        width = 24.0 + 8.0 * len(sub.plan.layout)
        sort.est_rows = sub.rows
        sort.est_total_cost = costf.sort_cost(
            self._params, sub.cost, sub.rows, width, 1
        )
        node = None
        if self._recorder is not None:
            node = recost.Call(costf.sort_cost, (sub.node, sub.rows, width, 1))
        return _SubPlan(plan=sort, aliases=sub.aliases, rows=sub.rows,
                        cost=sort.est_total_cost, node=node)

    # -- leftover predicates -------------------------------------------------------------

    def _apply_leftover(
        self, sub: _SubPlan, pool: "_ConjunctPool", aliases: FrozenSet[str],
    ) -> Tuple[PlanNode, Optional[recost.CostNode]]:
        applicable = pool.take_covered(aliases)
        plan = sub.plan
        cost_node = sub.node
        if applicable:
            predicate = and_together(applicable)
            sel = self._estimator.estimate_conjuncts(applicable)
            node = Filter(input=plan, predicate=predicate)
            node.est_rows = max(1.0, sub.rows * sel)
            node.est_total_cost = costf.filter_cost(
                self._params, sub.cost, sub.rows,
                costf.predicate_cpu_cost(predicate, self._params, self._estimator),
            )
            if self._recorder is not None:
                cost_node = recost.Call(costf.filter_cost, (
                    cost_node, sub.rows, self._pred_node(predicate),
                ))
            plan = node
        return plan, cost_node

    def _apply_leftover_sub(self, sub: _SubPlan, pool: "_ConjunctPool") -> _SubPlan:
        applicable = pool.take_covered(sub.aliases)
        if not applicable:
            return sub
        predicate = and_together(applicable)
        sel = self._estimator.estimate_conjuncts(applicable)
        node = Filter(input=sub.plan, predicate=predicate)
        node.est_rows = max(1.0, sub.rows * sel)
        node.est_total_cost = costf.filter_cost(
            self._params, sub.cost, sub.rows,
            costf.predicate_cpu_cost(predicate, self._params, self._estimator),
        )
        cost_node = None
        if self._recorder is not None:
            cost_node = recost.Call(costf.filter_cost, (
                sub.node, sub.rows, self._pred_node(predicate),
            ))
        return _SubPlan(plan=node, aliases=sub.aliases, rows=node.est_rows,
                        cost=node.est_total_cost, node=cost_node)

    # -- upper plan -------------------------------------------------------------------------

    def _add_aggregate(
        self, plan: PlanNode, input_node: Optional[recost.CostNode],
    ) -> Tuple[PlanNode, Optional[recost.CostNode]]:
        query = self._query
        params = self._params
        n_groups = self._estimate_groups(query.group_keys, plan.est_rows)
        arg_cost = sum(
            costf.predicate_cpu_cost(spec.arg, params, self._estimator)
            for spec in query.aggregates if spec.arg is not None
        )
        node = Aggregate(
            input=plan, group_keys=list(query.group_keys),
            aggregates=list(query.aggregates), having=query.having,
            group_names=list(query.group_names),
        )
        rows = n_groups
        if query.having is not None:
            rows = max(1.0, rows * DEFAULT_HAVING_SELECTIVITY)
        node.est_rows = rows
        node.est_total_cost = costf.aggregate_cost(
            params, plan.est_total_cost, plan.est_rows, n_groups,
            len(query.aggregates), arg_cost,
        )
        cost_node = None
        if self._recorder is not None:
            arg_node = recost.PredSum(tuple(
                self._pred_node(spec.arg)
                for spec in query.aggregates if spec.arg is not None
            ))
            cost_node = recost.Call(costf.aggregate_cost, (
                input_node, plan.est_rows, n_groups,
                len(query.aggregates), arg_node,
            ))
        return node, cost_node

    def _estimate_groups(self, group_keys: Sequence[Expr], input_rows: float) -> float:
        if not group_keys:
            return 1.0
        total = 1.0
        for key in group_keys:
            if isinstance(key, ColumnRef):
                stats = self._estimator.column_stats(key)
                total *= stats.n_distinct if stats is not None else DEFAULT_GROUPS
            else:
                total *= DEFAULT_GROUPS
        return max(1.0, min(total, input_rows))

    def _add_project(
        self, plan: PlanNode, input_node: Optional[recost.CostNode],
    ) -> Tuple[PlanNode, Optional[recost.CostNode]]:
        query = self._query
        params = self._params
        expr_cost = sum(
            costf.predicate_cpu_cost(e, params, self._estimator)
            for e in query.select_exprs
        )
        node = Project(input=plan, exprs=list(query.select_exprs),
                       names=list(query.select_names))
        node.est_rows = plan.est_rows
        node.est_total_cost = costf.project_cost(
            params, plan.est_total_cost, plan.est_rows, expr_cost
        )
        cost_node = None
        if self._recorder is not None:
            expr_node = recost.PredSum(tuple(
                self._pred_node(e) for e in query.select_exprs
            ))
            cost_node = recost.Call(costf.project_cost, (
                input_node, plan.est_rows, expr_node,
            ))
        return node, cost_node

    def _add_distinct(
        self, plan: PlanNode, input_node: Optional[recost.CostNode],
    ) -> Tuple[PlanNode, Optional[recost.CostNode]]:
        names = [column for _alias, column in plan.layout.slots]
        keys: List[Expr] = [ColumnRef("_out", name) for name in names]
        agg = Aggregate(input=plan, group_keys=keys, aggregates=[],
                        group_names=list(names))
        agg.est_rows = max(1.0, plan.est_rows * 0.5)
        agg.est_total_cost = costf.aggregate_cost(
            self._params, plan.est_total_cost, plan.est_rows,
            agg.est_rows, 0, 0.0,
        )
        rename = Project(
            input=agg,
            exprs=[ColumnRef("_agg", name) for name in names],
            names=list(names),
        )
        rename.est_rows = agg.est_rows
        rename.est_total_cost = agg.est_total_cost
        cost_node = None
        if self._recorder is not None:
            # The rename Project is a cost passthrough of the Aggregate.
            cost_node = recost.Call(costf.aggregate_cost, (
                input_node, plan.est_rows, agg.est_rows, 0, 0.0,
            ))
        return rename, cost_node

    def _add_sort(
        self, plan: PlanNode, keys: List[SortKey],
        input_node: Optional[recost.CostNode],
    ) -> Tuple[PlanNode, Optional[recost.CostNode]]:
        node = Sort(input=plan, keys=list(keys))
        width = 24.0 + 8.0 * len(plan.layout)
        node.est_rows = plan.est_rows
        node.est_total_cost = costf.sort_cost(
            self._params, plan.est_total_cost, plan.est_rows, width, len(keys)
        )
        cost_node = None
        if self._recorder is not None:
            cost_node = recost.Call(costf.sort_cost, (
                input_node, plan.est_rows, width, len(keys),
            ))
        return node, cost_node


# -- helpers ------------------------------------------------------------------------


class _ConjunctPool:
    """Predicates waiting to be placed in the plan."""

    def __init__(self, initial: Sequence[Expr]):
        self._items: List[Expr] = list(initial)

    def extend(self, items: Sequence[Expr]) -> None:
        self._items.extend(items)

    def remaining(self) -> List[Expr]:
        return list(self._items)

    def take_single_alias(self, alias: str) -> List[Expr]:
        """Remove and return conjuncts that reference only *alias*."""
        taken, kept = [], []
        for item in self._items:
            refs = _expr_aliases(item)
            if refs == {alias}:
                taken.append(item)
            else:
                kept.append(item)
        self._items = kept
        return taken

    def take_multi_alias(self, region: FrozenSet[str]) -> List[Expr]:
        """Remove and return multi-relation conjuncts within *region*."""
        taken, kept = [], []
        for item in self._items:
            refs = _expr_aliases(item)
            if len(refs) >= 2 and refs <= region:
                taken.append(item)
            else:
                kept.append(item)
        self._items = kept
        return taken

    def take_covered(self, aliases: FrozenSet[str]) -> List[Expr]:
        """Remove and return conjuncts fully covered by *aliases*."""
        taken, kept = [], []
        for item in self._items:
            refs = _expr_aliases(item)
            if refs and refs <= aliases:
                taken.append(item)
            else:
                kept.append(item)
        self._items = kept
        return taken


def _expr_aliases(expr: Expr) -> set:
    return {alias for alias, _column in expr.columns()}


def _find_subplans(expr: Expr) -> List[SubplanExpr]:
    """All :class:`SubplanExpr` nodes under *expr*, in no particular order."""
    found: List[SubplanExpr] = []

    def visit(node: Expr) -> Expr:
        if isinstance(node, SubplanExpr):
            found.append(node)
        else:
            map_children(node, visit)
        return node

    visit(expr)
    return found


def _cross_conjuncts(pool: List[Expr], left: FrozenSet[str],
                     right: FrozenSet[str]) -> List[Expr]:
    """Conjuncts that reference both sides and nothing else."""
    out = []
    combined = left | right
    for item in pool:
        refs = _expr_aliases(item)
        if refs & left and refs & right and refs <= combined:
            out.append(item)
    return out


def _split_equi(cond: List[Expr], outer_aliases: FrozenSet[str],
                inner_aliases: FrozenSet[str]):
    """Split a condition into hashable equi-pairs and a residual list.

    Returns ``(equi, residual)`` where each equi entry is
    ``(outer_key_expr, inner_key_expr)``.
    """
    equi: List[Tuple[Expr, Expr]] = []
    residual: List[Expr] = []
    for item in cond:
        pair = _equi_pair(item, outer_aliases, inner_aliases)
        if pair is not None:
            equi.append(pair)
        else:
            residual.append(item)
    return equi, residual


def _equi_pair(expr: Expr, outer_aliases: FrozenSet[str],
               inner_aliases: FrozenSet[str]) -> Optional[Tuple[Expr, Expr]]:
    if not (isinstance(expr, BinaryOp) and expr.op == "="):
        return None
    left_refs = _expr_aliases(expr.left)
    right_refs = _expr_aliases(expr.right)
    if not left_refs or not right_refs:
        return None
    if left_refs <= outer_aliases and right_refs <= inner_aliases:
        return expr.left, expr.right
    if left_refs <= inner_aliases and right_refs <= outer_aliases:
        return expr.right, expr.left
    return None


def _extract_bound(expr: Expr, alias: str, column: str):
    """Match ``alias.column <op> literal`` (either orientation)."""
    if not isinstance(expr, BinaryOp):
        return None
    op = expr.op
    if op not in ("=", "<", "<=", ">", ">="):
        return None
    left, right = expr.left, expr.right
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        if left.alias == alias and left.column == column and right.value is not None:
            return op, right.value
    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        if right.alias == alias and right.column == column and left.value is not None:
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
            return flipped, left.value
    return None
