"""Cost-based query optimizer with a virtualization-aware what-if mode.

The optimizer chooses plans and estimates their costs from a set of
environment parameters ``P`` (:class:`OptimizerParameters`) — the same
knobs PostgreSQL exposes (``cpu_tuple_cost``, ``cpu_operator_cost``,
``random_page_cost``, ...). The paper's central idea is that ``P``
depends on the virtual machine's resource allocation ``R`` and can be
calibrated per allocation; :class:`WhatIfOptimizer` re-optimizes and
re-costs workloads under arbitrary ``P`` without executing anything.
"""

from repro.optimizer.params import OptimizerParameters
from repro.optimizer.planner import Planner
from repro.optimizer.selectivity import SelectivityEstimator
from repro.optimizer.whatif import WhatIfOptimizer

__all__ = [
    "OptimizerParameters",
    "Planner",
    "SelectivityEstimator",
    "WhatIfOptimizer",
]
