"""Drift-aware online recalibration: detect stale cost models, repair
them under a calibration budget, and re-converge the design.

The paper calibrates ``P(R)`` offline and trusts it forever; this
package closes the loop for an always-on deployment.
:class:`ObservationLog` records observed execution times next to the
model's predictions; :class:`DriftMonitor` runs a two-sided
Page–Hinkley test on the log residuals per surrogate lattice region;
:class:`RecalibrationPlanner` ranks drifted regions by drift signal ×
per-region CV uncertainty (the acquisition criterion shared with the
surrogate's polish phase) and spends a capped request budget on
targeted knot refits; :class:`OnlineSupervisor` drives the whole
observe-detect-repair-redesign loop crash-recoverably through a
:class:`~repro.recovery.journal.RunJournal`, against a
:class:`DegradingWorld` whose host CPU the fault plan quietly slows
down. See ``docs/drift.md``.
"""

from repro.drift.loop import (
    DEFAULT_DRIFT_THRESHOLD,
    DEFAULT_EPOCHS,
    DEFAULT_RECAL_BUDGET,
    OnlineRun,
    OnlineSupervisor,
)
from repro.drift.monitor import (
    DEFAULT_DELTA,
    DEFAULT_MIN_OBSERVATIONS,
    DriftEvent,
    DriftMonitor,
    PageHinkley,
)
from repro.drift.observe import Observation, ObservationLog
from repro.drift.planner import (
    DEFAULT_UNCERTAINTY_FLOOR,
    RecalibrationPlan,
    RecalibrationPlanner,
)
from repro.drift.world import DegradingWorld

__all__ = [
    "DEFAULT_DELTA",
    "DEFAULT_DRIFT_THRESHOLD",
    "DEFAULT_EPOCHS",
    "DEFAULT_MIN_OBSERVATIONS",
    "DEFAULT_RECAL_BUDGET",
    "DEFAULT_UNCERTAINTY_FLOOR",
    "DegradingWorld",
    "DriftEvent",
    "DriftMonitor",
    "Observation",
    "ObservationLog",
    "OnlineRun",
    "OnlineSupervisor",
    "PageHinkley",
    "RecalibrationPlan",
    "RecalibrationPlanner",
]
