"""The closed loop: observe, detect drift, recalibrate, redesign.

:class:`OnlineSupervisor` is the drift-aware counterpart of
:class:`~repro.recovery.supervisor.RunSupervisor`: one complete
*online* run — an initial continuous-mode design, then ``epochs``
rounds of deploy-observe-detect-repair against a
:class:`~repro.drift.world.DegradingWorld` — checkpointed unit by unit
into a :class:`~repro.recovery.journal.RunJournal`:

* a ``calibration`` record per knot of the initial fit (appended by
  the :class:`~repro.calibration.cache.CalibrationCache`, exactly as
  in a supervised offline run);
* an ``observation`` record per executed workload measurement — the
  expensive, engine-backed unit of the online phase;
* a ``drift`` record per detected drift event (cheap, but a unit
  boundary: a kill between detection and repair resumes into the
  repair);
* a ``recalibration`` record per knot a drift repair re-measured on
  the *degraded* host;
* a ``redesign`` record per warm-started re-design;
* a final ``result`` record.

Everything between journaled units is deterministic arithmetic — the
world's capacity trajectory is a pure function of the fault plan and is
re-advanced from epoch zero on resume, predictions and detection state
are pure functions of the journaled observations, and the warm-started
search is deterministic — so a run killed at *any* unit boundary and
resumed produces a bit-identical journal, design, and budget spend
(asserted in ``tests/drift/``). The recalibration budget counts
*requests* with replays included (the
:meth:`~repro.surrogate.SurrogateBuilder.refit` convention), which is
what makes the budget's stop decision resume-stable.

Fault handling follows the PR 2 contract: measurements during both the
initial fit and drift repairs run under the plan's per-unit fault
injector with the resilient retry policy; a repair whose calibration
fails permanently keeps the stale knot and counts a fallback instead
of aborting the loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.calibration.cache import CalibrationCache
from repro.calibration.runner import CalibrationRunner
from repro.core.cost_model import MeasuredCostModel, OptimizerCostModel
from repro.core.designer import Design
from repro.core.problem import VirtualizationDesignProblem
from repro.drift.monitor import DriftEvent, DriftMonitor
from repro.drift.observe import Observation, ObservationLog
from repro.drift.planner import RecalibrationPlanner
from repro.drift.world import DegradingWorld
from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.obs import metrics
from repro.parallel import make_engine
from repro.recovery.journal import (
    BudgetedJournal,
    RunJournal,
    UnitBudgetExceeded,
)
from repro.surrogate import SurrogateBuilder, design_continuous, warm_start
from repro.surrogate.surface import Knot, knot_key
from repro.util.errors import DriftError, RecoveryError
from repro.virt.resources import ResourceVector

#: Default epochs for an online run.
DEFAULT_EPOCHS = 8

#: Default Page–Hinkley threshold (log-residual units; ~0.15 alarms
#: once observed times run ≳15% away from predictions for a few epochs).
DEFAULT_DRIFT_THRESHOLD = 0.15

#: Default calibration-request budget for drift repairs.
DEFAULT_RECAL_BUDGET = 12


@dataclass
class OnlineRun:
    """What one :meth:`OnlineSupervisor.run` invocation produced."""

    #: The final incumbent design, or ``None`` when killed during the
    #: initial fit.
    design: Optional[Design]
    #: True when the run finished (a ``result`` record is journaled).
    completed: bool = False
    #: Epochs fully processed by this invocation.
    epochs: int = 0
    #: Every drift event detected, in detection order.
    events: List[DriftEvent] = field(default_factory=list)
    #: Knots overwritten with fresh parameters by drift repairs.
    recalibrations: int = 0
    #: Warm-started re-designs executed.
    redesigns: int = 0
    #: Recalibration requests spent (replays included).
    budget_spent: int = 0
    #: Requests left in the recalibration budget (None = unbounded).
    budget_remaining: Optional[int] = None
    #: Units replayed from the journal (all kinds).
    replayed_units: int = 0
    #: Units freshly committed by this invocation.
    new_units: int = 0
    #: Per-epoch summaries: epoch, capacity, observed/predicted
    #: seconds, drift events, refits.
    trajectory: List[Dict[str, Any]] = field(default_factory=list)
    #: The full observation history.
    observations: Optional[ObservationLog] = None
    #: The surface as last repaired (None when killed during the fit).
    surface: Any = None


class OnlineSupervisor:
    """Drives a crash-recoverable closed-loop online design run."""

    def __init__(self, problem: VirtualizationDesignProblem,
                 journal_path, plan: Optional[FaultPlan] = None, *,
                 epochs: int = DEFAULT_EPOCHS,
                 drift_threshold: float = DEFAULT_DRIFT_THRESHOLD,
                 recal_budget: Optional[int] = DEFAULT_RECAL_BUDGET,
                 algorithm: str = "greedy", grid: int = 4,
                 fine_factor: int = 8, surrogate_tol: float = 0.05,
                 surrogate_budget: Optional[int] = 24,
                 retry_policy: Optional[RetryPolicy] = None,
                 max_evaluations: Optional[int] = None,
                 max_units: Optional[int] = None,
                 extra_meta: Optional[Dict[str, Any]] = None,
                 workbench=None,
                 workers: Optional[int] = None, pool: str = "thread"):
        if epochs < 1:
            raise DriftError("an online run needs at least one epoch")
        if recal_budget is not None and recal_budget < 1:
            raise DriftError("recal_budget must be at least 1 (or None)")
        self._problem = problem
        self._journal_path = journal_path
        self._plan = plan or FaultPlan(name="none")
        self._epochs = epochs
        self._drift_threshold = drift_threshold
        self._recal_budget = recal_budget
        self._algorithm = algorithm
        self._grid = grid
        self._fine_factor = fine_factor
        self._surrogate_tol = surrogate_tol
        self._surrogate_budget = surrogate_budget
        self._retry_policy = retry_policy or RetryPolicy.resilient()
        self._max_evaluations = max_evaluations
        self._max_units = max_units
        self._extra_meta = dict(extra_meta or {})
        # Like RunSupervisor: the workbench and the engine shape are
        # not part of the journal identity.
        self._workbench = workbench
        self._workers = workers
        self._pool = pool
        #: Populated by :meth:`run`, for inspection.
        self.cache: Optional[CalibrationCache] = None

    # -- run identity ------------------------------------------------------

    def _meta(self) -> Dict[str, Any]:
        plan = self._plan
        meta = {
            "run_kind": "drift",
            "plan": {
                "name": plan.name, "seed": plan.seed,
                "transient_rate": plan.transient_rate,
                "outlier_rate": plan.outlier_rate,
                "hang_rate": plan.hang_rate,
                "boot_failure_rate": plan.boot_failure_rate,
                "vm_crash_rate": plan.vm_crash_rate,
                "host_degrade_rate": plan.host_degrade_rate,
                "host_degrade_factor": plan.host_degrade_factor,
                "migration_failure_rate": plan.migration_failure_rate,
            },
            "epochs": self._epochs,
            "drift_threshold": self._drift_threshold,
            "recal_budget": self._recal_budget,
            "algorithm": self._algorithm,
            "grid": self._grid,
            "machine": self._problem.machine.name,
            "workloads": self._problem.workload_names(),
            "controlled": [str(kind) for kind
                           in self._problem.controlled_resources],
            "workers": self._workers,
            "fine_factor": self._fine_factor,
            "surrogate_tol": self._surrogate_tol,
            "surrogate_budget": self._surrogate_budget,
        }
        meta.update(self._extra_meta)
        return meta

    _IDENTITY_KEYS = ("run_kind", "plan", "epochs", "drift_threshold",
                      "recal_budget", "algorithm", "grid", "machine",
                      "workloads", "controlled", "fine_factor",
                      "surrogate_tol", "surrogate_budget")

    def _check_meta(self, recorded: Dict[str, Any]) -> None:
        expected = self._meta()
        mismatched = sorted(
            key for key in self._IDENTITY_KEYS
            if key in recorded and recorded[key] != expected[key]
        )
        if mismatched:
            raise RecoveryError(
                f"journal {self._journal_path} was written by a different "
                f"run: mismatched {', '.join(mismatched)} (resume must use "
                f"the same problem, plan, thresholds, and budgets)")

    # -- the run -----------------------------------------------------------

    def run(self, resume: bool = False) -> OnlineRun:
        """Execute (or resume) the online loop; see the module docstring."""
        if resume:
            journal = RunJournal.open(self._journal_path)
            self._check_meta(journal.meta)
        else:
            journal = RunJournal.create(self._journal_path, self._meta())

        budgeted = BudgetedJournal(journal, self._max_units)
        injector = (None if self._plan.is_benign
                    else FaultInjector(self._plan, per_unit=True))
        engine = make_engine(self._workers, self._pool)
        runner = CalibrationRunner(
            self._problem.machine, workbench=self._workbench,
            injector=injector, retry_policy=self._retry_policy,
            engine=engine)
        cache = CalibrationCache(runner, journal=budgeted)
        self.cache = cache

        replay = self._replay(journal, cache)
        prior_result = self._prior_result(journal)
        run = OnlineRun(design=None, replayed_units=replay["units"])

        try:
            outcome = design_continuous(
                self._problem, cache, algorithm=self._algorithm,
                grid=self._grid, fine_factor=self._fine_factor,
                tolerance=self._surrogate_tol,
                max_calibrations=self._surrogate_budget,
                max_evaluations=self._max_evaluations, engine=engine)
            self._online_phase(outcome, run, budgeted, replay,
                               injector, engine)
        except UnitBudgetExceeded:
            run.new_units = budgeted.new_units
            return run
        finally:
            if engine is not None:
                engine.close()

        if prior_result is None:
            journal.append("result", self._result_record(run))
        run.completed = True
        run.new_units = budgeted.new_units
        return run

    # -- replay ------------------------------------------------------------

    @staticmethod
    def _replay(journal: RunJournal, cache: CalibrationCache) -> Dict:
        """Load journaled units into replay maps (and the cache)."""
        from repro.optimizer.params import OptimizerParameters

        replay: Dict[str, Any] = {
            "observations": {},    # (epoch, workload) -> observed seconds
            "recalibrations": {},  # (epoch, knot) -> OptimizerParameters
            "drift": set(),        # (epoch, region)
            "redesigns": set(),    # epoch
            "units": 0,
        }
        for record in journal.records:
            data = record.data
            if record.kind == "calibration":
                cache.add_point(
                    tuple(float(v) for v in data["allocation"]),
                    OptimizerParameters.from_dict(data["parameters"]))
            elif record.kind == "observation":
                key = (int(data["epoch"]), str(data["workload"]))
                replay["observations"][key] = float(data["observed"])
            elif record.kind == "recalibration":
                key = (int(data["epoch"]), knot_key(data["allocation"]))
                replay["recalibrations"][key] = (
                    OptimizerParameters.from_dict(data["parameters"]))
            elif record.kind == "drift":
                replay["drift"].add(
                    (int(data["epoch"]), tuple(data["region"])))
            elif record.kind == "redesign":
                replay["redesigns"].add(int(data["epoch"]))
            elif record.kind == "result":
                continue
            else:  # pragma: no cover - future-proofing
                continue
            replay["units"] += 1
        return replay

    @staticmethod
    def _prior_result(journal: RunJournal) -> Optional[Dict[str, Any]]:
        results = journal.records_of("result")
        return results[-1].data if results else None

    # -- the online phase --------------------------------------------------

    def _online_phase(self, outcome, run: OnlineRun,
                      budgeted: BudgetedJournal, replay: Dict,
                      injector: Optional[FaultInjector], engine) -> None:
        surface = outcome.surface
        incumbent = outcome.design
        world = DegradingWorld(self._problem.machine, self._plan)
        monitor = DriftMonitor(self._drift_threshold)
        log = ObservationLog()
        builder = SurrogateBuilder(self.cache,
                                   tolerance=self._surrogate_tol,
                                   max_calibrations=self._recal_budget)
        planner = RecalibrationPlanner(builder)
        run.observations = log
        run.budget_remaining = planner.remaining
        self._set_budget_gauge(planner)

        for epoch in range(self._epochs):
            capacity = world.advance()
            machine_now = world.machine
            epoch_events = self._observe_epoch(
                epoch, capacity, machine_now, surface, incumbent,
                monitor, log, budgeted, replay, run)
            refits = 0
            if epoch_events:
                surface, refits = self._repair(
                    epoch, machine_now, surface, epoch_events, monitor,
                    planner, budgeted, replay, injector, engine)
                run.recalibrations += refits
                incumbent = self._redesign(epoch, surface, incumbent,
                                           budgeted, replay, run)
                # The model was re-anchored: detection state measured
                # against the pre-repair fit must not keep alarming.
                monitor.reset()
            run.trajectory.append({
                "epoch": epoch,
                "capacity": capacity,
                "observed_seconds": log.epoch_total(epoch),
                "drift_events": len(epoch_events),
                "refits": refits,
            })
            run.epochs = epoch + 1
            metrics.counter("drift.epochs").inc()

        run.design = incumbent
        run.surface = surface
        run.budget_spent = planner.spent
        run.budget_remaining = planner.remaining

    def _observe_epoch(self, epoch: int, capacity: float, machine_now,
                       surface, incumbent: Design, monitor: DriftMonitor,
                       log: ObservationLog, budgeted: BudgetedJournal,
                       replay: Dict, run: OnlineRun) -> List[DriftEvent]:
        """Execute every workload once; feed residuals to the monitor.

        Fresh measurements journal an ``observation`` unit; replayed
        epochs take the observed time from the journal without
        re-executing. Predictions are recomputed either way — they are
        pure surrogate arithmetic over the current (deterministic)
        surface, so the resumed residual stream is bit-identical.
        """
        model = OptimizerCostModel(surface)
        measured = MeasuredCostModel(machine_now, calibration=surface)
        events: List[DriftEvent] = []
        for name in sorted(self._problem.workload_names()):
            spec = self._problem.spec(name)
            allocation = incumbent.allocation.vector_for(name)
            predicted = model.cost(spec, allocation)
            key = (epoch, name)
            if key in replay["observations"]:
                observed = replay["observations"][key]
            else:
                observed = measured.cost(spec, allocation)
                budgeted.append("observation", {
                    "epoch": epoch,
                    "workload": name,
                    "allocation": list(allocation.as_tuple()),
                    "predicted": predicted,
                    "observed": observed,
                    "capacity": capacity,
                })
            observation = Observation(
                epoch=epoch, workload=name,
                allocation=knot_key(allocation.as_tuple()),
                predicted=predicted, observed=observed)
            log.record(observation)
            region = surface.region_of(allocation)
            event = monitor.observe(observation, region)
            if event is not None:
                events.append(event)
                run.events.append(event)
                drift_key = (epoch, tuple(event.region))
                if drift_key not in replay["drift"]:
                    budgeted.append("drift", {
                        "epoch": event.epoch,
                        "region": list(event.region),
                        "statistic": event.statistic,
                        "mean_residual": event.mean_residual,
                        "observations": event.observations,
                    })
                    replay["drift"].add(drift_key)
        return events

    def _repair(self, epoch: int, machine_now, surface,
                events: List[DriftEvent], monitor: DriftMonitor,
                planner: RecalibrationPlanner, budgeted: BudgetedJournal,
                replay: Dict, injector: Optional[FaultInjector],
                engine) -> Tuple[Any, int]:
        """Targeted recalibration of the drifted regions, on budget.

        Fresh knots re-measure on the *degraded* host through a runner
        that carries the per-unit fault injector and the resilient
        retry policy — drift repairs face the same hostile environment
        as the original calibration (PR 2 contract). Each fresh knot
        journals a ``recalibration`` unit; replayed knots answer from
        the journal but still spend budget, keeping the stop decision
        resume-stable.
        """
        plan = planner.plan(surface, events, monitor.signals())
        if plan.is_empty:
            return surface, 0
        recal_runner = CalibrationRunner(
            machine_now, workbench=self._workbench, injector=injector,
            retry_policy=self._retry_policy, engine=engine)

        def calibrate(knot: Knot):
            key = (epoch, knot)
            params = replay["recalibrations"].get(key)
            if params is not None:
                return params
            params = recal_runner.parameters_for(
                ResourceVector.of(cpu=knot[0], memory=knot[1], io=knot[2]))
            budgeted.append("recalibration", {
                "epoch": epoch,
                "allocation": list(knot),
                "parameters": params.as_dict(),
            })
            return params

        report = planner.execute(surface, plan, calibrate)
        if report.refits:
            attempted = set(plan.knots[:report.requests])
            touched = sum(
                1 for region in plan.regions
                if any(knot in attempted
                       for knot in surface.region_corners(region)))
            metrics.counter("drift.recalibrations").inc(report.refits)
            metrics.counter("drift.regions_refit").inc(touched)
        self._set_budget_gauge(planner)
        return report.surface, report.refits

    def _redesign(self, epoch: int, surface, incumbent: Design,
                  budgeted: BudgetedJournal, replay: Dict,
                  run: OnlineRun) -> Design:
        """Warm-started re-design from the incumbent allocation.

        The search is pure surrogate arithmetic and deterministic, so
        (like continuous-mode searches in the offline supervisor) it
        re-runs on resume; only the outcome is journaled, once per
        epoch, as an audit-trail unit.
        """
        design = warm_start(
            self._problem, surface, incumbent.allocation,
            grid=self._grid, fine_factor=self._fine_factor,
            algorithm_label=f"warm-{self._algorithm}")
        if epoch not in replay["redesigns"]:
            budgeted.append("redesign", {
                "epoch": epoch,
                "allocation": {
                    name: list(design.allocation.vector_for(name).as_tuple())
                    for name in design.allocation.workload_names()
                },
                "predicted_total_cost": design.predicted_total_cost,
            })
            replay["redesigns"].add(epoch)
        run.redesigns += 1
        metrics.counter("drift.redesigns").inc()
        return design

    @staticmethod
    def _set_budget_gauge(planner: RecalibrationPlanner) -> None:
        remaining = planner.remaining
        if remaining is not None:
            metrics.gauge("drift.budget_remaining").set(remaining)

    def _result_record(self, run: OnlineRun) -> Dict[str, Any]:
        design = run.design
        record: Dict[str, Any] = {
            "epochs": run.epochs,
            "drift_events": len(run.events),
            "redesigns": run.redesigns,
            "budget_spent": run.budget_spent,
            "budget_remaining": run.budget_remaining,
        }
        if design is not None:
            record["allocation"] = {
                name: list(design.allocation.vector_for(name).as_tuple())
                for name in design.allocation.workload_names()
            }
            record["predicted_total_cost"] = design.predicted_total_cost
        return record
