"""Observed-vs-predicted execution times, the drift loop's raw signal.

The paper calibrates ``P(R)`` offline and trusts it forever; an
always-on deployment cannot. Every epoch of the online loop the engine
*executes* each workload under its deployed allocation and records the
observed total next to what the cost model predicted. The per-record
**residual** is the log ratio ``ln(observed / predicted)``: zero when
the model is exact, stable under workload-scale changes (a model that
is uniformly 20% slow gives the same residual on a 1-second and a
100-second workload), and symmetric — over- and under-prediction of
the same factor are equally far from zero. The
:class:`~repro.drift.monitor.DriftMonitor` runs its sequential test on
these residuals, grouped by the surrogate lattice region the
allocation falls in (see ``docs/drift.md``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.util.errors import DriftError

#: Guard against degenerate ratios: predictions and observations are
#: simulated seconds and must be positive for the log residual to exist.
_MIN_SECONDS = 1e-12


@dataclass(frozen=True)
class Observation:
    """One executed workload: what the model said vs what happened."""

    epoch: int
    workload: str
    #: The deployed allocation, as canonical (cpu, memory, io) shares.
    allocation: Tuple[float, float, float]
    predicted: float
    observed: float

    def __post_init__(self):
        if self.predicted <= _MIN_SECONDS or self.observed <= _MIN_SECONDS:
            raise DriftError(
                f"observation for {self.workload!r} at epoch {self.epoch} "
                f"needs positive times (predicted={self.predicted}, "
                f"observed={self.observed})")

    @property
    def residual(self) -> float:
        """``ln(observed / predicted)`` — zero when the model is exact."""
        return math.log(self.observed / self.predicted)


class ObservationLog:
    """An append-only record of observations, queryable per workload.

    The log itself is deliberately dumb — ordering and grouping only.
    Detection lives in :class:`~repro.drift.monitor.DriftMonitor`,
    which consumes observations one at a time; the log exists so run
    summaries, sweeps, and tests can revisit the full history.
    """

    def __init__(self):
        self._observations: List[Observation] = []
        self._by_workload: Dict[str, List[Observation]] = {}

    def record(self, observation: Observation) -> None:
        self._observations.append(observation)
        self._by_workload.setdefault(observation.workload, []).append(
            observation)

    def __len__(self) -> int:
        return len(self._observations)

    @property
    def observations(self) -> List[Observation]:
        return list(self._observations)

    def for_workload(self, name: str) -> List[Observation]:
        return list(self._by_workload.get(name, []))

    def residuals(self, workload: Optional[str] = None) -> List[float]:
        source = (self._by_workload.get(workload, [])
                  if workload is not None else self._observations)
        return [obs.residual for obs in source]

    def epoch_total(self, epoch: int) -> float:
        """Summed observed seconds at *epoch* (0.0 when unobserved)."""
        return sum(obs.observed for obs in self._observations
                   if obs.epoch == epoch)
