"""Sequential drift detection on prediction residuals.

A stale cost model does not announce itself: predictions just start
missing in one direction. The :class:`DriftMonitor` watches the stream
of log residuals (``docs/drift.md``,
:mod:`repro.drift.observe`) with a two-sided **Page–Hinkley** test per
surrogate lattice region — the classic sequential change-point
detector: cheap (O(1) state per region), parameter-light, and with a
tunable false-alarm/detection-delay trade-off via its threshold
``lambda``.

Per region the test maintains the running mean ``x̄_t`` of the
residuals and the cumulative deviations

    m_t = Σ_{i<=t} (x_i − x̄_i − δ)        (upward drift)
    M_t = min_{i<=t} m_i

and alarms when ``m_t − M_t >= λ`` (mirrored for downward drift). ``δ``
is a small drift-tolerance that absorbs noise; ``λ`` is the detection
threshold exposed on the CLI as ``--drift-threshold``. On alarm the
region's test resets — the subsequent recalibration re-anchors the
model, so history before the repair must not keep alarming.

Everything here is pure arithmetic over the observation sequence:
replaying the same observations produces the same events, which is what
lets a killed-and-resumed online loop re-derive its detection state
from the journal instead of persisting it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.drift.observe import Observation
from repro.obs import metrics
from repro.util.errors import DriftError

#: A surrogate lattice cell, as per-axis lower corner indices (see
#: :meth:`repro.surrogate.surface.ParameterSurface.region_of`).
Region = Tuple[int, int, int]

#: Default drift tolerance δ: residual wobble below this magnitude is
#: treated as measurement noise, not drift.
DEFAULT_DELTA = 0.005

#: Observations a region must accumulate before it may alarm — a single
#: outlier is the retry policy's problem, not the drift monitor's.
DEFAULT_MIN_OBSERVATIONS = 3


@dataclass(frozen=True)
class DriftEvent:
    """A detected change in a region's residual stream."""

    epoch: int
    region: Region
    #: The Page–Hinkley statistic at detection (>= threshold).
    statistic: float
    threshold: float
    #: Mean log residual at detection — positive means the model
    #: under-predicts (the world got slower than the fit believes).
    mean_residual: float
    #: Residuals consumed by this region's test since its last reset.
    observations: int


class PageHinkley:
    """One two-sided Page–Hinkley test over a residual stream."""

    def __init__(self, threshold: float, delta: float = DEFAULT_DELTA,
                 min_observations: int = DEFAULT_MIN_OBSERVATIONS):
        if threshold <= 0:
            raise DriftError("drift threshold must be positive")
        if delta < 0:
            raise DriftError("drift delta must be non-negative")
        if min_observations < 1:
            raise DriftError("min_observations must be at least 1")
        self._threshold = threshold
        self._delta = delta
        self._min_observations = min_observations
        self.reset()

    def reset(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._up = 0.0
        self._up_min = 0.0
        self._down = 0.0
        self._down_max = 0.0

    @property
    def observations(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def statistic(self) -> float:
        """Current detection statistic (max of both directions)."""
        return max(self._up - self._up_min, self._down_max - self._down)

    def update(self, value: float) -> bool:
        """Consume one residual; True when drift is detected."""
        self._n += 1
        self._mean += (value - self._mean) / self._n
        deviation = value - self._mean
        self._up += deviation - self._delta
        self._up_min = min(self._up_min, self._up)
        self._down += deviation + self._delta
        self._down_max = max(self._down_max, self._down)
        if self._n < self._min_observations:
            return False
        return self.statistic >= self._threshold


class DriftMonitor:
    """Per-region sequential tests over the observation stream."""

    def __init__(self, threshold: float, delta: float = DEFAULT_DELTA,
                 min_observations: int = DEFAULT_MIN_OBSERVATIONS):
        self._threshold = threshold
        self._delta = delta
        self._min_observations = min_observations
        self._tests: Dict[Region, PageHinkley] = {}
        # Constructor-validate eagerly (PageHinkley re-checks per test).
        PageHinkley(threshold, delta, min_observations)

    @property
    def threshold(self) -> float:
        return self._threshold

    def _test_for(self, region: Region) -> PageHinkley:
        if region not in self._tests:
            self._tests[region] = PageHinkley(
                self._threshold, self._delta, self._min_observations)
        return self._tests[region]

    def observe(self, observation: Observation,
                region: Region) -> Optional[DriftEvent]:
        """Feed one observation; returns an event on detection.

        Detection resets the region's test: the caller is expected to
        repair the model (recalibrate the region), so the residual
        stream restarts from a clean slate.
        """
        test = self._test_for(region)
        metrics.counter("drift.observations").inc()
        if not test.update(observation.residual):
            return None
        event = DriftEvent(
            epoch=observation.epoch,
            region=tuple(region),
            statistic=test.statistic,
            threshold=self._threshold,
            mean_residual=test.mean,
            observations=test.observations,
        )
        metrics.counter("drift.events").inc()
        test.reset()
        return event

    def signals(self) -> Dict[Region, float]:
        """Current (pre-alarm) statistic per observed region."""
        return {region: test.statistic
                for region, test in sorted(self._tests.items())}

    def reset(self) -> None:
        """Forget all test state (after a repair-and-redesign round:
        the model was re-anchored, and residuals measured against the
        old fit must not keep alarming against the new one)."""
        self._tests.clear()

    def regions(self) -> List[Region]:
        return sorted(self._tests)
