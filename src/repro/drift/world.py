"""The drifting environment: a host whose CPU quietly slows down.

The E9 experiment (``EXPERIMENTS.md``) needs a world that invalidates a
fitted surface *without telling anyone* — exactly what the ``turbulent``
fault plan's host-degrade channel models. Every epoch the world probes
the plan's dedicated ops stream
(:meth:`~repro.faults.FaultInjector.on_host_probe`); each degraded
probe multiplies the host's cumulative CPU capacity by the plan's
``host_degrade_factor``.

Degradation is **CPU-only** (``cpu_units_per_second``), not
:meth:`~repro.virt.machine.PhysicalMachine.scaled`: scaling CPU and
I/O together slows everything proportionally, which leaves the optimal
share split untouched and the stale model's *ranking* accidentally
correct. Thermal throttling and noisy-neighbour CPU steal slow the CPU
alone, shifting the CPU/I-O balance point — the re-designed optimum
genuinely moves, and a model calibrated on the healthy host genuinely
misranks. That is the drift the closed loop must detect and repair.

Determinism: the probe sequence is a pure function of the fault plan
(name + seed), and the world is advanced once per epoch including
replayed ones — a resumed online loop reconstructs the identical
capacity trajectory by re-advancing from epoch zero, so nothing about
the world needs journaling.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import List, Optional

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.virt.machine import PhysicalMachine

#: Capacity never drops below this fraction of the healthy host — a
#: fully dead CPU is an availability incident for the watchdog, not a
#: cost-model drift problem.
MIN_CAPACITY = 0.05


class DegradingWorld:
    """A host with plan-driven cumulative CPU degradation."""

    def __init__(self, machine: PhysicalMachine, plan: FaultPlan):
        self._base = machine
        self._plan = plan
        self._injector: Optional[FaultInjector] = (
            None if plan.is_benign else FaultInjector(plan))
        self._capacity = 1.0
        self._epoch = -1
        #: Capacity after each advanced epoch, for reports and sweeps.
        self.capacity_trajectory: List[float] = []

    @property
    def epoch(self) -> int:
        """Last advanced epoch (-1 before the first advance)."""
        return self._epoch

    @property
    def capacity(self) -> float:
        """Current CPU capacity as a fraction of the healthy host."""
        return self._capacity

    @property
    def machine(self) -> PhysicalMachine:
        """The host as it currently performs."""
        if self._capacity >= 1.0:
            return self._base
        return dc_replace(
            self._base,
            cpu_units_per_second=self._base.cpu_units_per_second
            * self._capacity)

    def advance(self) -> float:
        """Move one epoch forward; returns the new capacity."""
        self._epoch += 1
        if self._injector is not None:
            factor = self._injector.on_host_probe(self._base.name)
            if factor is not None:
                self._capacity = max(self._capacity * factor, MIN_CAPACITY)
        self.capacity_trajectory.append(self._capacity)
        return self._capacity
