"""Budget-aware recalibration planning: repair where it pays.

A drift alarm says *something* changed; the budget says how much
re-measuring the loop can afford. Following the AutoML framing of
budgeted tuning, the planner treats recalibration as an acquisition
problem and ranks candidate lattice regions by

    score(region) = drift signal × per-region CV uncertainty

— the same uncertainty the :class:`~repro.surrogate.SurrogateBuilder`
attaches while fitting and the polish phase refines against, so
offline refinement and online repair share one acquisition criterion
(``docs/drift.md``). The drift signal is the Page–Hinkley statistic of
the alarming event (or the current pre-alarm statistic for regions
that wobbled without alarming); the uncertainty factor spends the
budget where the fit already knew it was interpolating poorly, with a
floor so a drifted-but-confident region still gets repaired.

The plan is a ranked, de-duplicated list of the corner knots of the
chosen regions. Execution goes through
:meth:`~repro.surrogate.SurrogateBuilder.refit` — targeted overwrites
of existing knots, never a cold restart of the whole fit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.drift.monitor import DriftEvent, Region
from repro.surrogate.refine import SurrogateBuilder
from repro.surrogate.surface import Knot, ParameterSurface
from repro.util.errors import DriftError

#: Uncertainty floor: a region whose fit claims perfect interpolation
#: still scores above zero when its residuals alarm — drift that the
#: cross-validation never saw coming is exactly the interesting kind.
DEFAULT_UNCERTAINTY_FLOOR = 0.01


@dataclass
class RecalibrationPlan:
    """Ranked repair work for one round of drift events."""

    #: Regions in descending score order.
    regions: List[Region] = field(default_factory=list)
    #: score per region (drift signal × clamped uncertainty).
    scores: Dict[Region, float] = field(default_factory=dict)
    #: Corner knots to refit, ranked (regions in order, corners sorted,
    #: duplicates kept once at their best rank).
    knots: List[Knot] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not self.knots


class RecalibrationPlanner:
    """Ranks drifted regions and executes targeted refits on budget.

    The planner owns the recalibration budget through the
    :class:`~repro.surrogate.SurrogateBuilder` it is handed: the
    builder's request accounting (replays count) is what makes a
    killed-and-resumed online loop stop spending at the identical
    knot. One planner instance lives for the whole online run, so the
    budget is cumulative across drift rounds.
    """

    def __init__(self, builder: SurrogateBuilder,
                 uncertainty_floor: float = DEFAULT_UNCERTAINTY_FLOOR):
        if uncertainty_floor <= 0:
            raise DriftError("uncertainty floor must be positive")
        self._builder = builder
        self._floor = uncertainty_floor

    @property
    def builder(self) -> SurrogateBuilder:
        return self._builder

    @property
    def spent(self) -> int:
        return self._builder.spent

    @property
    def remaining(self) -> Optional[int]:
        return self._builder.remaining

    def plan(self, surface: ParameterSurface,
             events: Sequence[DriftEvent],
             signals: Optional[Mapping[Region, float]] = None,
             ) -> RecalibrationPlan:
        """Rank regions for repair after a round of drift events.

        *events* carry the alarm statistics; *signals* (from
        :meth:`~repro.drift.monitor.DriftMonitor.signals`) optionally
        adds pre-alarm statistics for neighbouring regions, which rank
        behind alarming ones at the same uncertainty. Deterministic:
        ties break on the region tuple.
        """
        strength: Dict[Region, float] = {}
        for region, signal in (signals or {}).items():
            if signal > 0:
                strength[tuple(region)] = float(signal)
        for event in events:
            region = tuple(event.region)
            strength[region] = max(strength.get(region, 0.0),
                                   float(event.statistic))
        plan = RecalibrationPlan()
        ranked = sorted(
            ((signal * max(surface.region_uncertainty(region), self._floor),
              region)
             for region, signal in strength.items()),
            key=lambda item: (-item[0], item[1]))
        seen_knots = set()
        for score, region in ranked:
            if score <= 0:
                continue
            plan.regions.append(region)
            plan.scores[region] = score
            for knot in surface.region_corners(region):
                if knot not in seen_knots:
                    seen_knots.add(knot)
                    plan.knots.append(knot)
        return plan

    def execute(self, surface: ParameterSurface, plan: RecalibrationPlan,
                calibrate):
        """Refit the plan's knots, best-ranked first, within budget.

        Returns the builder's
        :class:`~repro.surrogate.RefitReport`; the budget stop (knots
        skipped once the builder's requests run out) and the permanent
        failure fallback (stale knot kept) are the builder's refit
        semantics.
        """
        return self._builder.refit(surface, plan.knots,
                                   calibrate=calibrate)
