"""Crash-recoverable co-tuning runs.

A co-tuning run interleaves calibrations, candidate what-ifs, and
allocation searches; :class:`CodesignSupervisor` journals each paid-for
unit into a :class:`~repro.recovery.journal.RunJournal` so a killed run
resumes without repeating work — and, because the alternation is
deterministic, resumes to a **bit-identical** co-design (asserted by
``tests/codesign/test_supervisor.py`` at every unit boundary, the same
way the single-host and fleet equivalence suites assert it).

Units of work:

* a ``calibration`` record per freshly calibrated allocation (appended
  by :class:`~repro.calibration.cache.CalibrationCache`);
* an ``evaluation`` record per fresh what-if evaluation, carrying the
  workload, the allocation, **and the index configuration** it was
  costed under — the configuration is part of the replay key, so a
  cost measured with a hypothetical index in place can never be
  replayed into a different configuration (the memo analogue of the
  ``Catalog.fingerprint()`` invalidation the optimizer caches use).

Replay seeds the journaling model's memo; the resumed run re-walks the
deterministic alternation, hits the memo for every journaled unit, and
continues at exactly the unit the killed run stopped at. Worker count
and pool kind are recorded for observability but are not identity: a
run journaled at 4 workers resumes serially bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.calibration.cache import CalibrationCache
from repro.calibration.runner import CalibrationRunner
from repro.codesign.designer import CodesignDesigner, CoDesign, IndexChoice
from repro.core.cost_model import (
    BatchOutcome,
    CostModel,
    OptimizerCostModel,
    _allocation_key,
)
from repro.core.problem import VirtualizationDesignProblem
from repro.parallel import make_engine
from repro.recovery.journal import (
    BudgetedJournal,
    RunJournal,
    UnitBudgetExceeded,
)
from repro.util.errors import RecoveryError


def _config_of(spec) -> tuple:
    """The spec's current index configuration, as a stable tuple.

    Every index — real or hypothetical — participates: what-if costs
    depend on all of them. Sorted, so the key is independent of DDL
    order.
    """
    catalog = spec.database.catalog
    config = []
    for table_name in catalog.table_names():
        for idx in catalog.table(table_name).indexes.values():
            config.append((idx.name, idx.table_name, idx.column_name,
                           bool(idx.hypothetical)))
    return tuple(sorted(config))


class JournalingCodesignModel(CostModel):
    """Journals fresh what-if evaluations keyed by (workload, allocation,
    index configuration).

    The configuration must be in the key: the co-tuning loop evaluates
    the *same* (workload, allocation) pair under many hypothetical
    index sets, and replay happens before any DDL has been re-applied —
    a configuration-blind key would seed one configuration's cost into
    all of them.
    """

    kind = "codesign-journaling"

    def __init__(self, inner: CostModel, journal):
        super().__init__()
        self._inner = inner
        self._journal = journal

    def _key(self, spec, allocation) -> tuple:
        return (spec.name, _allocation_key(allocation), _config_of(spec))

    def seed_record(self, data: Dict[str, Any]) -> None:
        """Seed one journaled evaluation (replay path)."""
        config = tuple(
            (str(n), str(t), str(c), bool(h))
            for n, t, c, h in data["config"]
        )
        shares = data["allocation"]
        key = (data["workload"],
               tuple(round(float(s), 6) for s in shares),
               config)
        with self._memo_lock:
            self._memo[key] = float(data["cost"])

    def _journal_unit(self, spec, allocation, value: float) -> None:
        self._journal.append("evaluation", {
            "workload": spec.name,
            "allocation": list(allocation.as_tuple()),
            "config": [list(entry) for entry in _config_of(spec)],
            "cost": value,
        })

    def cost(self, spec, allocation) -> float:
        key = self._key(spec, allocation)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        value = self._inner.cost(spec, allocation)
        self._journal_unit(spec, allocation, value)
        self._memo[key] = value
        self.evaluations += 1
        return value

    def cost_many(self, pairs, engine=None) -> BatchOutcome:
        """Batched evaluation with per-result journaling.

        Misses go through the inner model's batch API (which may fan
        out over *engine*); each result then journals in
        first-appearance order, so a kill mid-batch commits a
        deterministic prefix and resume re-runs exactly the uncommitted
        tail.
        """
        pairs = list(pairs)
        keys = [self._key(spec, allocation) for spec, allocation in pairs]
        values: Dict[tuple, float] = {}
        todo = []
        todo_keys: List[tuple] = []
        pending = set()
        for key, pair in zip(keys, pairs):
            if key in values or key in pending:
                continue
            cached = self._memo.get(key)
            if cached is not None:
                values[key] = cached
            else:
                todo.append(pair)
                todo_keys.append(key)
                pending.add(key)
        hits = len(pairs) - len(todo)
        fresh = 0
        if todo:
            inner = self._inner.cost_many(todo, engine=engine)
            for key, (spec, allocation), value in zip(todo_keys, todo,
                                                      inner.costs):
                self._journal_unit(spec, allocation, value)
                self._memo[key] = value
                self.evaluations += 1
                fresh += 1
                values[key] = value
        return BatchOutcome(costs=[values[key] for key in keys],
                            fresh=fresh, hits=hits)

    def _cost(self, spec, allocation) -> float:  # pragma: no cover
        return self._inner.cost(spec, allocation)


@dataclass
class CodesignRun:
    """What one :meth:`CodesignSupervisor.run` invocation produced."""

    #: The finished co-design, or ``None`` when the run was killed.
    design: Optional[CoDesign]
    #: True when the run finished (a ``result`` record is journaled).
    completed: bool = False
    #: Units (calibrations + evaluations) replayed from the journal.
    replayed_units: int = 0
    #: Units freshly computed and committed by this invocation.
    new_units: int = 0


class CodesignSupervisor:
    """Drives a journaled, resumable co-tuning run."""

    def __init__(self, problem: VirtualizationDesignProblem, journal_path,
                 *, storage_budget: int,
                 algorithm: str = "greedy", grid: int = 4,
                 max_rounds: int = 6,
                 max_evaluations: Optional[int] = None,
                 max_units: Optional[int] = None,
                 scenario: Optional[Dict[str, Any]] = None,
                 workbench=None,
                 workers: Optional[int] = None, pool: str = "thread",
                 extra_meta: Optional[Dict[str, Any]] = None):
        self._problem = problem
        self._journal_path = journal_path
        self._storage_budget = storage_budget
        self._algorithm = algorithm
        self._grid = grid
        self._max_rounds = max_rounds
        self._max_evaluations = max_evaluations
        self._max_units = max_units
        #: Scenario parameters that rebuilt *problem*, if any; recorded
        #: so ``repro resume`` can reconstruct the problem alone.
        self._scenario = dict(scenario) if scenario else None
        self._workbench = workbench
        self._workers = workers
        self._pool = pool
        self._extra_meta = dict(extra_meta or {})
        #: Populated by :meth:`run` for parameter inspection.
        self.cache: Optional[CalibrationCache] = None

    # -- run identity ------------------------------------------------------

    def _meta(self) -> Dict[str, Any]:
        meta = {
            "run_kind": "codesign",
            "machine": self._problem.machine.name,
            "workloads": self._problem.workload_names(),
            "controlled": [str(kind) for kind
                           in self._problem.controlled_resources],
            "algorithm": self._algorithm,
            "grid": self._grid,
            "storage_budget": self._storage_budget,
            "max_rounds": self._max_rounds,
            "workers": self._workers,
        }
        if self._scenario is not None:
            meta["scenario"] = dict(self._scenario)
        meta.update(self._extra_meta)
        return meta

    _IDENTITY_KEYS = ("run_kind", "machine", "workloads", "controlled",
                      "algorithm", "grid", "storage_budget", "max_rounds")

    def _check_meta(self, recorded: Dict[str, Any]) -> None:
        expected = self._meta()
        mismatched = sorted(
            key for key in self._IDENTITY_KEYS
            if key in recorded and recorded[key] != expected[key]
        )
        if mismatched:
            raise RecoveryError(
                f"journal {self._journal_path} was written by a different "
                f"co-tuning run: mismatched {', '.join(mismatched)} "
                f"(resume must use the same problem, budget, and search)")

    # -- the run -----------------------------------------------------------

    def run(self, resume: bool = False) -> CodesignRun:
        """Execute (or resume) the co-tuning run."""
        if resume:
            journal = RunJournal.open(self._journal_path)
            self._check_meta(journal.meta)
        else:
            journal = RunJournal.create(self._journal_path, self._meta())

        budgeted = BudgetedJournal(journal, self._max_units)
        engine = make_engine(self._workers, self._pool)
        runner = CalibrationRunner(
            self._problem.machine, workbench=self._workbench, engine=engine)
        cache = CalibrationCache(runner, journal=budgeted)
        cost_model = JournalingCodesignModel(
            OptimizerCostModel(cache, config_aware=True), budgeted)
        self.cache = cache

        replayed = self._replay(journal, cache, cost_model)
        prior_result = journal.records_of("result")

        try:
            designer = CodesignDesigner(
                self._problem, cost_model,
                storage_budget=self._storage_budget,
                algorithm=self._algorithm, grid=self._grid,
                max_rounds=self._max_rounds,
                max_evaluations=self._max_evaluations,
                engine=engine)
            design = designer.design()
        except UnitBudgetExceeded:
            return CodesignRun(design=None, completed=False,
                               replayed_units=replayed,
                               new_units=budgeted.new_units)
        finally:
            if engine is not None:
                engine.close()

        if not prior_result:
            # The result commits to the raw journal: it is the finish
            # line, not a unit the kill simulation may interrupt.
            journal.append("result", self._result_record(design))
        return CodesignRun(design=design, completed=True,
                           replayed_units=replayed,
                           new_units=budgeted.new_units)

    # -- replay ------------------------------------------------------------

    def _replay(self, journal: RunJournal, cache: CalibrationCache,
                cost_model: JournalingCodesignModel) -> int:
        from repro.optimizer.params import OptimizerParameters

        known = set(self._problem.workload_names())
        replayed = 0
        for record in journal.records:
            if record.kind == "calibration":
                cache.add_point(
                    tuple(float(v) for v in record.data["allocation"]),
                    OptimizerParameters.from_dict(record.data["parameters"]))
                replayed += 1
            elif record.kind == "evaluation":
                name = record.data["workload"]
                if name not in known:
                    raise RecoveryError(
                        f"journal evaluation names unknown workload {name!r}")
                cost_model.seed_record(record.data)
                replayed += 1
        return replayed

    @staticmethod
    def _result_record(design: CoDesign) -> Dict[str, Any]:
        return {
            "algorithm": design.algorithm,
            "total_cost": design.total_cost,
            "initial_cost": design.initial_total_cost,
            "rounds": design.rounds,
            "converged": design.converged,
            "trajectory": list(design.trajectory),
            "storage_budget": design.storage_budget,
            "allocation": {
                name: list(design.allocation.vector_for(name).as_tuple())
                for name in design.allocation.workload_names()
            },
            "indexes": {
                name: [choice.as_dict() for choice in choices]
                for name, choices in sorted(design.indexes.items())
            },
            "pages_used": dict(sorted(design.pages_used.items())),
            # Deliberately no evaluation count: fresh-work accounting is
            # invocation-relative (a resumed run pays fewer evaluations),
            # and the result record must be bit-identical either way.
        }


def replay_result(journal_path) -> Optional[Dict[str, Any]]:
    """The journaled result record of a finished run, if any."""
    journal = RunJournal.open(journal_path)
    results = journal.records_of("result")
    return results[-1].data if results else None


def choices_from_record(data: Dict[str, Any]) -> Dict[str, List[IndexChoice]]:
    """Decode a result record's per-workload index choices."""
    return {
        name: [IndexChoice.from_dict(entry) for entry in entries]
        for name, entries in data.get("indexes", {}).items()
    }
