"""Index-candidate generation from workload predicates.

The Extend-style selection pass (see :mod:`repro.codesign.designer`)
needs a seed set of single-column candidates per workload. This module
derives them from the workload's own SQL, bound against the catalog:

* sargable restrictions — ``alias.column <op> literal`` conjuncts for
  the operators the planner's index path can match (see
  ``repro.optimizer.planner._extract_bound``), either orientation;
* equality-join columns — ``a.x = b.y`` with both sides column
  references, which index-nested-loop-style plans and future multi-pass
  selections benefit from.

Candidates are deduplicated, restricted to base-table columns, sorted,
and columns already covered by a *real* index are dropped — there is
nothing left to gain from hypothesizing them. The walk recurses into
derived tables and scalar subqueries, and covers join conditions
produced by the binder's subquery decorrelation (EXISTS/IN become
semi/anti joins whose conditions carry the correlation columns).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.engine.catalog import Catalog
from repro.engine.expr import (
    BinaryOp,
    ColumnRef,
    Expr,
    Literal,
    SubplanExpr,
    conjuncts,
    map_children,
)
from repro.engine.sql.binder import (
    Binder,
    LogicalDerived,
    LogicalJoin,
    LogicalNode,
    LogicalQuery,
    LogicalRelation,
)
from repro.workloads.workload import Workload

#: Comparison operators the planner's index access path can bound.
_SARGABLE_OPS = ("=", "<", "<=", ">", ">=")


@dataclass(frozen=True, order=True)
class IndexCandidate:
    """One single-column index candidate."""

    table: str
    column: str

    @property
    def index_name(self) -> str:
        return f"cdx_{self.table}_{self.column}"

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


def candidate_indexes(workload: Workload,
                      catalog: Catalog) -> List[IndexCandidate]:
    """Seed candidates for *workload* against *catalog*, sorted.

    Each distinct statement is bound once; columns already carrying a
    real (materialized) index are excluded.
    """
    found: Set[IndexCandidate] = set()
    for sql in dict.fromkeys(workload.statements):
        query = Binder(catalog).bind_sql(sql)
        _collect_query(query, found)
    out = []
    for cand in sorted(found):
        existing = catalog.index_on_column(cand.table, cand.column)
        if existing is not None and not existing.hypothetical:
            continue
        out.append(cand)
    return out


# -- the walk -----------------------------------------------------------------


def _collect_query(query: LogicalQuery, found: Set[IndexCandidate]) -> None:
    alias_tables: Dict[str, str] = {}
    exprs: List[Expr] = list(query.where)
    _collect_tree(query.from_tree, alias_tables, exprs, found)
    for conjunct_source in exprs:
        for conjunct in conjuncts(conjunct_source):
            _classify(conjunct, alias_tables, found)
    # Scalar subqueries can hide anywhere an expression can.
    everything: List[Expr] = list(exprs) + list(query.select_exprs)
    everything.extend(query.group_keys)
    if query.having is not None:
        everything.append(query.having)
    for spec in query.aggregates:
        if spec.arg is not None:
            everything.append(spec.arg)
    for expr in everything:
        for sub in _subplans(expr):
            _collect_query(sub.logical, found)


def _collect_tree(node, alias_tables: Dict[str, str],
                  exprs: List[Expr], found: Set[IndexCandidate]) -> None:
    if node is None:
        return
    if isinstance(node, LogicalRelation):
        alias_tables[node.alias] = node.table
    elif isinstance(node, LogicalDerived):
        _collect_query(node.query, found)
    elif isinstance(node, LogicalJoin):
        _collect_tree(node.left, alias_tables, exprs, found)
        _collect_tree(node.right, alias_tables, exprs, found)
        if node.condition is not None:
            exprs.append(node.condition)


def _classify(expr: Expr, alias_tables: Dict[str, str],
              found: Set[IndexCandidate]) -> None:
    if not isinstance(expr, BinaryOp) or expr.op not in _SARGABLE_OPS:
        return
    left, right = expr.left, expr.right
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        _add(left, alias_tables, found)
    elif isinstance(left, Literal) and isinstance(right, ColumnRef):
        _add(right, alias_tables, found)
    elif (expr.op == "=" and isinstance(left, ColumnRef)
          and isinstance(right, ColumnRef) and left.alias != right.alias):
        _add(left, alias_tables, found)
        _add(right, alias_tables, found)


def _add(ref: ColumnRef, alias_tables: Dict[str, str],
         found: Set[IndexCandidate]) -> None:
    table = alias_tables.get(ref.alias)
    if table is not None:  # derived-table columns are not indexable
        found.add(IndexCandidate(table=table, column=ref.column))


def _subplans(expr: Expr) -> List[SubplanExpr]:
    out: List[SubplanExpr] = []

    def visit(node: Expr) -> Expr:
        if isinstance(node, SubplanExpr):
            out.append(node)
        else:
            map_children(node, visit)
        return node

    visit(expr)
    return out


def candidate_key(cand: IndexCandidate) -> Tuple[str, str]:
    """Stable sort/identity key for a candidate."""
    return (cand.table, cand.column)
