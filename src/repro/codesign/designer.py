"""Joint physical-design + allocation co-tuning (the paper's frontier).

Every earlier pass tunes only the resource-allocation axis. This module
opens the second axis the paper's title promises: per-VM index
configurations, selected jointly with the allocation matrix.

The structure is block-coordinate descent over the two axes:

1. **Index selection** (Extend-style greedy): given the incumbent
   allocation, seed single-column candidates from the workload's own
   predicates (:mod:`repro.codesign.candidates`), then repeatedly add
   the hypothetical index with the best what-if benefit per storage
   page, under a per-VM storage-page budget. Every candidate is costed
   through the what-if optimizer against the spec's real catalog with
   the candidate hypothesized in — hypothetical DDL changes
   ``Catalog.fingerprint()``, so compiled recost programs and memo
   entries invalidate instead of serving stale costs.
2. **Allocation search**: re-solve the allocation for the new per-VM
   cost models with the existing search algorithms
   (:mod:`repro.core.search`), batched through ``cost_many`` and an
   optional :class:`~repro.parallel.EvaluationEngine`.

Alternate until the (indexes, allocation) pair reaches a fixed point.
The total-cost trajectory is **monotone non-increasing by
construction**: an index is only accepted on a strict cost reduction at
the incumbent allocation, and a searched allocation is only accepted
when strictly cheaper than the incumbent. The trajectory carries one
entry per half-step (selection, then allocation) so the invariant is
checkable record by record — ``scripts/check_bench.py`` hard-fails on
any increase.

Observability: ``codesign.rounds``, ``codesign.candidates_evaluated``,
``codesign.indexes_selected``, ``codesign.pages_used``, and
``codesign.converged`` counters feed the Codesign section of the run
report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.codesign.candidates import IndexCandidate, candidate_indexes
from repro.core.cost_model import CostModel
from repro.core.problem import (
    AllocationMatrix,
    VirtualizationDesignProblem,
    WorkloadSpec,
)
from repro.core.search import make_algorithm
from repro.obs import metrics
from repro.obs.spans import span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel.engine import EvaluationEngine


@dataclass(frozen=True)
class IndexChoice:
    """One accepted index in a co-design."""

    name: str
    table: str
    column: str
    pages: int
    #: Alternation round (1-based) the index was accepted in.
    round: int

    def as_dict(self) -> Dict[str, object]:
        return {"name": self.name, "table": self.table,
                "column": self.column, "pages": self.pages,
                "round": self.round}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "IndexChoice":
        return cls(name=str(data["name"]), table=str(data["table"]),
                   column=str(data["column"]), pages=int(data["pages"]),
                   round=int(data["round"]))


@dataclass
class CoDesign:
    """A joint (indexes, allocation) design."""

    problem: VirtualizationDesignProblem
    allocation: AllocationMatrix
    total_cost: float
    per_workload_costs: Dict[str, float]
    #: Accepted indexes per workload, in acceptance order.
    indexes: Dict[str, List[IndexChoice]]
    #: Hypothetical pages spent per workload (<= storage_budget each).
    pages_used: Dict[str, int]
    storage_budget: int
    #: Total cost after each half-step: [initial, sel_1, alloc_1, ...].
    trajectory: List[float]
    rounds: int
    converged: bool
    algorithm: str
    #: Fresh what-if evaluations paid (selection + allocation search).
    evaluations: int
    candidates_evaluated: int

    @property
    def initial_total_cost(self) -> float:
        return self.trajectory[0]

    @property
    def predicted_improvement(self) -> float:
        if self.initial_total_cost <= 0:
            return 0.0
        return 1.0 - self.total_cost / self.initial_total_cost

    def index_names(self) -> Dict[str, List[str]]:
        return {name: [choice.name for choice in choices]
                for name, choices in self.indexes.items()}

    def summary(self) -> str:
        lines = [
            f"Co-design via {self.algorithm} "
            f"({self.rounds} rounds, "
            f"{'converged' if self.converged else 'round limit'}, "
            f"{self.evaluations} cost evaluations)",
        ]
        for name in self.allocation.workload_names():
            vec = self.allocation.vector_for(name)
            chosen = self.indexes.get(name, [])
            idx = (", ".join(f"{c.table}.{c.column}" for c in chosen)
                   or "none")
            lines.append(
                f"  {name}: cpu={vec.cpu:.2f} mem={vec.memory:.2f} "
                f"io={vec.io:.2f}  indexes [{idx}] "
                f"({self.pages_used.get(name, 0)}/{self.storage_budget} pages)"
                f"  predicted={self.per_workload_costs[name]:.3f}s"
            )
        lines.append(
            f"  total predicted {self.total_cost:.3f}s vs initial "
            f"{self.initial_total_cost:.3f}s "
            f"({100 * self.predicted_improvement:.1f}% better)"
        )
        return "\n".join(lines)


@dataclass
class _SpecState:
    """Per-workload selection state carried across rounds."""

    spec: WorkloadSpec
    candidates: List[IndexCandidate]
    chosen: List[IndexChoice] = field(default_factory=list)
    pages_used: int = 0


class CodesignDesigner:
    """Alternates Extend-style index selection with allocation search.

    The cost model must key its memo on the catalog configuration
    (``OptimizerCostModel(..., config_aware=True)`` or the journaling
    wrapper around it) — with plain (workload, allocation) keys a
    hypothetical CREATE INDEX would be invisible to the memo and every
    candidate would score zero.
    """

    def __init__(self, problem: VirtualizationDesignProblem,
                 cost_model: CostModel, *,
                 storage_budget: int,
                 algorithm: str = "greedy", grid: int = 4,
                 max_rounds: int = 6,
                 max_evaluations: Optional[int] = None,
                 engine: Optional["EvaluationEngine"] = None):
        if storage_budget < 0:
            raise ValueError("storage_budget must be >= 0 pages")
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self._problem = problem
        self._cost_model = cost_model
        self._storage_budget = storage_budget
        self._algorithm = algorithm
        self._grid = grid
        self._max_rounds = max_rounds
        self._max_evaluations = max_evaluations
        self._engine = engine
        self._fresh = 0
        self._candidates_evaluated = 0

    # -- cost plumbing -----------------------------------------------------

    def _cost_one(self, spec: WorkloadSpec, vector) -> float:
        outcome = self._cost_model.cost_many([(spec, vector)],
                                             engine=self._engine)
        self._fresh += outcome.fresh
        return outcome.costs[0]

    def _evaluate(self, allocation: AllocationMatrix) -> Dict[str, float]:
        pairs = [(spec, allocation.vector_for(spec.name))
                 for spec in self._problem.specs]
        outcome = self._cost_model.cost_many(pairs, engine=self._engine)
        self._fresh += outcome.fresh
        return {spec.name: cost
                for spec, cost in zip(self._problem.specs, outcome.costs)}

    # -- index selection ---------------------------------------------------

    def _select_round(self, state: _SpecState, vector,
                      round_no: int) -> bool:
        """One greedy selection pass for one spec at one allocation.

        Adds indexes (mutating the spec's catalog with hypothetical
        DDL) while some candidate strictly reduces the what-if cost and
        fits the remaining page budget; returns whether anything was
        accepted. Candidates are probed in sorted order and the best
        benefit-per-page wins (first wins ties), so the pass is
        deterministic.
        """
        catalog = state.spec.database.catalog
        accepted = False
        current = self._cost_one(state.spec, vector)
        while state.candidates:
            remaining_pages = self._storage_budget - state.pages_used
            if remaining_pages <= 0:
                break
            best_score = 0.0
            best: Optional[tuple] = None
            for cand in state.candidates:
                info = catalog.create_hypothetical_index(
                    cand.index_name, cand.table, cand.column)
                pages = info.index.n_pages
                if pages > remaining_pages:
                    catalog.drop_index(cand.index_name)
                    continue
                cost_with = self._cost_one(state.spec, vector)
                catalog.drop_index(cand.index_name)
                self._candidates_evaluated += 1
                metrics.counter("codesign.candidates_evaluated").inc()
                benefit = current - cost_with
                if benefit <= 0.0:
                    continue
                score = benefit / pages
                if score > best_score:
                    best_score = score
                    best = (cand, pages, cost_with)
            if best is None:
                break
            cand, pages, cost_with = best
            catalog.create_hypothetical_index(
                cand.index_name, cand.table, cand.column)
            state.chosen.append(IndexChoice(
                name=cand.index_name, table=cand.table,
                column=cand.column, pages=pages, round=round_no))
            state.candidates.remove(cand)
            state.pages_used += pages
            current = cost_with
            accepted = True
            metrics.counter("codesign.indexes_selected").inc()
            metrics.counter("codesign.pages_used").inc(pages)
        return accepted

    # -- the alternation ---------------------------------------------------

    def design(self) -> CoDesign:
        """Run the alternation to a fixed point (or the round limit)."""
        metrics.counter("codesign.runs").inc()
        with span("codesign", algorithm=self._algorithm,
                  storage_budget=self._storage_budget):
            return self._design()

    def _design(self) -> CoDesign:
        problem = self._problem
        states = [
            _SpecState(spec=spec,
                       candidates=candidate_indexes(
                           spec.workload, spec.database.catalog))
            for spec in problem.specs
        ]

        allocation = problem.default_allocation()
        costs = self._evaluate(allocation)
        total = sum(costs.values())
        trajectory = [total]
        rounds = 0
        converged = False

        for round_no in range(1, self._max_rounds + 1):
            rounds = round_no
            metrics.counter("codesign.rounds").inc()

            # Half-step 1: index selection at the incumbent allocation.
            changed_indexes = False
            for state in states:
                vector = allocation.vector_for(state.spec.name)
                if self._select_round(state, vector, round_no):
                    changed_indexes = True
            costs = self._evaluate(allocation)
            total = sum(costs.values())
            trajectory.append(total)

            # Half-step 2: re-solve the allocation for the new models.
            search = make_algorithm(
                self._algorithm, self._grid,
                max_evaluations=self._max_evaluations,
                engine=self._engine)
            result = search.search(problem, self._cost_model)
            self._fresh += result.evaluations
            changed_allocation = False
            if result.allocation != allocation:
                # Accept on the *re-evaluated* total, not the
                # search-internal one: the two can disagree (the search
                # may score off-grid incumbents it cannot represent),
                # and only the re-evaluated comparison keeps the
                # trajectory monotone by construction.
                cand_costs = self._evaluate(result.allocation)
                cand_total = sum(cand_costs.values())
                if cand_total < total:
                    allocation = result.allocation
                    costs = cand_costs
                    total = cand_total
                    changed_allocation = True
            trajectory.append(total)

            if not changed_indexes and not changed_allocation:
                converged = True
                metrics.counter("codesign.converged").inc()
                break

        return CoDesign(
            problem=problem,
            allocation=allocation,
            total_cost=total,
            per_workload_costs=costs,
            indexes={state.spec.name: list(state.chosen)
                     for state in states},
            pages_used={state.spec.name: state.pages_used
                        for state in states},
            storage_budget=self._storage_budget,
            trajectory=trajectory,
            rounds=rounds,
            converged=converged,
            algorithm=self._algorithm,
            evaluations=self._fresh,
            candidates_evaluated=self._candidates_evaluated,
        )
