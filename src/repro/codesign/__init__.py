"""Joint physical-design + allocation co-tuning.

The paper calls virtualization "a new frontier for database tuning
*and physical design*"; this package opens the physical-design axis:
Extend-style greedy index selection under a per-VM storage-page
budget, alternating with the allocation search to a fixed point. See
``docs/codesign.md``.
"""

from repro.codesign.candidates import IndexCandidate, candidate_indexes
from repro.codesign.designer import CoDesign, CodesignDesigner, IndexChoice
from repro.codesign.supervisor import (
    CodesignRun,
    CodesignSupervisor,
    JournalingCodesignModel,
    choices_from_record,
    replay_result,
)

__all__ = [
    "IndexCandidate",
    "candidate_indexes",
    "CoDesign",
    "CodesignDesigner",
    "IndexChoice",
    "CodesignRun",
    "CodesignSupervisor",
    "JournalingCodesignModel",
    "choices_from_record",
    "replay_result",
]
