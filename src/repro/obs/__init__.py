"""repro.obs — the cross-cutting observability layer.

Overview
--------
Every layer of the reproduction does *counted work*: the engine reads
pages, the optimizer builds plans, calibration runs experiments, the
searches spend cost-model evaluations. This package gives those counts
one process-wide, dependency-free surface:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges, histograms, and timers (labels supported, thread-safe,
  snapshot/reset);
* :mod:`repro.obs.spans` — :func:`span`, a context manager producing
  nested host-time spans with tags, collected by a
  :class:`SpanRecorder`;
* :mod:`repro.obs.report` — :class:`RunReport`, which captures both
  into a serializable account (dict / JSON / text tables) of a whole
  design run.

Instrumented call sites live in ``repro.engine`` (executor, buffer
pool, database), ``repro.optimizer`` (planner, what-if),
``repro.calibration`` (runner, cache), and ``repro.core`` (cost models,
searches, workload runner). ``python -m repro report`` prints a
captured report; ``--stats`` on any CLI command appends one.

Usage
-----
::

    from repro import obs

    obs.reset()                      # start a fresh accounting period
    ...                              # run a design / experiment
    print(obs.RunReport.capture(label="my-run").to_text())

Nothing in this package imports the rest of the library (only
``repro.util``), so any module can instrument itself without creating
import cycles.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
    timer,
)
from repro.obs.report import RunReport, summarize
from repro.obs.spans import Span, SpanRecorder, get_recorder, span
from repro.obs import metrics as _metrics
from repro.obs import spans as _spans

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunReport",
    "Span",
    "SpanRecorder",
    "counter",
    "gauge",
    "get_recorder",
    "get_registry",
    "histogram",
    "reset",
    "span",
    "summarize",
    "timer",
]


def reset() -> None:
    """Reset the default metrics registry *and* span recorder."""
    _metrics.reset()
    _spans.reset()
