"""Run reports: one serializable account of a whole design run.

Overview
--------
A :class:`RunReport` captures the process-wide metrics registry and
span recorder at a moment in time and derives the headline numbers the
paper's method is judged by — how many cost-model evaluations a search
spent, how many calibration experiments were run versus answered from
the cache (exactly or by interpolation), what the buffer pool's hit
ratio was, and how much simulated time was accounted versus host time
spent computing it.

The same data is available three ways:

* :meth:`RunReport.as_dict` — plain data (stable keys, see below);
* :meth:`RunReport.to_json` / :meth:`RunReport.from_json` — lossless
  JSON round-trip for archiving runs next to benchmark results;
* :meth:`RunReport.to_text` — aligned tables for terminals, the thing
  ``python -m repro report`` and ``--stats`` print.

Headline keys
-------------
``summary`` maps these keys to numbers (0 when nothing was recorded):

=============================  ==============================================
``cost_model_evaluations``     uncached ``Cost(W, R)`` computations
``cost_model_memo_hits``       evaluations answered from the cost-model memo
``calibration_experiments``    full calibration experiments executed
``calibration_measurements``   individual calibration queries measured
``calibration_exact_hits``     ``P(R)`` lookups answered from the cache
``calibration_interpolated``   lookups answered by grid interpolation
``calibration_fresh``          lookups that triggered a new experiment
``whatif_estimates``           what-if optimizer estimates computed
``whatif_cache_hits``          estimates answered from the plan cache
``plans_built``                physical plans constructed by the planner
``statements_executed``        plans actually executed by the engine
``pages_seq_read``             sequential page reads (buffer-pool misses)
``pages_random_read``          random page reads (buffer-pool misses)
``buffer_hits``                page requests served from the buffer pool
``buffer_hit_ratio``           hits / all page requests (1.0 when idle)
``simulated_seconds``          simulated time accounted by the perf model
``host_seconds``               host time across recorded root spans
``faults_injected``            faults injected by an active fault plan
``retries``                    transient faults retried (boot/measurement/experiment)
``outliers_rejected``          measurement trials discarded by MAD filtering
``fallbacks``                  ``P(R)`` lookups served by the fallback chain
``budget_stops``               searches stopped early on budget/deadline
``recoveries``                 watchdog recovery actions (restart/migrate/...)
``surrogate_lookups``          ``P(R)`` answers served by a fitted surrogate
``surrogate_hits``             surrogate lookups that landed on a knot
``surrogate_interpolated``     surrogate lookups answered by interpolation
``surrogate_clamped``          lookups the extrapolation guard clamped first
``surrogate_calibrations``     calibration requests spent fitting surrogates
``surrogate_refinements``      adaptive-refinement rounds executed
``surrogate_polish``           search-in-the-loop polish rounds executed
``fleet_host_designs``         per-host allocation searches solved fresh
``fleet_design_cache_hits``    host designs answered from the solve cache
``fleet_rounds``               fleet reassignment rounds executed
``fleet_moves_accepted``       workload moves that improved total cost
``fleet_moves_considered``     candidate moves exactly evaluated
``drift_epochs``               online epochs supervised by the drift loop
``drift_observations``         observed-vs-predicted residuals recorded
``drift_events``               Page–Hinkley alarms raised by the monitor
``drift_recalibrations``       knots refit after a drift alarm
``drift_regions_refit``        drifted surrogate regions actually repaired
``drift_redesigns``            warm-started re-designs after a repair
``drift_budget_remaining``     recalibration requests left when captured
``serve_requests``             requests offered to the design service
``serve_answered``             requests answered at full fidelity
``serve_degraded``             requests answered by a degraded ladder tier
``serve_rejected``             typed rejections (sheds, refusals, errors)
``serve_shed``                 overload + quota sheds (subset of rejected)
``serve_batches``              what-if batches drained by the daemon
``serve_redesigns``            incremental re-designs committed
``serve_breaker_trips``        circuit-breaker trips on the calibration path
``serve_p95_seconds``          p95 served latency, simulated seconds
``codesign_runs``              co-tuning alternations driven end to end
``codesign_rounds``            selection+search rounds executed
``codesign_candidates``        hypothetical index candidates what-if costed
``codesign_indexes_selected``  index candidates accepted into a co-design
``codesign_pages_used``        storage pages spent on accepted indexes
``codesign_converged``         alternations that reached a fixed point
=============================  ==============================================

The five resilience keys (``faults_injected`` … ``budget_stops``) were
added in format 2 together with the ``repro chaos`` command;
``recoveries`` (backed by the ``resilience.recovery`` counter) arrived
in format 3 with the watchdog and run supervisor; the seven surrogate
keys (backed by the ``surrogate.*`` counters) arrived in format 4 with
the calibration surrogate and continuous-allocation search; the five
fleet keys (backed by the ``fleet.*`` counters) arrived in format 5
with the fleet placement layer; the seven drift keys (backed by the
``drift.*`` counters and the ``drift.budget_remaining`` gauge) arrived
in format 6 with the drift-aware online loop; the nine serve keys
(backed by the ``serve.*`` counters and the ``serve.latency_seconds``
histogram) arrived in format 7 with the always-on design service; the
six codesign keys (backed by the ``codesign.*`` counters) arrived in
format 8 with joint index + allocation co-tuning. See
``docs/robustness.md``, ``docs/surrogate.md``, ``docs/fleet.md``,
``docs/drift.md``, ``docs/serve.md``, and ``docs/codesign.md`` for the
metric names behind them.

Usage
-----
::

    from repro import obs

    obs.reset()
    ...  # run a design
    report = obs.RunReport.capture(label="fig5-design")
    print(report.to_text())
    payload = report.to_json()            # archive it
    again = obs.RunReport.from_json(payload)
    assert again.as_dict() == report.as_dict()
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.spans import SpanRecorder, get_recorder
from repro.util.errors import ObservabilityError
from repro.util.tables import format_table

FORMAT = "repro-run-report/8"


def _counter_totals(snapshot: dict, name: str) -> float:
    return sum(entry["value"] for entry in snapshot.get("counters", ())
               if entry["name"] == name)


def _gauge_value(snapshot: dict, name: str) -> Optional[float]:
    values = [entry["value"] for entry in snapshot.get("gauges", ())
              if entry["name"] == name]
    return values[-1] if values else None


def _histogram_p95(snapshot: dict, name: str) -> float:
    """Worst p95 across a histogram's label sets (0 when unobserved)."""
    values = [entry.get("p95", 0.0)
              for entry in snapshot.get("histograms", ())
              if entry["name"] == name and entry.get("count", 0)]
    return max(values) if values else 0.0


def _by_label(snapshot: dict, name: str, label: str) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for entry in snapshot.get("counters", ()):
        if entry["name"] == name and label in entry["labels"]:
            key = entry["labels"][label]
            out[key] = out.get(key, 0.0) + entry["value"]
    return out


def summarize(snapshot: dict, span_aggregate: Dict[str, dict],
              host_seconds: float) -> Dict[str, float]:
    """Derive the headline ``summary`` mapping from a metrics snapshot."""
    hits = _counter_totals(snapshot, "engine.pages.buffer_hits")
    seq = _counter_totals(snapshot, "engine.pages.seq_reads")
    rand = _counter_totals(snapshot, "engine.pages.random_reads")
    requests = hits + seq + rand
    if requests > 0:
        hit_ratio = hits / requests
    else:
        gauge = _gauge_value(snapshot, "engine.buffer_pool.hit_ratio")
        hit_ratio = gauge if gauge is not None else 1.0
    return {
        "cost_model_evaluations": _counter_totals(snapshot, "cost_model.evaluations"),
        "cost_model_memo_hits": _counter_totals(snapshot, "cost_model.memo_hits"),
        "calibration_experiments": _counter_totals(snapshot, "calibration.experiments"),
        "calibration_measurements": _counter_totals(snapshot, "calibration.measurements"),
        "calibration_exact_hits": _counter_totals(snapshot, "calibration.cache.exact_hits"),
        "calibration_interpolated": _counter_totals(snapshot, "calibration.cache.interpolated"),
        "calibration_fresh": _counter_totals(snapshot, "calibration.cache.fresh"),
        "whatif_estimates": _counter_totals(snapshot, "optimizer.whatif.estimates"),
        "whatif_cache_hits": _counter_totals(snapshot, "optimizer.whatif.cache_hits"),
        "plans_built": _counter_totals(snapshot, "optimizer.plans"),
        "statements_executed": _counter_totals(snapshot, "engine.executor.plans"),
        "pages_seq_read": seq,
        "pages_random_read": rand,
        "buffer_hits": hits,
        "buffer_hit_ratio": hit_ratio,
        "simulated_seconds": _counter_totals(snapshot, "sim.seconds"),
        "host_seconds": host_seconds,
        "faults_injected": _counter_totals(snapshot, "faults.injected"),
        "retries": _counter_totals(snapshot, "resilience.retries"),
        "outliers_rejected": _counter_totals(
            snapshot, "resilience.outliers_rejected"),
        "fallbacks": _counter_totals(snapshot, "resilience.fallbacks"),
        "budget_stops": _counter_totals(snapshot, "search.budget_stops"),
        "recoveries": _counter_totals(snapshot, "resilience.recovery"),
        "surrogate_lookups": _counter_totals(snapshot, "surrogate.lookups"),
        "surrogate_hits": _by_label(
            snapshot, "surrogate.lookups", "result").get("hit", 0.0),
        "surrogate_interpolated": _by_label(
            snapshot, "surrogate.lookups", "result").get("interpolated", 0.0),
        "surrogate_clamped": _by_label(
            snapshot, "surrogate.lookups", "result").get("clamped", 0.0),
        "surrogate_calibrations": _counter_totals(
            snapshot, "surrogate.calibrations"),
        "surrogate_refinements": _counter_totals(
            snapshot, "surrogate.refinements"),
        "surrogate_polish": _counter_totals(snapshot, "surrogate.polish"),
        "fleet_host_designs": _counter_totals(
            snapshot, "fleet.host_designs"),
        "fleet_design_cache_hits": _counter_totals(
            snapshot, "fleet.host_design_cache_hits"),
        "fleet_rounds": _counter_totals(snapshot, "fleet.reassign_rounds"),
        "fleet_moves_accepted": _counter_totals(
            snapshot, "fleet.moves_accepted"),
        "fleet_moves_considered": _counter_totals(
            snapshot, "fleet.moves_considered"),
        "drift_epochs": _counter_totals(snapshot, "drift.epochs"),
        "drift_observations": _counter_totals(
            snapshot, "drift.observations"),
        "drift_events": _counter_totals(snapshot, "drift.events"),
        "drift_recalibrations": _counter_totals(
            snapshot, "drift.recalibrations"),
        "drift_regions_refit": _counter_totals(
            snapshot, "drift.regions_refit"),
        "drift_redesigns": _counter_totals(snapshot, "drift.redesigns"),
        "drift_budget_remaining": _gauge_value(
            snapshot, "drift.budget_remaining") or 0.0,
        "serve_requests": _counter_totals(snapshot, "serve.requests"),
        "serve_answered": _counter_totals(snapshot, "serve.answered"),
        "serve_degraded": _counter_totals(snapshot, "serve.degraded"),
        "serve_rejected": _counter_totals(snapshot, "serve.rejected"),
        "serve_shed": _counter_totals(snapshot, "serve.shed"),
        "serve_batches": _counter_totals(snapshot, "serve.batches"),
        "serve_redesigns": _counter_totals(snapshot, "serve.redesigns"),
        "serve_breaker_trips": _by_label(
            snapshot, "serve.breaker", "event").get("trip", 0.0),
        "serve_p95_seconds": _histogram_p95(
            snapshot, "serve.latency_seconds"),
        "codesign_runs": _counter_totals(snapshot, "codesign.runs"),
        "codesign_rounds": _counter_totals(snapshot, "codesign.rounds"),
        "codesign_candidates": _counter_totals(
            snapshot, "codesign.candidates_evaluated"),
        "codesign_indexes_selected": _counter_totals(
            snapshot, "codesign.indexes_selected"),
        "codesign_pages_used": _counter_totals(
            snapshot, "codesign.pages_used"),
        "codesign_converged": _counter_totals(
            snapshot, "codesign.converged"),
    }


@dataclass
class RunReport:
    """A captured, serializable account of one run's counted work."""

    label: str
    summary: Dict[str, float]
    metrics: dict
    spans: Dict[str, dict] = field(default_factory=dict)

    # -- capture ------------------------------------------------------------

    @classmethod
    def capture(cls, label: str = "run",
                registry: Optional[MetricsRegistry] = None,
                recorder: Optional[SpanRecorder] = None) -> "RunReport":
        """Snapshot the (default) registry and recorder into a report."""
        registry = registry if registry is not None else get_registry()
        recorder = recorder if recorder is not None else get_recorder()
        snapshot = registry.snapshot()
        aggregate = recorder.aggregate()
        return cls(
            label=label,
            summary=summarize(snapshot, aggregate, recorder.total_seconds()),
            metrics=snapshot,
            spans=aggregate,
        )

    # -- serialization ------------------------------------------------------

    def as_dict(self) -> dict:
        """Plain-data form with stable keys (see module docstring)."""
        return {
            "format": FORMAT,
            "label": self.label,
            "summary": dict(self.summary),
            "metrics": {
                kind: [dict(entry) for entry in series]
                for kind, series in self.metrics.items()
            },
            "spans": {name: dict(stats) for name, stats in self.spans.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunReport":
        """Rebuild a report from :meth:`as_dict` output."""
        if payload.get("format") != FORMAT:
            raise ObservabilityError(
                f"unrecognized run-report format {payload.get('format')!r}"
            )
        return cls(
            label=payload["label"],
            summary=dict(payload["summary"]),
            metrics={kind: [dict(entry) for entry in series]
                     for kind, series in payload["metrics"].items()},
            spans={name: dict(stats)
                   for name, stats in payload.get("spans", {}).items()},
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    # -- rendering ----------------------------------------------------------

    def to_text(self) -> str:
        """Aligned-table rendering for terminals."""
        sections: List[str] = []
        summary = self.summary
        headline = [
            ["cost-model evaluations",
             f"{summary['cost_model_evaluations']:.0f} "
             f"({summary['cost_model_memo_hits']:.0f} memoized)"],
            ["calibration experiments",
             f"{summary['calibration_experiments']:.0f} "
             f"({summary['calibration_measurements']:.0f} queries measured)"],
            ["calibration lookups",
             f"{summary['calibration_exact_hits']:.0f} exact / "
             f"{summary['calibration_interpolated']:.0f} interpolated / "
             f"{summary['calibration_fresh']:.0f} fresh"],
            ["what-if estimates",
             f"{summary['whatif_estimates']:.0f} "
             f"({summary['whatif_cache_hits']:.0f} plan-cache hits)"],
            ["plans built / executed",
             f"{summary['plans_built']:.0f} / "
             f"{summary['statements_executed']:.0f}"],
            ["pages read (seq / random)",
             f"{summary['pages_seq_read']:.0f} / "
             f"{summary['pages_random_read']:.0f}"],
            ["buffer-pool hit ratio",
             f"{summary['buffer_hit_ratio']:.3f} "
             f"({summary['buffer_hits']:.0f} hits)"],
            ["simulated seconds", f"{summary['simulated_seconds']:.4g}"],
            ["host seconds (spans)", f"{summary['host_seconds']:.4g}"],
            ["resilience",
             f"{summary.get('retries', 0):.0f} retries / "
             f"{summary.get('outliers_rejected', 0):.0f} outliers rejected / "
             f"{summary.get('fallbacks', 0):.0f} fallbacks / "
             f"{summary.get('budget_stops', 0):.0f} budget stops / "
             f"{summary.get('recoveries', 0):.0f} recoveries"],
        ]
        sections.append(format_table(
            ["measure", "value"], headline,
            title=f"Run report — {self.label}",
        ))

        faults = _by_label(self.metrics, "faults.injected", "kind")
        if faults or summary.get("faults_injected", 0):
            retries = _by_label(self.metrics, "resilience.retries", "site")
            fallbacks = _by_label(self.metrics, "resilience.fallbacks", "kind")
            rows = [[f"faults injected ({kind})", f"{count:.0f}"]
                    for kind, count in sorted(faults.items())]
            rows.extend([[f"retries ({site})", f"{count:.0f}"]
                         for site, count in sorted(retries.items())])
            rows.extend([[f"fallbacks ({kind})", f"{count:.0f}"]
                         for kind, count in sorted(fallbacks.items())])
            rows.append(["outliers rejected",
                         f"{summary.get('outliers_rejected', 0):.0f}"])
            rows.append(["search budget stops",
                         f"{summary.get('budget_stops', 0):.0f}"])
            sections.append(format_table(
                ["event", "count"], rows, title="Resilience",
            ))

        recoveries = _by_label(self.metrics, "resilience.recovery", "action")
        if recoveries:
            rows = [[f"recovery ({action})", f"{count:.0f}"]
                    for action, count in sorted(recoveries.items())]
            sections.append(format_table(
                ["event", "count"], rows, title="Recovery",
            ))

        if summary.get("surrogate_lookups", 0):
            refinements = _by_label(self.metrics, "surrogate.refinements",
                                    "axis")
            rows = [
                ["lookups (hit / interpolated / clamped)",
                 f"{summary.get('surrogate_hits', 0):.0f} / "
                 f"{summary.get('surrogate_interpolated', 0):.0f} / "
                 f"{summary.get('surrogate_clamped', 0):.0f}"],
                ["calibration requests (fitting)",
                 f"{summary.get('surrogate_calibrations', 0):.0f}"],
                ["polish rounds",
                 f"{summary.get('surrogate_polish', 0):.0f}"],
            ]
            rows.extend([[f"refinements ({axis})", f"{count:.0f}"]
                         for axis, count in sorted(refinements.items())])
            sections.append(format_table(
                ["measure", "value"], rows, title="Surrogate",
            ))

        if summary.get("drift_epochs", 0):
            rows = [
                ["epochs / observations",
                 f"{summary.get('drift_epochs', 0):.0f} / "
                 f"{summary.get('drift_observations', 0):.0f}"],
                ["drift events detected",
                 f"{summary.get('drift_events', 0):.0f}"],
                ["knot refits / regions repaired",
                 f"{summary.get('drift_recalibrations', 0):.0f} / "
                 f"{summary.get('drift_regions_refit', 0):.0f}"],
                ["warm re-designs",
                 f"{summary.get('drift_redesigns', 0):.0f}"],
                ["repair budget remaining",
                 f"{summary.get('drift_budget_remaining', 0):.0f}"],
            ]
            sections.append(format_table(
                ["measure", "value"], rows, title="Drift",
            ))

        if summary.get("serve_requests", 0):
            tiers = _by_label(self.metrics, "serve.answered", "tier")
            for tier, count in _by_label(self.metrics, "serve.degraded",
                                         "tier").items():
                tiers[tier] = tiers.get(tier, 0.0) + count
            reasons = _by_label(self.metrics, "serve.rejected", "reason")
            rows = [
                ["requests (answered / degraded / rejected)",
                 f"{summary.get('serve_requests', 0):.0f} "
                 f"({summary.get('serve_answered', 0):.0f} / "
                 f"{summary.get('serve_degraded', 0):.0f} / "
                 f"{summary.get('serve_rejected', 0):.0f})"],
                ["shed (overload + quota)",
                 f"{summary.get('serve_shed', 0):.0f}"],
                ["what-if batches drained",
                 f"{summary.get('serve_batches', 0):.0f}"],
                ["incremental re-designs",
                 f"{summary.get('serve_redesigns', 0):.0f}"],
                ["breaker trips",
                 f"{summary.get('serve_breaker_trips', 0):.0f}"],
                ["p95 served latency (sim s)",
                 f"{summary.get('serve_p95_seconds', 0):.4g}"],
            ]
            rows.extend([[f"served ({tier})", f"{count:.0f}"]
                         for tier, count in sorted(tiers.items())])
            rows.extend([[f"rejected ({reason})", f"{count:.0f}"]
                         for reason, count in sorted(reasons.items())])
            sections.append(format_table(
                ["measure", "value"], rows, title="Serve",
            ))

        if summary.get("codesign_runs", 0):
            rows = [
                ["co-tuning runs / rounds",
                 f"{summary.get('codesign_runs', 0):.0f} / "
                 f"{summary.get('codesign_rounds', 0):.0f}"],
                ["candidates what-if costed",
                 f"{summary.get('codesign_candidates', 0):.0f}"],
                ["indexes selected",
                 f"{summary.get('codesign_indexes_selected', 0):.0f}"],
                ["storage pages spent",
                 f"{summary.get('codesign_pages_used', 0):.0f}"],
                ["converged to a fixed point",
                 f"{summary.get('codesign_converged', 0):.0f}"],
            ]
            sections.append(format_table(
                ["measure", "value"], rows, title="Codesign",
            ))

        if summary.get("fleet_host_designs", 0):
            rows = [
                ["host designs (fresh / cached)",
                 f"{summary.get('fleet_host_designs', 0):.0f} / "
                 f"{summary.get('fleet_design_cache_hits', 0):.0f}"],
                ["reassignment rounds",
                 f"{summary.get('fleet_rounds', 0):.0f}"],
                ["moves (accepted / considered)",
                 f"{summary.get('fleet_moves_accepted', 0):.0f} / "
                 f"{summary.get('fleet_moves_considered', 0):.0f}"],
            ]
            for gauge, label in (("fleet.hosts", "hosts"),
                                 ("fleet.workloads", "workloads"),
                                 ("fleet.clusters", "clusters")):
                value = _gauge_value(self.metrics, gauge)
                if value is not None:
                    rows.append([label, f"{value:.0f}"])
            sections.append(format_table(
                ["measure", "value"], rows, title="Fleet",
            ))

        searches = _by_label(self.metrics, "search.evaluations", "algorithm")
        if searches:
            runs = _by_label(self.metrics, "search.runs", "algorithm")
            rows = [[algo, f"{runs.get(algo, 0):.0f}", f"{count:.0f}"]
                    for algo, count in sorted(searches.items())]
            sections.append(format_table(
                ["search algorithm", "runs", "evaluations"], rows,
                title="Search",
            ))

        if self.spans:
            rows = []
            for name, stats in self.spans.items():
                mean_ms = (stats["seconds"] / stats["count"]) * 1e3
                rows.append([name, f"{stats['count']:.0f}",
                             f"{stats['seconds']:.4g}", f"{mean_ms:.3g}"])
            sections.append(format_table(
                ["span", "count", "total (s)", "mean (ms)"], rows,
                title="Host-time spans",
            ))

        counters = self.metrics.get("counters", [])
        if counters:
            rows = []
            for entry in counters:
                labels = ",".join(f"{k}={v}"
                                  for k, v in sorted(entry["labels"].items()))
                rows.append([entry["name"], labels, f"{entry['value']:.6g}"])
            sections.append(format_table(
                ["counter", "labels", "value"], rows, title="All counters",
            ))
        return "\n\n".join(sections)
