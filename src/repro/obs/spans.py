"""Nested timed spans over host time.

Overview
--------
Metrics answer "how much work happened"; spans answer "where the host
time went". A :func:`span` context manager opens a named, tagged span;
spans opened inside it become its children, so one design run yields a
tree like::

    design
    └── search (algorithm=greedy)
        ├── calibrate (cpu=0.25 ...)
        └── run_plan × 120

Span durations are **host** ``time.perf_counter`` seconds — the cost of
running the reproduction itself — deliberately distinct from the
*simulated* seconds the performance model produces, which flow through
the metrics registry (``sim.seconds``). A :class:`repro.obs.report.RunReport`
shows both, which is how "the search took 40 ms of host time to decide
about 1.9 simulated seconds of workload" becomes visible.

Mechanics
---------
* The active span stack is per-thread (``threading.local``); concurrent
  threads each get their own tree.
* Finished root spans are kept on a bounded list
  (:data:`SPAN_ROOT_CAP`); beyond the cap, trees are dropped and
  counted in :attr:`SpanRecorder.dropped_roots` instead of growing
  memory without bound.
* Aggregate statistics per span name (count, total/min/max seconds)
  are maintained incrementally for **every** finished span, including
  those whose trees were dropped — reports use the aggregates, the
  trees exist for interactive digging.

Usage
-----
::

    from repro.obs import span, get_recorder

    with span("design", algorithm="greedy"):
        with span("calibrate", cpu="0.25"):
            ...

    get_recorder().aggregate()   # {"design": {"count": 1, ...}, ...}
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

#: Finished root-span trees retained; older roots beyond this are dropped
#: (their aggregate statistics are still recorded).
SPAN_ROOT_CAP = 1000


class Span:
    """One timed, tagged region; children are spans opened inside it."""

    __slots__ = ("name", "tags", "start", "end", "children")

    def __init__(self, name: str, tags: Dict[str, str]):
        self.name = name
        self.tags = tags
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.children: List["Span"] = []

    @property
    def duration(self) -> float:
        """Elapsed host seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def as_dict(self) -> dict:
        """Plain-data form (children included recursively)."""
        return {
            "name": self.name,
            "tags": dict(self.tags),
            "seconds": self.duration,
            "children": [child.as_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        state = f"{self.duration * 1e3:.2f}ms" if self.end else "open"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class SpanRecorder:
    """Collects finished span trees and per-name aggregates."""

    def __init__(self, root_cap: int = SPAN_ROOT_CAP):
        self._root_cap = root_cap
        self._lock = threading.Lock()
        self._local = threading.local()
        self.roots: List[Span] = []
        self.dropped_roots = 0
        self._aggregate: Dict[str, Dict[str, float]] = {}

    # -- the active stack ---------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **tags: str) -> Iterator[Span]:
        """Open a span; nests under the current span of this thread."""
        node = Span(name, {k: str(v) for k, v in tags.items()})
        stack = self._stack()
        parent = stack[-1] if stack else None
        stack.append(node)
        try:
            yield node
        finally:
            node.end = time.perf_counter()
            stack.pop()
            if parent is not None:
                parent.children.append(node)
            else:
                with self._lock:
                    if len(self.roots) < self._root_cap:
                        self.roots.append(node)
                    else:
                        self.dropped_roots += 1
            self._record(node)

    def _record(self, node: Span) -> None:
        with self._lock:
            stats = self._aggregate.get(node.name)
            if stats is None:
                stats = self._aggregate[node.name] = {
                    "count": 0, "seconds": 0.0,
                    "min_seconds": float("inf"), "max_seconds": 0.0,
                }
            stats["count"] += 1
            stats["seconds"] += node.duration
            stats["min_seconds"] = min(stats["min_seconds"], node.duration)
            stats["max_seconds"] = max(stats["max_seconds"], node.duration)

    # -- reading ------------------------------------------------------------

    def aggregate(self) -> Dict[str, Dict[str, float]]:
        """Per-name statistics over every finished span (plain copy)."""
        with self._lock:
            return {name: dict(stats)
                    for name, stats in sorted(self._aggregate.items())}

    def total_seconds(self) -> float:
        """Host seconds across finished root spans (non-overlapping work)."""
        with self._lock:
            return sum(root.duration for root in self.roots)

    def as_dicts(self) -> List[dict]:
        """Retained root trees as plain data."""
        with self._lock:
            return [root.as_dict() for root in self.roots]

    def reset(self) -> None:
        """Drop recorded trees and aggregates (open spans are unaffected)."""
        with self._lock:
            self.roots.clear()
            self.dropped_roots = 0
            self._aggregate.clear()


#: Process-wide default recorder used by the library's instrumentation.
_DEFAULT = SpanRecorder()


def get_recorder() -> SpanRecorder:
    """The process-wide default span recorder."""
    return _DEFAULT


def span(name: str, **tags: str):
    """``get_recorder().span(...)`` — open a span on the default recorder."""
    return _DEFAULT.span(name, **tags)


def reset() -> None:
    """Reset the default recorder."""
    _DEFAULT.reset()
