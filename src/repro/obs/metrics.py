"""Process-wide metrics: counters, gauges, histograms, timers.

Overview
--------
Everything this library optimizes for is *counted work* — optimizer
calls, calibration experiments, buffer-pool hits, simulated seconds.
Before this module those counts lived on whichever object happened to
do the work (``SearchResult.evaluations``, ``CalibrationCache``
internals, ``WorkTrace`` fields). A :class:`MetricsRegistry` gives them
one process-wide surface so a whole design run can be accounted for and
compared across PRs without threading counters through every call.

The registry is dependency-free (standard library only), thread-safe,
and cheap: recording a sample on an already-created instrument is one
lock acquisition and one or two float updates.

Instruments
-----------
* :class:`Counter` — monotonically non-decreasing total
  (``inc(amount)``). Fractional amounts are allowed so simulated
  seconds can be accumulated.
* :class:`Gauge` — last-write-wins value (``set(value)``), for levels
  like buffer-pool hit ratio or resident pages.
* :class:`Histogram` — ``observe(value)`` keeps exact count/sum/min/max
  plus a bounded sample reservoir for quantile estimates.
* Timers are histograms observed through
  :meth:`MetricsRegistry.timer`, a context manager that records elapsed
  host seconds.

Every instrument is identified by a dotted name plus optional labels
(``counter("search.evaluations", algorithm="greedy")``); distinct label
sets are distinct series. Re-requesting a name with a different
instrument kind raises :class:`~repro.util.errors.ObservabilityError`.

Usage
-----
Instrumented library code uses the module-level helpers, which proxy a
process-wide default registry::

    from repro.obs import metrics

    metrics.counter("cost_model.evaluations", model="optimizer").inc()
    with metrics.timer("search.seconds", algorithm="greedy"):
        ...

Tests needing isolation either construct a private
:class:`MetricsRegistry` or call :func:`reset` first;
:meth:`MetricsRegistry.snapshot` returns plain dicts detached from the
live instruments, so a captured snapshot never changes retroactively.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.util.errors import ObservabilityError

#: Cap on stored histogram samples; beyond it the reservoir keeps every
#: k-th observation so long runs stay bounded in memory.
HISTOGRAM_SAMPLE_CAP = 1024

LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Dict[str, str]) -> LabelsKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically non-decreasing total."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Dict[str, str], lock: threading.Lock):
        self.name = name
        self.labels = dict(labels)
        self._value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (>= 0) to the total."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A last-write-wins level (may move in either direction)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Dict[str, str], lock: threading.Lock):
        self.name = name
        self.labels = dict(labels)
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """A distribution: exact count/sum/min/max + sampled quantiles."""

    __slots__ = ("name", "labels", "count", "total", "min", "max",
                 "_samples", "_stride", "_seen", "_lock")

    def __init__(self, name: str, labels: Dict[str, str], lock: threading.Lock):
        self.name = name
        self.labels = dict(labels)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._stride = 1  # keep every _stride-th observation
        self._seen = 0
        self._lock = lock

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            self._seen += 1
            if self._seen % self._stride == 0:
                self._samples.append(value)
                if len(self._samples) > HISTOGRAM_SAMPLE_CAP:
                    # Decimate: keep every other sample, double the stride.
                    self._samples = self._samples[::2]
                    self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate *q*-quantile (0..1) from the sample reservoir."""
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile {q} outside [0, 1]")
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return 0.0
        index = min(len(samples) - 1, int(q * len(samples)))
        return samples[index]


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    Instruments are created on first request and shared afterwards;
    ``snapshot()`` serializes the whole registry to plain data and
    ``reset()`` clears it (instrument handles held by callers are
    dropped, not zeroed — re-request after a reset).
    """

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, LabelsKey], object] = {}
        self._kinds: Dict[str, str] = {}

    # -- instrument access -------------------------------------------------

    def _get(self, kind: str, name: str, labels: Dict[str, str]):
        key = (name, _labels_key(labels))
        with self._lock:
            existing_kind = self._kinds.get(name)
            if existing_kind is not None and existing_kind != kind:
                raise ObservabilityError(
                    f"metric {name!r} already registered as a "
                    f"{existing_kind}, not a {kind}"
                )
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = self._KINDS[kind](name, labels, self._lock)
                self._instruments[key] = instrument
                self._kinds[name] = kind
            return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create the counter *name* for this label set."""
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get or create the gauge *name* for this label set."""
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        """Get or create the histogram *name* for this label set."""
        return self._get("histogram", name, labels)

    @contextmanager
    def timer(self, name: str, **labels: str) -> Iterator[Histogram]:
        """Record elapsed host seconds of the ``with`` body into *name*."""
        histogram = self.histogram(name, **labels)
        start = time.perf_counter()
        try:
            yield histogram
        finally:
            histogram.observe(time.perf_counter() - start)

    # -- reading ------------------------------------------------------------

    def value(self, name: str, **labels: str) -> float:
        """Current value of one counter/gauge series (0.0 if absent)."""
        key = (name, _labels_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            return 0.0
        return instrument.value  # type: ignore[union-attr]

    def total(self, name: str) -> float:
        """Sum of a counter/gauge across all label sets (0.0 if absent)."""
        with self._lock:
            instruments = [i for (n, _k), i in self._instruments.items()
                           if n == name]
        return sum(getattr(i, "value", 0.0) for i in instruments)

    def snapshot(self) -> Dict[str, list]:
        """Plain-data copy of every instrument, isolated from later updates."""
        with self._lock:
            instruments = list(self._instruments.values())
        out: Dict[str, list] = {"counters": [], "gauges": [], "histograms": []}
        for instrument in instruments:
            if isinstance(instrument, Counter):
                out["counters"].append({
                    "name": instrument.name, "labels": dict(instrument.labels),
                    "value": instrument.value,
                })
            elif isinstance(instrument, Gauge):
                out["gauges"].append({
                    "name": instrument.name, "labels": dict(instrument.labels),
                    "value": instrument.value,
                })
            else:
                out["histograms"].append({
                    "name": instrument.name, "labels": dict(instrument.labels),
                    "count": instrument.count, "sum": instrument.total,
                    "min": instrument.min, "max": instrument.max,
                    "mean": instrument.mean,
                    "p50": instrument.quantile(0.5),
                    "p95": instrument.quantile(0.95),
                })
        for series in out.values():
            series.sort(key=lambda entry: (entry["name"],
                                           sorted(entry["labels"].items())))
        return out

    def counter_state(self) -> Dict[Tuple[str, LabelsKey], float]:
        """Point-in-time counter values, keyed by (name, labels).

        The shape is designed for delta replay across process
        boundaries (see :meth:`apply_counter_deltas`): keys are plain
        picklable tuples, and subtracting two states yields the
        increments that happened in between.
        """
        with self._lock:
            return {key: instrument.value
                    for key, instrument in self._instruments.items()
                    if isinstance(instrument, Counter)}

    def apply_counter_deltas(
            self,
            deltas: Iterable[Tuple[Tuple[str, LabelsKey], float]]) -> None:
        """Replay counter increments captured in another process.

        Forked pool workers mutate a copy-on-write clone of this
        registry that the parent never sees; the evaluation engine has
        each worker diff its :meth:`counter_state` around the task and
        ship the increments back, and the coordinator replays them here
        in task order — which is what keeps every counter bit-identical
        between process-pool and serial runs.
        """
        for (name, labels_key), amount in deltas:
            if amount > 0:
                self.counter(name, **dict(labels_key)).inc(amount)

    def reset(self) -> None:
        """Drop every instrument (a fresh accounting period)."""
        with self._lock:
            self._instruments.clear()
            self._kinds.clear()


#: The process-wide default registry used by the library's own
#: instrumentation and by the module-level helpers below.
_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT


def counter(name: str, **labels: str) -> Counter:
    """``get_registry().counter(...)``."""
    return _DEFAULT.counter(name, **labels)


def gauge(name: str, **labels: str) -> Gauge:
    """``get_registry().gauge(...)``."""
    return _DEFAULT.gauge(name, **labels)


def histogram(name: str, **labels: str) -> Histogram:
    """``get_registry().histogram(...)``."""
    return _DEFAULT.histogram(name, **labels)


def timer(name: str, **labels: str):
    """``get_registry().timer(...)``."""
    return _DEFAULT.timer(name, **labels)


def reset() -> None:
    """Reset the default registry (tests, or a new accounting period)."""
    _DEFAULT.reset()
