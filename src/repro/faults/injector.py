"""Turning a fault plan into injected failures, deterministically.

A :class:`FaultInjector` sits between the simulated measurement stack
and its callers. The perf model (:class:`repro.virt.perf.VMPerfModel`)
routes every measured elapsed time through
:meth:`FaultInjector.on_measurement`, and the calibration runner asks
:meth:`FaultInjector.on_boot` before booting a calibration VM. Each
call either passes the value through, perturbs it (outlier, hang), or
raises a transient :class:`~repro.util.errors.MeasurementFault` —
decided by a :class:`~repro.util.rng.DeterministicRng` forked from the
plan's seed, so a given plan produces the same fault sequence every
run.

Every injected fault is counted on the ``faults.injected`` metric
(labelled ``kind=transient|outlier|hang|boot|dead``), so a
:class:`~repro.obs.report.RunReport` can state how hostile the
environment actually was next to how the pipeline coped.
"""

from __future__ import annotations

from typing import Tuple

from repro.faults.plan import FaultPlan
from repro.obs import metrics
from repro.util.errors import MeasurementFault
from repro.util.rng import DeterministicRng


class FaultInjector:
    """Injects the failures a :class:`FaultPlan` describes."""

    def __init__(self, plan: FaultPlan):
        self._plan = plan
        self._rng = DeterministicRng(plan.seed).fork(f"faults:{plan.name}")
        self._measurements = 0

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    @property
    def measurements_seen(self) -> int:
        """How many measurements have passed through this injector."""
        return self._measurements

    def clone(self) -> "FaultInjector":
        """A fresh injector replaying this plan from the start."""
        return FaultInjector(self._plan)

    # -- injection sites ---------------------------------------------------

    def on_boot(self, shares: Tuple[float, float, float]) -> None:
        """Called before a VM boots; may raise a transient fault."""
        if self._plan.is_dead(shares):
            self._count("dead")
            raise MeasurementFault(
                f"allocation {shares} is permanently degraded")
        if self._roll(self._plan.boot_failure_rate):
            self._count("boot")
            raise MeasurementFault(f"VM boot failed at allocation {shares}")

    def on_measurement(self, shares: Tuple[float, float, float],
                       seconds: float) -> float:
        """Called with every measured elapsed time; returns the value the
        caller observes (possibly perturbed), or raises a transient
        :class:`MeasurementFault`."""
        self._measurements += 1
        if self._plan.is_dead(shares):
            self._count("dead")
            raise MeasurementFault(
                f"allocation {shares} is permanently degraded")
        if self._measurements <= self._plan.fail_first_n:
            self._count("transient")
            raise MeasurementFault(
                f"injected failure {self._measurements} of the first "
                f"{self._plan.fail_first_n}")
        # Independent draws per channel: a plan's rates compose rather
        # than shadow each other, and removing one channel does not
        # shift another's stream within a single measurement.
        if self._roll(self._plan.transient_rate):
            self._count("transient")
            raise MeasurementFault(
                f"injected transient fault at allocation {shares}")
        if self._roll(self._plan.hang_rate):
            self._count("hang")
            return seconds + self._plan.hang_seconds
        if self._roll(self._plan.outlier_rate):
            self._count("outlier")
            return seconds * self._plan.outlier_magnitude
        return seconds

    # -- internals ---------------------------------------------------------

    def _roll(self, rate: float) -> bool:
        if rate <= 0.0:
            return False
        return self._rng.uniform(0.0, 1.0) < rate

    @staticmethod
    def _count(kind: str) -> None:
        metrics.counter("faults.injected", kind=kind).inc()
