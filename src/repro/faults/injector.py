"""Turning a fault plan into injected failures, deterministically.

A :class:`FaultInjector` sits between the simulated measurement stack
and its callers. The perf model (:class:`repro.virt.perf.VMPerfModel`)
routes every measured elapsed time through
:meth:`FaultInjector.on_measurement`, and the calibration runner asks
:meth:`FaultInjector.on_boot` before booting a calibration VM. Each
call either passes the value through, perturbs it (outlier, hang), or
raises a transient :class:`~repro.util.errors.MeasurementFault` —
decided by a :class:`~repro.util.rng.DeterministicRng` forked from the
plan's seed, so a given plan produces the same fault sequence every
run.

Every injected fault is counted on the ``faults.injected`` metric
(labelled ``kind=transient|outlier|hang|boot|dead|vm_crash|
host_degrade|migration``), so a :class:`~repro.obs.report.RunReport`
can state how hostile the environment actually was next to how the
pipeline coped.

Two independent randomness streams
----------------------------------
Measurement faults draw from the ``faults:{name}`` stream; the
infrastructure probes (:meth:`on_vm_probe`, :meth:`on_host_probe`,
:meth:`on_migration`) draw from a separate ``faults:{name}:ops``
stream. Watchdog probing therefore never perturbs the measurement
fault sequence — a run supervised by a health monitor injects the same
measurement faults as an unsupervised one under the same plan.

Per-unit determinism for resumable runs
---------------------------------------
With ``per_unit=True`` the injector re-forks its measurement stream at
every :meth:`begin_unit` boundary from ``faults:{name}:unit:{label}``.
The fault sequence inside a unit then depends only on the plan and the
unit's label, not on how many measurements ran before it — which is
what lets a resumed run (that skips already-journaled units) observe
bit-identical faults, and therefore produce bit-identical results, to
an uninterrupted one. ``fail_first_n`` counts per unit in this mode.

Per-stream forking for batched work
-----------------------------------
:meth:`fork_stream` extends the same idea below the unit level: it
derives a child injector whose measurement stream depends only on the
current unit context and the stream's label. Batched callers (the
parallel calibration trials) give every concurrent task its own forked
stream, so the faults a task observes are a function of the task's
identity alone — never of which worker ran it or in what order — which
is what makes an N-worker run bit-identical to a 1-worker run.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.faults.plan import FaultPlan
from repro.obs import metrics
from repro.util.errors import MeasurementFault
from repro.util.rng import DeterministicRng


class FaultInjector:
    """Injects the failures a :class:`FaultPlan` describes."""

    def __init__(self, plan: FaultPlan, per_unit: bool = False,
                 buffer_counts: bool = False):
        self._plan = plan
        self._per_unit = per_unit
        #: Label of the measurement stream currently in force; children
        #: forked with :meth:`fork_stream` extend it, so their streams
        #: are scoped to the current unit.
        self._context = f"faults:{plan.name}"
        self._rng = DeterministicRng(plan.seed).fork(self._context)
        self._ops_rng = DeterministicRng(plan.seed).fork(
            f"faults:{plan.name}:ops")
        self._measurements = 0
        #: With ``buffer_counts`` the injector accumulates fault counts
        #: here instead of incrementing ``faults.injected`` directly —
        #: how forked children stay metric-silent inside pool workers
        #: (a forked process's increments would be lost; a thread's
        #: would land in nondeterministic interleavings). The batching
        #: caller drains the buffer into the metric serially.
        self.fault_counts: Optional[Dict[str, int]] = (
            {} if buffer_counts else None)

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    @property
    def per_unit(self) -> bool:
        """Whether measurement streams re-fork at unit boundaries."""
        return self._per_unit

    @property
    def measurements_seen(self) -> int:
        """How many measurements have passed through this injector."""
        return self._measurements

    def clone(self) -> "FaultInjector":
        """A fresh injector replaying this plan from the start."""
        return FaultInjector(self._plan, per_unit=self._per_unit)

    def begin_unit(self, label: str) -> None:
        """Mark the start of a named unit of work (e.g. one calibration).

        A no-op unless the injector was built with ``per_unit=True``, in
        which case the measurement stream is re-forked from the unit's
        label so the faults inside the unit are independent of run
        history (see the module docstring).
        """
        if not self._per_unit:
            return
        self._context = f"faults:{self._plan.name}:unit:{label}"
        self._rng = DeterministicRng(self._plan.seed).fork(self._context)
        self._measurements = 0

    def fork_stream(self, label: str) -> "FaultInjector":
        """A child injector with its own independent measurement stream.

        The child's stream is derived from the plan's seed, this
        injector's current context (the unit label, in per-unit mode)
        and *label* — never from how many measurements have already run.
        Forking is pure: it does not advance this injector's streams,
        so forking the same labels yields the same children regardless
        of order or concurrency. The child shares the plan (and thus
        ``is_dead`` allocations) but counts ``fail_first_n`` against
        its own stream, and it *buffers* its fault counts
        (:attr:`fault_counts`) instead of touching the metrics registry
        — children are built to run inside pool workers, where direct
        increments would be lost (forked processes) or interleave
        nondeterministically (threads). Callers drain the buffer with
        :meth:`drain_counts` from the coordinating thread.
        """
        child = FaultInjector(self._plan, per_unit=False, buffer_counts=True)
        child._context = f"{self._context}:stream:{label}"
        child._rng = DeterministicRng(self._plan.seed).fork(child._context)
        return child

    def drain_counts(self) -> Dict[str, int]:
        """Take (and reset) the buffered fault counts of a forked child.

        Returns an empty mapping for an unbuffered injector, whose
        counts already went to the ``faults.injected`` metric.
        """
        if self.fault_counts is None:
            return {}
        counts, self.fault_counts = self.fault_counts, {}
        return counts

    # -- injection sites ---------------------------------------------------

    def on_boot(self, shares: Tuple[float, float, float]) -> None:
        """Called before a VM boots; may raise a transient fault."""
        if self._plan.is_dead(shares):
            self._count("dead")
            raise MeasurementFault(
                f"allocation {shares} is permanently degraded")
        if self._roll(self._plan.boot_failure_rate):
            self._count("boot")
            raise MeasurementFault(f"VM boot failed at allocation {shares}")

    def on_measurement(self, shares: Tuple[float, float, float],
                       seconds: float) -> float:
        """Called with every measured elapsed time; returns the value the
        caller observes (possibly perturbed), or raises a transient
        :class:`MeasurementFault`."""
        self._measurements += 1
        if self._plan.is_dead(shares):
            self._count("dead")
            raise MeasurementFault(
                f"allocation {shares} is permanently degraded")
        if self._measurements <= self._plan.fail_first_n:
            self._count("transient")
            raise MeasurementFault(
                f"injected failure {self._measurements} of the first "
                f"{self._plan.fail_first_n}")
        # Independent draws per channel: a plan's rates compose rather
        # than shadow each other, and removing one channel does not
        # shift another's stream within a single measurement.
        if self._roll(self._plan.transient_rate):
            self._count("transient")
            raise MeasurementFault(
                f"injected transient fault at allocation {shares}")
        if self._roll(self._plan.hang_rate):
            self._count("hang")
            return seconds + self._plan.hang_seconds
        if self._roll(self._plan.outlier_rate):
            self._count("outlier")
            return seconds * self._plan.outlier_magnitude
        return seconds

    # -- infrastructure probes (ops stream) --------------------------------

    def on_vm_probe(self, vm_name: str) -> bool:
        """Liveness probe for a running VM; True means it crashed."""
        if self._ops_roll(self._plan.vm_crash_rate):
            self._count("vm_crash")
            return True
        return False

    def on_host_probe(self, host_name: str) -> Optional[float]:
        """Health probe for a host.

        Returns the plan's ``host_degrade_factor`` when the probe finds
        the host degraded (capacity multiplied by the factor), or
        ``None`` when the host is healthy.
        """
        if self._ops_roll(self._plan.host_degrade_rate):
            self._count("host_degrade")
            return self._plan.host_degrade_factor
        return None

    def on_migration(self, vm_name: str, source: str, target: str) -> bool:
        """Pre-migration check; True means this attempt fails."""
        if self._ops_roll(self._plan.migration_failure_rate):
            self._count("migration")
            return True
        return False

    # -- internals ---------------------------------------------------------

    def _roll(self, rate: float) -> bool:
        if rate <= 0.0:
            return False
        return self._rng.uniform(0.0, 1.0) < rate

    def _ops_roll(self, rate: float) -> bool:
        if rate <= 0.0:
            return False
        return self._ops_rng.uniform(0.0, 1.0) < rate

    def _count(self, kind: str) -> None:
        if self.fault_counts is not None:
            self.fault_counts[kind] = self.fault_counts.get(kind, 0) + 1
        else:
            metrics.counter("faults.injected", kind=kind).inc()
