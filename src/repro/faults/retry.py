"""Retry policies and robust aggregation for flaky measurements.

The calibration pipeline survives a faulty environment with three
standard tools, all configured by one :class:`RetryPolicy`:

* **retry with exponential backoff** — transient
  :class:`~repro.util.errors.MeasurementFault`\\ s are retried up to
  ``max_attempts`` times; each retry advances a *simulated* backoff
  clock (``backoff_seconds``), never the host clock, so resilient runs
  stay fast and deterministic.
* **repeated trials with median aggregation** — each measurement is
  taken ``trials`` times and the median of the surviving trials is
  reported, so a single bad trial cannot move the result.
* **MAD outlier rejection** — trials whose modified z-score (median
  absolute deviation based) exceeds ``mad_threshold`` are discarded
  before the median is taken; when MAD is zero (identical trials plus
  one outlier) a relative-deviation fallback still catches the outlier.

``measurement_deadline_seconds`` bounds a single trial in *simulated*
time: an injected hang returns a huge elapsed time, the runner sees it
exceed the deadline and converts it into a retryable
:class:`~repro.util.errors.MeasurementTimeout`.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.util.errors import CalibrationError

#: Consistency constant relating MAD to the standard deviation of a
#: normal distribution (0.6745 = Φ⁻¹(0.75)).
_MAD_TO_SIGMA = 0.6745

#: When every surviving deviation is zero (MAD == 0), a trial is still
#: rejected if it deviates from the median by more than this fraction.
_ZERO_MAD_RELATIVE_CUTOFF = 0.5


@dataclass(frozen=True)
class RetryPolicy:
    """How hard one calibration experiment fights back against faults."""

    #: Attempts per trial (first try included) before giving up and
    #: escalating the transient fault into a permanent CalibrationError.
    max_attempts: int = 4
    #: Simulated seconds of backoff after the first failed attempt.
    backoff_base_seconds: float = 0.05
    #: Backoff growth factor per additional failed attempt.
    backoff_multiplier: float = 2.0
    #: Ceiling on a single backoff wait (simulated seconds).
    max_backoff_seconds: float = 5.0
    #: Measured trials per calibration query repetition; the reported
    #: value is the median of the trials surviving MAD rejection.
    trials: int = 1
    #: Modified z-score above which a trial is rejected as an outlier.
    mad_threshold: float = 3.5
    #: Simulated-seconds deadline for one trial; beyond it the trial is
    #: a MeasurementTimeout (retryable). Infinite by default.
    measurement_deadline_seconds: float = float("inf")

    def __post_init__(self):
        if self.max_attempts < 1:
            raise CalibrationError("max_attempts must be at least 1")
        if self.trials < 1:
            raise CalibrationError("trials must be at least 1")
        if self.backoff_base_seconds < 0 or self.max_backoff_seconds < 0:
            raise CalibrationError("backoff seconds must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise CalibrationError("backoff_multiplier must be >= 1")
        if self.mad_threshold <= 0:
            raise CalibrationError("mad_threshold must be positive")
        if self.measurement_deadline_seconds <= 0:
            raise CalibrationError("measurement deadline must be positive")

    @classmethod
    def resilient(cls) -> "RetryPolicy":
        """The configuration chaos runs use: enough trials for MAD
        rejection to work and a finite per-trial deadline."""
        return cls(max_attempts=6, trials=5,
                   measurement_deadline_seconds=120.0)

    def backoff_seconds(self, failed_attempts: int) -> float:
        """Simulated wait after *failed_attempts* (>= 1) failures."""
        if failed_attempts < 1:
            raise CalibrationError("backoff requires at least one failure")
        wait = (self.backoff_base_seconds
                * self.backoff_multiplier ** (failed_attempts - 1))
        return min(wait, self.max_backoff_seconds)


def mad_reject(values: Sequence[float],
               threshold: float = 3.5) -> Tuple[List[float], List[int]]:
    """Split *values* into (kept, rejected_indices) by modified z-score.

    Uses the median absolute deviation so that up to half the trials can
    be wild without dragging the acceptance band along (the failure mode
    of mean/stddev filtering). With fewer than three values nothing is
    rejected — there is no robust center to reject against.
    """
    values = list(values)
    if len(values) < 3:
        return values, []
    center = statistics.median(values)
    deviations = [abs(v - center) for v in values]
    mad = statistics.median(deviations)
    rejected: List[int] = []
    if mad > 0:
        for i, deviation in enumerate(deviations):
            if _MAD_TO_SIGMA * deviation / mad > threshold:
                rejected.append(i)
    else:
        # All-but-outliers identical: keep values within a relative band.
        cutoff = _ZERO_MAD_RELATIVE_CUTOFF * max(abs(center), 1e-12)
        rejected = [i for i, d in enumerate(deviations) if d > cutoff]
    kept = [v for i, v in enumerate(values) if i not in set(rejected)]
    if not kept:  # never reject everything; fall back to the median
        return [center], list(range(len(values)))
    return kept, rejected


def robust_seconds(trials: Sequence[float],
                   threshold: float = 3.5) -> Tuple[float, int]:
    """Median-of-survivors aggregate: (seconds, n_rejected)."""
    kept, rejected = mad_reject(trials, threshold)
    return statistics.median(kept), len(rejected)
