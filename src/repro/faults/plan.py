"""Fault plans: declarative, seeded descriptions of what goes wrong.

A :class:`FaultPlan` says *what* failures the simulated measurement
stack should exhibit — transient measurement faults, outlier timings,
hangs past the measurement deadline, VM boot failures, permanently dead
allocations — and with what probability. It is pure data: the matching
:class:`repro.faults.injector.FaultInjector` turns a plan into actual
raised :class:`~repro.util.errors.MeasurementFault`\\ s and perturbed
timings, deterministically from ``seed``.

Named plans (:data:`NAMED_PLANS`, :meth:`FaultPlan.named`) give the CLI
and the chaos benchmark a shared vocabulary of environments, from
``none`` (no faults) to ``hostile`` (the acceptance regime: 20%
transient failures, 5% outliers, occasional hangs) and ``turbulent``
(infrastructure-level trouble: VM crashes, host degradation, failed
migrations — the regime the watchdog and supervisor recover from).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.util.errors import AllocationError

#: Share tuples are rounded to this many decimals when matching an
#: allocation against ``dead_allocations`` (mirrors the calibration
#: cache's key quantization).
_DEAD_DECIMALS = 4


@dataclass(frozen=True)
class FaultPlan:
    """Declarative fault configuration for the simulated stack.

    Rates are per-measurement (or per boot attempt) probabilities in
    ``[0, 1]``; all randomness is derived from ``seed`` so two
    injectors built from equal plans inject identical fault sequences.
    """

    name: str = "none"
    seed: int = 0
    #: Probability a measurement raises a transient ``MeasurementFault``.
    transient_rate: float = 0.0
    #: Probability a measurement returns an outlier timing instead.
    outlier_rate: float = 0.0
    #: Multiplier applied to an outlier measurement's seconds.
    outlier_magnitude: float = 10.0
    #: Probability a measurement hangs (its simulated time jumps past
    #: any sane deadline; the runner converts this into a timeout).
    hang_rate: float = 0.0
    #: Simulated seconds a hung measurement appears to take.
    hang_seconds: float = 600.0
    #: Probability a VM boot raises a transient ``MeasurementFault``.
    boot_failure_rate: float = 0.0
    #: Probability a liveness probe finds a running VM crashed
    #: (per watchdog probe; the health monitor restarts it).
    vm_crash_rate: float = 0.0
    #: Probability a host probe finds the host degraded (per probe).
    host_degrade_rate: float = 0.0
    #: Remaining capacity fraction after a host degrades (in ``(0, 1)``).
    host_degrade_factor: float = 0.5
    #: Probability a live migration fails mid-transfer and must retry.
    migration_failure_rate: float = 0.0
    #: Deterministically fail the first N measurements (tests).
    fail_first_n: int = 0
    #: Allocations (cpu, memory, io) that are permanently degraded:
    #: every boot and measurement against them fails, exhausting any
    #: retry budget.
    dead_allocations: Tuple[Tuple[float, float, float], ...] = field(
        default_factory=tuple)

    def __post_init__(self):
        for attr in ("transient_rate", "outlier_rate", "hang_rate",
                     "boot_failure_rate", "vm_crash_rate",
                     "host_degrade_rate", "migration_failure_rate"):
            rate = getattr(self, attr)
            if not 0.0 <= rate <= 1.0:
                raise AllocationError(
                    f"fault plan {self.name!r}: {attr}={rate} outside [0, 1]")
        if self.outlier_magnitude <= 1.0:
            raise AllocationError(
                f"fault plan {self.name!r}: outlier_magnitude must exceed 1")
        if not 0.0 < self.host_degrade_factor < 1.0:
            raise AllocationError(
                f"fault plan {self.name!r}: host_degrade_factor="
                f"{self.host_degrade_factor} outside (0, 1)")
        if self.fail_first_n < 0:
            raise AllocationError(
                f"fault plan {self.name!r}: fail_first_n must be >= 0")
        object.__setattr__(self, "dead_allocations", tuple(
            tuple(round(float(s), _DEAD_DECIMALS) for s in allocation)
            for allocation in self.dead_allocations
        ))

    # -- queries -----------------------------------------------------------

    @property
    def is_benign(self) -> bool:
        """True when the plan can never perturb or fail anything."""
        return (self.transient_rate == 0.0 and self.outlier_rate == 0.0
                and self.hang_rate == 0.0 and self.boot_failure_rate == 0.0
                and self.vm_crash_rate == 0.0
                and self.host_degrade_rate == 0.0
                and self.migration_failure_rate == 0.0
                and self.fail_first_n == 0 and not self.dead_allocations)

    def is_dead(self, shares: Tuple[float, float, float]) -> bool:
        """Whether *shares* (cpu, memory, io) is permanently degraded."""
        key = tuple(round(float(s), _DEAD_DECIMALS) for s in shares)
        return key in self.dead_allocations

    def with_overrides(self, **kwargs) -> "FaultPlan":
        """A copy with some fields replaced (CLI flag overrides)."""
        return replace(self, **kwargs)

    # -- named plans -------------------------------------------------------

    @classmethod
    def named(cls, name: str) -> "FaultPlan":
        """Look up one of the :data:`NAMED_PLANS` by name."""
        try:
            return NAMED_PLANS[name]
        except KeyError:
            raise AllocationError(
                f"unknown fault plan {name!r}; "
                f"available: {sorted(NAMED_PLANS)}"
            ) from None


#: The shared vocabulary of environments, mildest first.
NAMED_PLANS: Dict[str, FaultPlan] = {
    "none": FaultPlan(name="none"),
    "flaky": FaultPlan(name="flaky", transient_rate=0.1),
    "noisy": FaultPlan(name="noisy", transient_rate=0.2, outlier_rate=0.05,
                       outlier_magnitude=8.0),
    "hostile": FaultPlan(name="hostile", transient_rate=0.2,
                         outlier_rate=0.05, hang_rate=0.02,
                         boot_failure_rate=0.1),
    "turbulent": FaultPlan(name="turbulent", transient_rate=0.1,
                           vm_crash_rate=0.15, host_degrade_rate=0.05,
                           migration_failure_rate=0.2),
}
