"""repro.faults — deterministic fault injection for the simulated stack.

The paper's calibration pipeline assumes every measurement succeeds;
real virtualized environments do not cooperate (transient failures,
jittery outliers, hung runs, dead hosts). This package supplies both
halves of making the reproduction robust:

* the *attack*: a seeded :class:`FaultPlan` describing what goes wrong
  and a :class:`FaultInjector` that makes the perf model and the
  calibration runner actually misbehave that way, deterministically;
* the *defense configuration*: :class:`RetryPolicy` plus the robust
  aggregation helpers (:func:`mad_reject`, :func:`robust_seconds`) the
  calibration runner uses to survive the attack.

Nothing here imports the engine, calibration, or core layers — only
``repro.util`` and ``repro.obs`` — so any layer can take an injector
without creating import cycles. See ``docs/robustness.md`` for the
fault model, the retry knobs, and the fallback chain.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import NAMED_PLANS, FaultPlan
from repro.faults.retry import RetryPolicy, mad_reject, robust_seconds

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "NAMED_PLANS",
    "RetryPolicy",
    "mad_reject",
    "robust_seconds",
]
