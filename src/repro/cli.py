"""Command-line interface.

Exposes the library's main flows without writing Python::

    python -m repro calibrate --cpu 0.5 --memory 0.5 --io 0.5 [--save P.json]
    python -m repro design --scale 0.01 --grid 4 --algorithm exhaustive
    python -m repro design --continuous --surrogate-tol 0.05 [--save P.json]
    python -m repro explain --query Q4 --cpu 0.5
    python -m repro experiment fig3|fig4|fig5
    python -m repro report [--json] [--algorithm greedy]
    python -m repro chaos --plan noisy [--transient-rate 0.2]
    python -m repro chaos --plan turbulent --journal run.journal \
        --watchdog-probes 5
    python -m repro resume run.journal
    python -m repro fleet --hosts 100 --workloads 1000 --workers 0 --baseline
    python -m repro fleet --journal fleet.journal --max-units 500
    python -m repro monitor --plan turbulent --epochs 8 \
        --drift-threshold 0.15 --recal-budget 12 --journal online.journal
    python -m repro design --online --epochs 6
    python -m repro design --co-tune --storage-budget 64 \
        --journal codesign.journal
    python -m repro serve --plan flaky --requests 120 --rate 40 \
        --journal serve.journal
    python -m repro profile --scenario design --smoke

``profile`` runs the deterministic cProfile harness over the seeded
hot flows (calibration, design search, workload execution) and writes
span-aligned hot-frame reports plus flamegraph-style folded stacks
(see ``docs/profiling.md``).

``chaos`` runs the paper's design problem with a fault injector active
(see ``docs/robustness.md``) and prints the design next to a resilience
summary: faults injected, retries, rejected outliers, fallbacks, and
search budget stops. With ``--journal`` the run checkpoints every
completed unit of work; kill it and ``resume`` continues from the
journal, producing a bit-identical design. Exit codes follow the
contract in :func:`main`: 0 success, 2 usage, 3 permanent failure,
4 stopped-early-but-resumable.

``design``, ``chaos`` and ``resume`` accept ``--workers N`` (``0`` =
one per CPU core) and ``--pool serial|thread|process``: cost-model
evaluations and calibration trials then run through a batched
:class:`~repro.parallel.EvaluationEngine`. Results are bit-identical
for every worker count (see ``docs/parallelism.md``).

``design --continuous`` fits a calibration surrogate (an adaptively
refined :class:`~repro.surrogate.ParameterSurface`, built to
``--surrogate-tol`` within ``--surrogate-budget`` calibration requests)
and searches continuous allocations down to steps of
``1/(grid * fine-factor)`` against it — interpolated parameters, no
extra experiments. A search-in-the-loop polish phase then spends the
remaining budget anchoring and refining the lattice around the
allocations the search proposes (see ``docs/surrogate.md``). ``--save``
persists the cache *with* the fit (v3 format); a later ``--load`` of
that file skips the fitting entirely.

``monitor`` closes the loop for an always-on deployment: after an
initial continuous-mode design it runs ``--epochs`` rounds of
observe-detect-repair against a world whose host CPU the fault plan
quietly degrades. A per-region Page–Hinkley test on prediction
residuals raises drift events at ``--drift-threshold``; a budget of
``--recal-budget`` calibration requests is spent on targeted knot
refits (highest drift signal × CV uncertainty first); the search then
warm-starts from the incumbent allocation instead of restarting cold
(see ``docs/drift.md``). With ``--journal`` every observation, drift
event, recalibration and redesign checkpoints, and ``resume``
continues a killed online run bit-identically. ``design --online`` is
the same loop under the default ``turbulent`` plan.

``serve`` runs one deterministic session of the always-on design
service: after a continuous-mode boot fit it drives a seeded open-loop
request trace (concurrent what-ifs batched into single ``cost_many``
calls, a design request every ``--design-every``-th arrival) through
admission control (bounded queue, per-tenant token buckets), deadlines,
and the degradation ladder (fresh search → warm-start → serve-stale →
typed refusal), with a circuit breaker around the fault-injected
calibration path (see ``docs/serve.md``). With ``--journal`` every
calibration, knot refresh and committed incumbent checkpoints, and
``resume`` continues a killed session bit-identically.

``design --co-tune`` opens the paper's second axis — physical design:
Extend-style greedy index selection (hypothetical single-column
indexes seeded from the workload's own predicates, best what-if
benefit per storage page first, under ``--storage-budget`` pages per
VM) alternating with the allocation search to a fixed point. The
total-cost trajectory is monotone by construction. With ``--journal``
every calibration and what-if evaluation checkpoints, and ``resume``
continues a killed co-tuning run to a bit-identical co-design (see
``docs/codesign.md``).

``fleet`` scales the design problem from one box to a synthetic
datacenter: it clusters workloads by cost-curve shape, assigns
clusters to heterogeneous hosts, tunes every host with the single-host
allocation search (fanned out over ``--workers``), and reroutes
worst-fit workloads until total fleet cost converges (see
``docs/fleet.md``). With ``--journal`` every completed host design
checkpoints, and ``resume`` continues a killed fleet run to a
bit-identical final placement.

Every command accepts ``--stats`` (print a run report of the counted
work after the command's own output) and ``--stats-json PATH`` (write
the same report as JSON). ``report`` runs a small end-to-end design and
prints nothing *but* its run report — the quickest way to see what the
observability layer records (see ``docs/observability.md``).

Everything runs on the simulated laboratory machine; see DESIGN.md for
how that machine relates to the paper's testbed.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from typing import List, Optional

from repro import obs
from repro.calibration import CalibrationCache, CalibrationRunner
from repro.core import (
    MeasuredCostModel,
    OptimizerCostModel,
    VirtualizationDesigner,
    VirtualizationDesignProblem,
    WorkloadSpec,
)
from repro.faults import NAMED_PLANS, FaultInjector, FaultPlan, RetryPolicy
from repro.optimizer.whatif import WhatIfOptimizer
from repro.parallel import POOL_KINDS, make_engine
from repro.util.errors import (
    AdmissionError,
    AllocationError,
    CalibrationError,
    RecoveryError,
    ServeError,
)
from repro.util.tables import format_table
from repro.virt.machine import laboratory_machine
from repro.virt.resources import ResourceKind, ResourceVector
from repro.workloads import build_tpch_database, tpch_query
from repro.workloads.workload import Workload

SHARE_LEVELS = (0.25, 0.5, 0.75)


def _allocation(args) -> ResourceVector:
    return ResourceVector.of(cpu=args.cpu, memory=args.memory, io=args.io)


def _add_share_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cpu", type=float, default=0.5,
                        help="CPU share in [0, 1] (default 0.5)")
    parser.add_argument("--memory", type=float, default=0.5,
                        help="memory share in [0, 1] (default 0.5)")
    parser.add_argument("--io", type=float, default=0.5,
                        help="I/O share in [0, 1] (default 0.5)")


def _cache(args) -> CalibrationCache:
    cache = CalibrationCache(CalibrationRunner(laboratory_machine()))
    if getattr(args, "load", None):
        cache.load(args.load)
    return cache


def cmd_calibrate(args) -> int:
    cache = _cache(args)
    params = cache.params_for(_allocation(args))
    rows = sorted(params.as_dict().items())
    print(format_table(["parameter", "value"], rows,
                       title=f"Calibrated P for cpu={args.cpu} "
                             f"memory={args.memory} io={args.io}"))
    if args.save:
        count = cache.save(args.save)
        print(f"\nSaved {count} calibrated point(s) to {args.save}")
    return 0


def _design_continuous(cache, problem, args, engine=None):
    """Run the fit → polish → search pipeline for ``--continuous``."""
    from repro.surrogate import design_continuous

    outcome = design_continuous(
        problem, cache, algorithm=args.algorithm, grid=args.grid,
        fine_factor=args.fine_factor, tolerance=args.surrogate_tol,
        max_calibrations=args.surrogate_budget, engine=engine)
    print(f"Surrogate: {outcome.surface.n_knots} knot(s) from "
          f"{outcome.calibrations} calibration request(s) "
          f"({outcome.fit.refinements} cross-validation refinement(s), "
          f"{outcome.polish_iterations} polish round(s), "
          + ("converged" if outcome.converged else "stopped on budget")
          + ")", file=sys.stderr)
    return outcome


def _codesign_problem(scale: float,
                      resources=(ResourceKind.CPU,)
                      ) -> VirtualizationDesignProblem:
    """The co-tuning design problem: the paper's two workloads, each on
    its **own** database with **no** secondary indexes.

    Per-spec databases because index selection mutates the spec's
    catalog (hypothetical DDL) — a shared catalog would leak one
    workload's what-if indexes into the other's plans. No baked-in
    indexes because the physical design is the axis being tuned; the
    selection pass starts from the paper's bare tables.
    """
    machine = laboratory_machine()

    def make_db(name: str):
        return build_tpch_database(
            scale_factor=scale, tables=["customer", "orders", "lineitem"],
            with_indexes=False, name=name)

    specs = [
        WorkloadSpec(Workload.repeat("order-audit", tpch_query("Q4"), 3),
                     make_db("tpch-order-audit")),
        WorkloadSpec(Workload.repeat("cust-report", tpch_query("Q13"), 9),
                     make_db("tpch-cust-report")),
    ]
    return VirtualizationDesignProblem(
        machine=machine, specs=specs,
        controlled_resources=tuple(resources),
    )


def _run_codesign(problem, args, resume: bool) -> int:
    """Drive a journaled joint index + allocation co-tuning run."""
    from repro.codesign import CodesignSupervisor

    supervisor = CodesignSupervisor(
        problem, args.journal,
        storage_budget=args.storage_budget,
        algorithm=args.algorithm, grid=args.grid,
        max_rounds=args.max_rounds,
        max_units=args.max_units,
        scenario={"scale": args.scale},
        workers=args.workers, pool=args.pool)
    run = supervisor.run(resume=resume)
    if not run.completed:
        print(f"Co-tuning run stopped after {run.new_units} new unit(s) "
              f"({run.replayed_units} replayed); journal {args.journal} "
              f"is resumable with: repro resume {args.journal}")
        return 4
    print(run.design.summary())
    print()
    print("Trajectory (total predicted seconds per half-step): "
          + " -> ".join(f"{t:.4f}" for t in run.design.trajectory))
    print(f"Journal: {run.replayed_units} unit(s) replayed, "
          f"{run.new_units} freshly committed -> {args.journal}")
    return 0


def cmd_design(args) -> int:
    if args.co_tune:
        if args.continuous or args.online:
            print("error: --co-tune cannot combine with --continuous "
                  "or --online", file=sys.stderr)
            return 2
        obs.reset()
        print(f"Co-tuning indexes + allocation (storage budget "
              f"{args.storage_budget} page(s)/VM, {args.algorithm}, "
              f"grid {args.grid}) ...", file=sys.stderr)
        problem = _codesign_problem(args.scale)
        if args.journal:
            return _run_codesign(problem, args, resume=False)
        # No journal requested: the co-tuner still checkpoints (the
        # supervisor is journal-driven), just into a throwaway file.
        with tempfile.TemporaryDirectory(prefix="repro-codesign-") as scratch:
            args.journal = os.path.join(scratch, "codesign.journal")
            return _run_codesign(problem, args, resume=False)
    machine = laboratory_machine()
    print(f"Loading TPC-H (scale factor {args.scale}) ...", file=sys.stderr)
    db = build_tpch_database(scale_factor=args.scale,
                             tables=["customer", "orders", "lineitem"])
    specs = [
        WorkloadSpec(Workload.repeat("order-audit", tpch_query("Q4"), 3), db),
        WorkloadSpec(Workload.repeat("cust-report", tpch_query("Q13"), 9), db),
    ]
    cache = _cache(args)
    resources = tuple(
        ResourceKind(token) for token in args.resources.split(",")
    )
    problem = VirtualizationDesignProblem(
        machine=machine, specs=specs, controlled_resources=resources,
    )
    if args.online:
        # Delegate to the drift-aware closed loop (docs/drift.md) under
        # the default turbulent plan, journaling into a throwaway file.
        args.max_units = None
        with tempfile.TemporaryDirectory(prefix="repro-online-") as scratch:
            args.journal = os.path.join(scratch, "online.journal")
            return _run_online(FaultPlan.named("turbulent"), problem, args,
                               resume=False)
    engine = make_engine(args.workers, args.pool)
    try:
        if args.continuous and cache.surrogate is None:
            # Fit + search-in-the-loop polish (a loaded v3 cache that
            # already carries a fit skips straight to the search).
            design = _design_continuous(cache, problem, args,
                                        engine=engine).design
        else:
            source = cache.surrogate if args.continuous else cache
            designer = VirtualizationDesigner(problem,
                                              OptimizerCostModel(source))
            design = designer.design(args.algorithm, grid=args.grid,
                                     engine=engine,
                                     continuous=args.continuous,
                                     fine_factor=args.fine_factor)
    finally:
        if engine is not None:
            engine.close()
    print(design.summary())
    if args.save:
        count = cache.save(args.save)
        print(f"\nSaved {count} calibrated point(s)"
              + (" and the surrogate fit" if cache.surrogate else "")
              + f" to {args.save}")
    if args.validate:
        measured = MeasuredCostModel(machine, calibration=cache)
        rows = []
        for name in design.allocation.workload_names():
            spec = problem.spec(name)
            designed = measured.cost(spec, design.allocation.vector_for(name))
            default = measured.cost(
                spec, design.default_allocation.vector_for(name)
            )
            rows.append([name, designed, default, 1 - designed / default])
        print()
        print(format_table(
            ["workload", "measured designed (s)", "measured default (s)",
             "improvement"],
            rows, title="Measured validation",
        ))
    return 0


def cmd_explain(args) -> int:
    db = build_tpch_database(scale_factor=args.scale,
                             tables=["customer", "orders", "lineitem"])
    cache = _cache(args)
    params = cache.params_for(_allocation(args))
    whatif = WhatIfOptimizer(db.catalog, params)
    print(whatif.explain(tpch_query(args.query)))
    return 0


def cmd_experiment(args) -> int:
    machine = laboratory_machine()
    cache = _cache(args)
    if args.name == "fig3":
        rows = []
        for cpu in SHARE_LEVELS:
            row = [f"cpu {cpu:.0%}"]
            for memory in SHARE_LEVELS:
                params = cache.params_for(
                    ResourceVector.of(cpu=cpu, memory=memory, io=0.5)
                )
                row.append(params.cpu_tuple_cost)
            rows.append(row)
        print(format_table(
            ["", *[f"mem {m:.0%}" for m in SHARE_LEVELS]], rows,
            title="Figure 3: calibrated cpu_tuple_cost",
        ))
        return 0

    db = build_tpch_database(scale_factor=0.01,
                             tables=["customer", "orders", "lineitem"])
    estimated = OptimizerCostModel(cache)
    measured = MeasuredCostModel(machine, calibration=cache)

    if args.name == "fig4":
        rows = []
        for query in ("Q4", "Q13"):
            spec = WorkloadSpec(Workload(query.lower(), [tpch_query(query)]), db)
            est = [estimated.cost(
                spec, ResourceVector.of(cpu=c, memory=0.5, io=0.5)
            ) for c in SHARE_LEVELS]
            act = [measured.cost(
                spec, ResourceVector.of(cpu=c, memory=0.5, io=0.5)
            ) for c in SHARE_LEVELS]
            rows.append([query, "estimated", *[v / est[1] for v in est]])
            rows.append([query, "actual", *[v / act[1] for v in act]])
        print(format_table(
            ["query", "series", *[f"cpu {c:.0%}" for c in SHARE_LEVELS]],
            rows, title="Figure 4: normalized execution time vs CPU share",
        ))
        return 0

    if args.name == "fig5":
        q4 = WorkloadSpec(Workload.repeat("w-q4", tpch_query("Q4"), 3), db)
        q13 = WorkloadSpec(Workload.repeat("w-q13", tpch_query("Q13"), 9), db)
        rows = []
        for label, c4, c13 in (("default 50/50", 0.5, 0.5),
                               ("designed 25/75", 0.25, 0.75)):
            t4 = measured.cost(q4, ResourceVector.of(cpu=c4, memory=0.5, io=0.5))
            t13 = measured.cost(q13, ResourceVector.of(cpu=c13, memory=0.5, io=0.5))
            rows.append([label, t4, t13, t4 + t13])
        print(format_table(
            ["allocation", "w-q4 (s)", "w-q13 (s)", "total (s)"], rows,
            title="Figure 5: workload execution time by allocation",
        ))
        return 0
    raise AssertionError(f"unhandled experiment {args.name}")


def cmd_report(args) -> int:
    """Run a small end-to-end design and print its run report.

    The run is the paper's two-workload problem at a reduced scale:
    enough to exercise calibration, the what-if cost model, a search,
    and (for the measured validation pass) the engine itself, so every
    section of the report has data.
    """
    obs.reset()
    machine = laboratory_machine()
    print(f"Running a {args.algorithm} design to collect a run report ...",
          file=sys.stderr)
    db = build_tpch_database(scale_factor=args.scale,
                             tables=["customer", "orders", "lineitem"])
    specs = [
        WorkloadSpec(Workload.repeat("order-audit", tpch_query("Q4"), 3), db),
        WorkloadSpec(Workload.repeat("cust-report", tpch_query("Q13"), 9), db),
    ]
    cache = _cache(args)
    problem = VirtualizationDesignProblem(
        machine=machine, specs=specs,
        controlled_resources=(ResourceKind.CPU,),
    )
    designer = VirtualizationDesigner(problem, OptimizerCostModel(cache))
    design = designer.design(args.algorithm, grid=args.grid)
    measured = MeasuredCostModel(machine, calibration=cache)
    for name in design.allocation.workload_names():
        measured.cost(problem.spec(name), design.allocation.vector_for(name))

    report = obs.RunReport.capture(label=f"design/{args.algorithm}")
    if args.json:
        print(report.to_json())
    else:
        print(report.to_text())
    return 0


def _chaos_plan(args) -> FaultPlan:
    """The fault plan the ``chaos`` command runs under: a named plan,
    optionally overridden by explicit rate flags."""
    plan = FaultPlan.named(args.plan)
    overrides = {}
    for flag in ("transient_rate", "outlier_rate", "hang_rate",
                 "boot_failure_rate", "vm_crash_rate", "host_degrade_rate",
                 "host_degrade_factor", "migration_failure_rate"):
        value = getattr(args, flag, None)
        if value is not None:
            overrides[flag] = value
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        plan = plan.with_overrides(**overrides)
    return plan


def _resilience_rows(report: obs.RunReport) -> List[List[str]]:
    summary = report.summary
    snapshot = report.metrics

    def by_label(name, label):
        out = {}
        for entry in snapshot.get("counters", ()):
            if entry["name"] == name and label in entry["labels"]:
                key = entry["labels"][label]
                out[key] = out.get(key, 0.0) + entry["value"]
        return out

    rows = []
    for kind, count in sorted(by_label("faults.injected", "kind").items()):
        rows.append([f"faults injected ({kind})", f"{count:.0f}"])
    for site, count in sorted(by_label("resilience.retries", "site").items()):
        rows.append([f"retries ({site})", f"{count:.0f}"])
    rows.append(["outliers rejected",
                 f"{summary.get('outliers_rejected', 0):.0f}"])
    for kind, count in sorted(by_label("resilience.fallbacks", "kind").items()):
        rows.append([f"fallbacks ({kind})", f"{count:.0f}"])
    rows.append(["search budget stops",
                 f"{summary.get('budget_stops', 0):.0f}"])
    return rows


def _chaos_problem(scale: float,
                   resources=(ResourceKind.CPU,)
                   ) -> VirtualizationDesignProblem:
    """The standard chaos/resume design problem (Figure 4 shape)."""
    machine = laboratory_machine()
    db = build_tpch_database(scale_factor=scale,
                             tables=["customer", "orders", "lineitem"])
    specs = [
        WorkloadSpec(Workload.repeat("order-audit", tpch_query("Q4"), 3), db),
        WorkloadSpec(Workload.repeat("cust-report", tpch_query("Q13"), 9), db),
    ]
    return VirtualizationDesignProblem(
        machine=machine, specs=specs,
        controlled_resources=tuple(resources),
    )


def _print_chaos_outcome(plan: FaultPlan, cache: CalibrationCache) -> None:
    report = obs.RunReport.capture(label=f"chaos/{plan.name}")
    if report.summary.get("faults_injected", 0) == 0:
        print(f"Fault plan {plan.name!r}: no faults injected; "
              "the run was effectively fault-free.")
    else:
        print(format_table(
            ["event", "count"], _resilience_rows(report),
            title=f"Resilience summary — fault plan {plan.name!r}"))
    if cache is not None and cache.fallback_log:
        print()
        rows = [[str(event.allocation), event.kind,
                 str(event.source) if event.source else "-", event.reason]
                for event in cache.fallback_log]
        print(format_table(
            ["allocation", "fallback", "served by", "reason"], rows,
            title="Degraded lookups",
        ))


def _run_supervised(plan: FaultPlan, args, resume: bool) -> int:
    """Drive a journaled (crash-recoverable) chaos run or its resume."""
    from repro.recovery import RunSupervisor

    problem = _chaos_problem(args.scale)
    supervisor = RunSupervisor(
        problem, args.journal, plan=plan,
        algorithm=args.algorithm, grid=args.grid,
        max_evaluations=args.max_evaluations,
        watchdog_probes=args.watchdog_probes,
        max_units=args.max_units,
        extra_meta={"scale": args.scale},
        workers=args.workers, pool=args.pool,
        continuous=getattr(args, "continuous", False),
        fine_factor=getattr(args, "fine_factor", 8),
        surrogate_tol=getattr(args, "surrogate_tol", 0.05),
        surrogate_budget=getattr(args, "surrogate_budget", 24),
    )
    run = supervisor.run(resume=resume)
    if not run.completed:
        print(f"Run stopped after {run.new_units} new unit(s) "
              f"({run.replayed_units} replayed); journal {args.journal} "
              f"is resumable with: repro resume {args.journal}")
        return 4
    print(run.design.summary())
    print()
    if run.actions:
        rows = [[f"{action.time_seconds:.1f}", action.subject, action.event,
                 action.action, action.detail] for action in run.actions]
        print(format_table(
            ["t (s)", "subject", "event", "action", "detail"], rows,
            title="Watchdog recovery actions"))
        print()
    print(f"Journal: {run.replayed_units} unit(s) replayed, "
          f"{run.new_units} freshly committed -> {args.journal}")
    _print_chaos_outcome(plan, supervisor.cache)
    return 4 if run.design.stopped else 0


def cmd_chaos(args) -> int:
    """Run the design problem under a fault plan and summarize survival."""
    obs.reset()
    plan = _chaos_plan(args)
    print(f"Running a {args.algorithm} design under fault plan "
          f"{plan.name!r} (transient={plan.transient_rate:.0%}, "
          f"outlier={plan.outlier_rate:.0%}, hang={plan.hang_rate:.0%}, "
          f"boot={plan.boot_failure_rate:.0%}, "
          f"vm-crash={plan.vm_crash_rate:.0%}, "
          f"host-degrade={plan.host_degrade_rate:.0%}) ...", file=sys.stderr)
    if args.journal:
        return _run_supervised(plan, args, resume=False)
    if args.continuous:
        print("error: chaos --continuous requires --journal "
              "(the surrogate fit is journaled)", file=sys.stderr)
        return 2
    problem = _chaos_problem(args.scale)
    engine = make_engine(args.workers, args.pool)
    runner = CalibrationRunner(
        problem.machine,
        injector=FaultInjector(plan),
        retry_policy=RetryPolicy.resilient(),
        engine=engine,
    )
    cache = CalibrationCache(runner)
    designer = VirtualizationDesigner(problem, OptimizerCostModel(cache))
    try:
        design = designer.design(args.algorithm, grid=args.grid,
                                 max_evaluations=args.max_evaluations,
                                 engine=engine)
    finally:
        if engine is not None:
            engine.close()
    print(design.summary())
    print()
    _print_chaos_outcome(plan, cache)
    return 4 if design.stopped else 0


def _run_online(plan: FaultPlan, problem, args, resume: bool) -> int:
    """Drive a journaled closed-loop online run or its resume."""
    from repro.drift import OnlineSupervisor

    supervisor = OnlineSupervisor(
        problem, args.journal, plan=plan,
        epochs=args.epochs, drift_threshold=args.drift_threshold,
        recal_budget=args.recal_budget,
        algorithm=args.algorithm, grid=args.grid,
        fine_factor=args.fine_factor,
        surrogate_tol=args.surrogate_tol,
        surrogate_budget=args.surrogate_budget,
        max_units=args.max_units,
        extra_meta={"scale": args.scale},
        workers=args.workers, pool=args.pool)
    run = supervisor.run(resume=resume)
    if not run.completed:
        print(f"Online run stopped after {run.new_units} new unit(s) "
              f"({run.replayed_units} replayed); journal {args.journal} "
              f"is resumable with: repro resume {args.journal}")
        return 4
    rows = [[f"{point['epoch']}", f"{point['capacity']:.3f}",
             f"{point['observed_seconds']:.4f}",
             f"{point['drift_events']}", f"{point['refits']}"]
            for point in run.trajectory]
    print(format_table(
        ["epoch", "cpu capacity", "observed (s)", "drift events", "refits"],
        rows, title=f"Online trajectory — fault plan {plan.name!r}"))
    print()
    print(run.design.summary())
    print()
    budget = ("unbounded" if run.budget_remaining is None
              else f"{run.budget_spent} request(s) spent, "
                   f"{run.budget_remaining} left")
    print(f"Drift: {len(run.events)} event(s), {run.recalibrations} knot "
          f"refit(s), {run.redesigns} warm re-design(s); "
          f"recalibration budget: {budget}")
    print(f"Journal: {run.replayed_units} unit(s) replayed, "
          f"{run.new_units} freshly committed -> {args.journal}")
    _print_chaos_outcome(plan, supervisor.cache)
    return 0


def cmd_monitor(args) -> int:
    """Run the drift-aware closed loop under a degrading fault plan."""
    obs.reset()
    plan = _chaos_plan(args)
    print(f"Running an online {args.algorithm} design for {args.epochs} "
          f"epoch(s) under fault plan {plan.name!r} "
          f"(host-degrade={plan.host_degrade_rate:.0%}, "
          f"drift threshold={args.drift_threshold}, "
          f"recal budget={args.recal_budget}) ...", file=sys.stderr)
    problem = _chaos_problem(args.scale)
    if args.journal:
        return _run_online(plan, problem, args, resume=False)
    # No journal requested: the loop still checkpoints (the supervisor
    # is journal-driven), just into a throwaway file.
    with tempfile.TemporaryDirectory(prefix="repro-monitor-") as scratch:
        args.journal = os.path.join(scratch, "monitor.journal")
        return _run_online(plan, problem, args, resume=False)


def _resume_drift(args, meta) -> int:
    """Resume a killed online (drift) run purely from its journal meta."""
    plan_fields = dict(meta.get("plan") or {})
    if not plan_fields:
        raise RecoveryError(
            f"journal {args.journal} carries no fault plan in its header")
    plan = FaultPlan(**plan_fields)
    resources = tuple(ResourceKind(token)
                      for token in meta.get("controlled", ["cpu"]))
    args.scale = float(meta.get("scale", 0.002))
    args.epochs = int(meta.get("epochs", 8))
    args.drift_threshold = float(meta.get("drift_threshold", 0.15))
    args.recal_budget = meta.get("recal_budget")
    args.algorithm = meta.get("algorithm", "greedy")
    args.grid = int(meta.get("grid", 4))
    args.fine_factor = int(meta.get("fine_factor", 8))
    args.surrogate_tol = float(meta.get("surrogate_tol", 0.05))
    args.surrogate_budget = meta.get("surrogate_budget", 24)
    _resolve_resume_workers(args, meta)
    problem = _chaos_problem(args.scale, resources=resources)
    print(f"Resuming online journal {args.journal} (plan {plan.name!r}, "
          f"{args.epochs} epoch(s), drift threshold "
          f"{args.drift_threshold}) ...", file=sys.stderr)
    return _run_online(plan, problem, args, resume=True)


def _print_serve_session(run, plan: FaultPlan) -> None:
    """Print the serving-session outcome tables."""
    stats = run.stats
    rows = [
        ["requests", f"{stats.requests}"],
        ["answered", f"{stats.answered}"],
        ["degraded answers", f"{stats.degraded} "
                             f"({stats.degraded_fraction:.1%} of served)"],
        ["typed rejections", f"{stats.rejected}"],
        ["shed (overload + quota)", f"{stats.shed} "
                                    f"({stats.shed_rate:.1%} of offered)"],
        ["p50 latency", f"{stats.p50_seconds * 1000:.1f} ms"],
        ["p99 latency", f"{stats.p99_seconds * 1000:.1f} ms"],
        ["designs committed", f"{run.design_seq}"],
        ["breaker trips", f"{run.breaker_trips}"],
    ]
    print(format_table(["measure", "value"], rows,
                       title=f"Serving session — fault plan {plan.name!r}"))
    tier_rows = [[tier, f"{count}"]
                 for tier, count in sorted(stats.by_tier.items())]
    if tier_rows:
        print()
        print(format_table(["tier", "served"], tier_rows,
                           title="Degradation ladder"))
    reason_rows = [[reason, f"{count}"]
                   for reason, count in sorted(stats.by_reason.items())]
    if reason_rows:
        print()
        print(format_table(["reason", "rejected"], reason_rows,
                           title="Typed rejections"))


def _run_serve(plan: FaultPlan, problem, args, resume: bool,
               scenario=None, config=None) -> int:
    """Drive a journaled serving session or its resume."""
    from repro.serve import ServeConfig, ServeScenario, ServeSupervisor

    if scenario is None:
        scenario = ServeScenario(
            seed=args.trace_seed, requests=args.requests, rate=args.rate,
            tenants=args.tenants, design_every=args.design_every)
    if config is None:
        config = ServeConfig(
            max_queue=args.max_queue, max_batch=args.max_batch,
            quota_capacity=args.quota_capacity,
            quota_refill_rate=args.quota_refill)
    supervisor = ServeSupervisor(
        problem, args.journal, plan=plan,
        scenario=scenario, config=config,
        algorithm=args.algorithm, grid=args.grid,
        fine_factor=args.fine_factor,
        surrogate_tol=args.surrogate_tol,
        surrogate_budget=args.surrogate_budget,
        max_units=args.max_units,
        extra_meta={"scale": args.scale},
        workers=args.workers, pool=args.pool)
    run = supervisor.run(resume=resume)
    if not run.completed:
        print(f"Serving session stopped after {run.new_units} new unit(s) "
              f"({run.replayed_units} replayed); journal {args.journal} "
              f"is resumable with: repro resume {args.journal}")
        return 4
    _print_serve_session(run, plan)
    print()
    print(run.design.summary())
    print()
    print(f"Journal: {run.replayed_units} unit(s) replayed, "
          f"{run.new_units} freshly committed -> {args.journal}")
    _print_chaos_outcome(plan, supervisor.cache)
    return 0


def cmd_serve(args) -> int:
    """Run one deterministic session of the always-on design service."""
    obs.reset()
    plan = _chaos_plan(args)
    print(f"Serving a {args.requests}-request open-loop trace at "
          f"{args.rate:g} req/s ({args.tenants} tenant(s), a design "
          f"request every {args.design_every}) under fault plan "
          f"{plan.name!r} ...", file=sys.stderr)
    problem = _chaos_problem(args.scale)
    if args.journal:
        return _run_serve(plan, problem, args, resume=False)
    # No journal requested: the service still checkpoints (the
    # supervisor is journal-driven), just into a throwaway file.
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as scratch:
        args.journal = os.path.join(scratch, "serve.journal")
        return _run_serve(plan, problem, args, resume=False)


def _resume_serve(args, meta) -> int:
    """Resume a killed serving session purely from its journal meta."""
    from repro.serve import ServeConfig, ServeScenario

    plan_fields = dict(meta.get("plan") or {})
    if not plan_fields:
        raise RecoveryError(
            f"journal {args.journal} carries no fault plan in its header")
    plan = FaultPlan(**plan_fields)
    scenario = ServeScenario.from_dict(dict(meta["scenario"]))
    config = ServeConfig.from_dict(dict(meta["config"]))
    resources = tuple(ResourceKind(token)
                      for token in meta.get("controlled", ["cpu"]))
    args.scale = float(meta.get("scale", 0.002))
    args.requests = scenario.requests
    args.rate = scenario.rate
    args.tenants = scenario.tenants
    args.design_every = scenario.design_every
    args.algorithm = meta.get("algorithm", "greedy")
    args.grid = int(meta.get("grid", 4))
    args.fine_factor = int(meta.get("fine_factor", 8))
    args.surrogate_tol = float(meta.get("surrogate_tol", 0.05))
    args.surrogate_budget = meta.get("surrogate_budget", 24)
    _resolve_resume_workers(args, meta)
    problem = _chaos_problem(args.scale, resources=resources)
    print(f"Resuming serve journal {args.journal} (plan {plan.name!r}, "
          f"{scenario.requests} request(s) at {scenario.rate:g} req/s) "
          f"...", file=sys.stderr)
    return _run_serve(plan, problem, args, resume=True,
                      scenario=scenario, config=config)


def _print_fleet_design(design, baseline_cost=None) -> None:
    summary = design.summary()
    status = ("converged" if summary["converged"]
              else "stopped on round budget")
    rows = [
        ["workloads placed", f"{summary['workloads']}"],
        ["hosts occupied", f"{summary['hosts_occupied']}"],
        ["shape clusters", f"{summary['clusters']}"],
        ["initial cost", f"{summary['initial_cost']:.6g}"],
        ["final cost", f"{summary['total_cost']:.6g}"],
        ["reassignment", f"{summary['rounds']} round(s), "
                         f"{summary['moves']} move(s), {status}"],
    ]
    if summary["initial_cost"] > 0:
        gain = 1 - summary["total_cost"] / summary["initial_cost"]
        rows.append(["reassignment gain", f"{gain:.1%}"])
    if baseline_cost:
        improvement = 1 - summary["total_cost"] / baseline_cost
        rows.append(["round-robin baseline",
                     f"{baseline_cost:.6g} (fleet design {improvement:.1%} "
                     f"cheaper)"])
    print(format_table(["measure", "value"], rows, title="Fleet placement"))


def _run_fleet_supervised(problem, scenario, args, resume: bool) -> int:
    """Drive a journaled (crash-recoverable) fleet run or its resume."""
    from repro.fleet import FleetSupervisor

    engine = make_engine(args.workers, args.pool)
    try:
        supervisor = FleetSupervisor(
            problem, args.journal, scenario=scenario,
            clusters=args.clusters or None, algorithm=args.algorithm,
            max_rounds=args.rounds, max_units=args.max_units,
            engine=engine,
            extra_meta={"workers": args.workers, "pool": args.pool})
        run = supervisor.run(resume=resume)
    finally:
        if engine is not None:
            engine.close()
    if not run.completed:
        print(f"Fleet run stopped after {run.new_units} new host "
              f"design(s) ({run.replayed_units} replayed); journal "
              f"{args.journal} is resumable with: repro resume "
              f"{args.journal}")
        return 4
    _print_fleet_design(run.design)
    print()
    print(f"Journal: {run.replayed_units} unit(s) replayed, "
          f"{run.new_units} freshly committed -> {args.journal}")
    return 0


def cmd_fleet(args) -> int:
    """Place a synthetic fleet: cluster, tune per host, reroute."""
    from repro.fleet import FleetDesigner, round_robin_assignment, synthetic_fleet

    obs.reset()
    problem = synthetic_fleet(args.hosts, args.workloads, seed=args.seed,
                              grid=args.grid)
    scenario = {"n_hosts": args.hosts, "n_workloads": args.workloads,
                "seed": args.seed, "grid": args.grid}
    print(f"Placing {args.workloads} workload(s) on {args.hosts} host(s) "
          f"(seed {args.seed}, grid {args.grid}) ...", file=sys.stderr)
    if args.journal:
        return _run_fleet_supervised(problem, scenario, args, resume=False)
    engine = make_engine(args.workers, args.pool)
    try:
        designer = FleetDesigner(
            problem, clusters=args.clusters or None,
            algorithm=args.algorithm, engine=engine,
            max_rounds=args.rounds)
        design = designer.design()
        baseline_cost = None
        if args.baseline:
            baseline_cost, _designs = designer.evaluate_assignment(
                round_robin_assignment(problem))
    finally:
        if engine is not None:
            engine.close()
    _print_fleet_design(design, baseline_cost)
    return 0


def _resume_fleet(args, meta) -> int:
    """Resume a killed fleet run purely from its journal meta."""
    from repro.fleet import synthetic_fleet

    scenario = meta.get("scenario")
    if not scenario:
        raise RecoveryError(
            f"journal {args.journal} carries no fleet scenario in its "
            f"header; only scenario-built fleet runs are CLI-resumable")
    problem = synthetic_fleet(
        n_hosts=int(scenario["n_hosts"]),
        n_workloads=int(scenario["n_workloads"]),
        seed=int(scenario["seed"]), grid=int(scenario["grid"]))
    args.clusters = meta.get("clusters")
    args.algorithm = meta.get("algorithm", "greedy")
    args.rounds = int(meta.get("max_rounds", 8))
    _resolve_resume_workers(args, meta)
    print(f"Resuming fleet journal {args.journal} "
          f"({scenario['n_hosts']} host(s), "
          f"{scenario['n_workloads']} workload(s), "
          f"{args.algorithm}) ...", file=sys.stderr)
    return _run_fleet_supervised(problem, dict(scenario), args, resume=True)


def cmd_profile(args) -> int:
    """Profile the hot flows under cProfile and emit the artifacts."""
    from repro.profiling import SCENARIOS, profile_scenario

    names = sorted(SCENARIOS) if args.scenario == "all" else [args.scenario]
    os.makedirs(args.output_dir, exist_ok=True)
    for name in names:
        report = profile_scenario(name, smoke=args.smoke, top=args.top)
        print(report.to_text())
        base = os.path.join(args.output_dir, name)
        with open(base + ".txt", "w") as handle:
            handle.write(report.to_text())
        with open(base + ".json", "w") as handle:
            handle.write(report.to_json() + "\n")
        with open(base + ".folded", "w") as handle:
            handle.write(report.folded())
        print(f"Wrote {base}.txt, {base}.json, {base}.folded",
              file=sys.stderr)
    return 0


def _resolve_resume_workers(args, meta) -> None:
    """Honor the journal's worker count, warning when a flag disagrees.

    The journal records the original run's execution shape, and the
    resumed run always follows it. Results are bit-identical across
    worker counts (``docs/parallelism.md``), so a differing
    ``--workers`` is harmless — but silently discarding it would hide
    that the flag had no effect, so say so on stderr.
    """
    journaled = meta.get("workers")
    if journaled is None:
        return
    journaled = int(journaled)
    if args.workers is not None and int(args.workers) != journaled:
        print(f"warning: journal records workers={journaled}; "
              f"ignoring --workers {int(args.workers)} "
              "(results are identical either way)", file=sys.stderr)
    args.workers = journaled


def _resume_codesign(args, meta) -> int:
    """Resume a killed co-tuning run purely from its journal meta."""
    scenario = meta.get("scenario")
    if not scenario:
        raise RecoveryError(
            f"journal {args.journal} carries no co-tuning scenario in its "
            f"header; only scenario-built co-tuning runs are CLI-resumable")
    resources = tuple(ResourceKind(token)
                      for token in meta.get("controlled", ["cpu"]))
    args.scale = float(scenario["scale"])
    args.storage_budget = int(meta["storage_budget"])
    args.algorithm = meta.get("algorithm", "greedy")
    args.grid = int(meta.get("grid", 4))
    args.max_rounds = int(meta.get("max_rounds", 6))
    _resolve_resume_workers(args, meta)
    problem = _codesign_problem(args.scale, resources=resources)
    print(f"Resuming co-tuning journal {args.journal} "
          f"(storage budget {args.storage_budget} page(s)/VM, "
          f"{args.algorithm}, grid {args.grid}) ...", file=sys.stderr)
    return _run_codesign(problem, args, resume=True)


def cmd_resume(args) -> int:
    """Resume a killed chaos, fleet, online (drift), serve, or
    co-tuning run."""
    from repro.recovery import read_journal

    obs.reset()
    meta, _records, _tail = read_journal(args.journal)
    if meta.get("run_kind") == "codesign":
        return _resume_codesign(args, meta)
    if meta.get("run_kind") == "fleet":
        return _resume_fleet(args, meta)
    if meta.get("run_kind") == "drift":
        return _resume_drift(args, meta)
    if meta.get("run_kind") == "serve":
        return _resume_serve(args, meta)
    plan_fields = dict(meta.get("plan") or {})
    if not plan_fields:
        raise RecoveryError(
            f"journal {args.journal} carries no fault plan in its header")
    plan = FaultPlan(**plan_fields)
    # Rebuild the run from the journal's own identity; CLI flags are
    # not consulted so a resumed run cannot drift from the original.
    args.scale = float(meta.get("scale", 0.002))
    args.algorithm = meta.get("algorithm", "greedy")
    args.grid = int(meta.get("grid", 4))
    args.watchdog_probes = int(meta.get("watchdog_probes", 0))
    args.max_evaluations = None
    args.continuous = bool(meta.get("continuous", False))
    args.fine_factor = int(meta.get("fine_factor", 8))
    args.surrogate_tol = float(meta.get("surrogate_tol", 0.05))
    args.surrogate_budget = meta.get("surrogate_budget", 24)
    _resolve_resume_workers(args, meta)
    print(f"Resuming {args.journal} (plan {plan.name!r}, "
          f"{args.algorithm}, grid {args.grid}) ...", file=sys.stderr)
    return _run_supervised(plan, args, resume=True)


def _emit_stats(args) -> None:
    """Honor the global ``--stats`` / ``--stats-json`` flags."""
    stats = getattr(args, "stats", False)
    stats_json = getattr(args, "stats_json", None)
    if not stats and not stats_json:
        return
    report = obs.RunReport.capture(label=args.command)
    if stats:
        print()
        print(report.to_text())
    if stats_json:
        with open(stats_json, "w") as handle:
            handle.write(report.to_json() + "\n")
        print(f"Wrote run report to {stats_json}", file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Database Virtualization: A New "
                    "Frontier for Database Tuning and Physical Design' "
                    "(ICDE 2007)",
    )
    # Shared by every subcommand: observability emission.
    stats_parent = argparse.ArgumentParser(add_help=False)
    stats_parent.add_argument(
        "--stats", action="store_true",
        help="print a run report (counted work) after the command")
    stats_parent.add_argument(
        "--stats-json", metavar="PATH",
        help="also write the run report as JSON to PATH")

    # Shared by the evaluation-heavy subcommands: parallel fan-out.
    parallel_parent = argparse.ArgumentParser(add_help=False)
    parallel_parent.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="run cost evaluations and calibration trials through the "
             "batched evaluation engine with N workers (0 = one per CPU "
             "core; results are bit-identical for every worker count)")
    parallel_parent.add_argument(
        "--pool", default="thread", choices=list(POOL_KINDS),
        help="worker pool kind for --workers (default thread)")

    subparsers = parser.add_subparsers(dest="command", required=True)

    calibrate = subparsers.add_parser(
        "calibrate", parents=[stats_parent],
        help="calibrate optimizer parameters for an allocation",
        epilog="Documentation: docs/cost-model.md")
    _add_share_arguments(calibrate)
    calibrate.add_argument("--save", help="write the calibration cache to a JSON file")
    calibrate.add_argument("--load", help="preload a saved calibration cache")
    calibrate.set_defaults(func=cmd_calibrate)

    design = subparsers.add_parser(
        "design", parents=[stats_parent, parallel_parent],
        help="solve the paper's two-workload design problem",
        epilog="Documentation: docs/cost-model.md, docs/surrogate.md "
               "(--continuous), docs/parallelism.md (--workers)")
    design.add_argument("--scale", type=float, default=0.01,
                        help="TPC-H scale factor (default 0.01)")
    design.add_argument("--grid", type=int, default=4,
                        help="search discretization (default 4)")
    design.add_argument("--algorithm", default="exhaustive",
                        choices=["exhaustive", "greedy", "dynamic-programming"])
    design.add_argument("--resources", default="cpu",
                        help="comma list of controlled resources "
                             "(cpu,memory,io; default cpu)")
    design.add_argument("--validate", action="store_true",
                        help="also measure the design vs the default")
    design.add_argument("--continuous", action="store_true",
                        help="search continuous allocations through a fitted "
                             "calibration surrogate instead of the coarse "
                             "grid (see docs/surrogate.md)")
    design.add_argument("--surrogate-tol", type=float, default=0.05,
                        metavar="TOL",
                        help="cross-validated interpolation error tolerance "
                             "driving adaptive surrogate refinement "
                             "(default 0.05)")
    design.add_argument("--surrogate-budget", type=int, default=24,
                        metavar="N",
                        help="cap on fresh calibrations the surrogate fit "
                             "may spend (default 24)")
    design.add_argument("--fine-factor", type=int, default=8, metavar="F",
                        help="continuous-search resolution multiplier: "
                             "allocations are explored down to steps of "
                             "1/(grid*F) (default 8)")
    design.add_argument("--online", action="store_true",
                        help="run the drift-aware closed loop under the "
                             "default turbulent fault plan: observe, detect "
                             "stale cost models, recalibrate on budget, "
                             "warm-restart the search (see docs/drift.md; "
                             "'repro monitor' exposes every knob)")
    design.add_argument("--epochs", type=int, default=8, metavar="N",
                        help="--online: epochs of the observe-detect-repair "
                             "loop (default 8)")
    design.add_argument("--drift-threshold", type=float, default=0.15,
                        metavar="LAMBDA",
                        help="--online: Page–Hinkley detection threshold in "
                             "log-residual units (default 0.15)")
    design.add_argument("--recal-budget", type=int, default=12, metavar="N",
                        help="--online: calibration-request budget for "
                             "drift repairs (default 12)")
    design.add_argument("--co-tune", action="store_true",
                        help="jointly tune per-VM index configurations and "
                             "the allocation: Extend-style greedy index "
                             "selection under --storage-budget alternating "
                             "with the allocation search to a fixed point "
                             "(see docs/codesign.md)")
    design.add_argument("--storage-budget", type=int, default=64,
                        metavar="N",
                        help="--co-tune: storage pages each VM may spend on "
                             "selected indexes (default 64)")
    design.add_argument("--max-rounds", type=int, default=6, metavar="N",
                        help="--co-tune: cap on selection/search alternation "
                             "rounds (default 6)")
    design.add_argument("--journal", default=None, metavar="PATH",
                        help="--co-tune: checkpoint every calibration and "
                             "what-if evaluation to a journal at PATH (the "
                             "run becomes crash-recoverable; see "
                             "'repro resume')")
    design.add_argument("--max-units", type=int, default=None,
                        help="--co-tune: simulate a crash after N newly "
                             "journaled units (journaled runs only)")
    design.add_argument("--load", help="preload a saved calibration cache")
    design.add_argument("--save", help="write the calibration cache (and any "
                                       "surrogate fit) to a JSON file")
    design.set_defaults(func=cmd_design)

    explain = subparsers.add_parser(
        "explain", parents=[stats_parent],
        help="what-if EXPLAIN of a TPC-H query under an allocation",
        epilog="Documentation: docs/cost-model.md")
    explain.add_argument("--query", default="Q4", help="query name (e.g. Q13)")
    explain.add_argument("--scale", type=float, default=0.01)
    _add_share_arguments(explain)
    explain.add_argument("--load", help="preload a saved calibration cache")
    explain.set_defaults(func=cmd_explain)

    experiment = subparsers.add_parser(
        "experiment", parents=[stats_parent],
        help="regenerate one of the paper's figures",
        epilog="Documentation: EXPERIMENTS.md")
    experiment.add_argument("name", choices=["fig3", "fig4", "fig5"])
    experiment.add_argument("--load", help="preload a saved calibration cache")
    experiment.set_defaults(func=cmd_experiment)

    report = subparsers.add_parser(
        "report",
        help="run a small design end to end and print its run report",
        epilog="Documentation: docs/observability.md")
    report.add_argument("--json", action="store_true",
                        help="emit the report as JSON instead of tables")
    report.add_argument("--scale", type=float, default=0.002,
                        help="TPC-H scale factor for the demo run "
                             "(default 0.002)")
    report.add_argument("--grid", type=int, default=4,
                        help="search discretization (default 4)")
    report.add_argument("--algorithm", default="greedy",
                        choices=["exhaustive", "greedy", "dynamic-programming"])
    report.add_argument("--load", help="preload a saved calibration cache")
    report.set_defaults(func=cmd_report)

    chaos = subparsers.add_parser(
        "chaos", parents=[stats_parent, parallel_parent],
        help="run a design under a fault plan and print a resilience summary",
        epilog="Documentation: docs/robustness.md")
    chaos.add_argument("--plan", default="noisy", choices=sorted(NAMED_PLANS),
                       help="named fault plan (default noisy)")
    chaos.add_argument("--transient-rate", type=float, default=None,
                       help="override the plan's transient failure rate")
    chaos.add_argument("--outlier-rate", type=float, default=None,
                       help="override the plan's outlier rate")
    chaos.add_argument("--hang-rate", type=float, default=None,
                       help="override the plan's hang rate")
    chaos.add_argument("--boot-failure-rate", type=float, default=None,
                       help="override the plan's VM boot failure rate")
    chaos.add_argument("--vm-crash-rate", type=float, default=None,
                       help="override the plan's VM crash (watchdog) rate")
    chaos.add_argument("--host-degrade-rate", type=float, default=None,
                       help="override the plan's host degradation rate")
    chaos.add_argument("--migration-failure-rate", type=float, default=None,
                       help="override the plan's migration failure rate")
    chaos.add_argument("--seed", type=int, default=None,
                       help="override the plan's fault seed")
    chaos.add_argument("--scale", type=float, default=0.002,
                       help="TPC-H scale factor (default 0.002)")
    chaos.add_argument("--grid", type=int, default=4,
                       help="search discretization (default 4)")
    chaos.add_argument("--algorithm", default="greedy",
                       choices=["exhaustive", "greedy", "dynamic-programming"])
    chaos.add_argument("--max-evaluations", type=int, default=None,
                       help="stop the search after this many cost evaluations")
    chaos.add_argument("--journal", default=None, metavar="PATH",
                       help="checkpoint completed units to a journal at PATH "
                            "(the run becomes crash-recoverable; see "
                            "'repro resume')")
    chaos.add_argument("--watchdog-probes", type=int, default=0,
                       help="watchdog probes over the deployed design "
                            "(journaled runs only; default 0)")
    chaos.add_argument("--max-units", type=int, default=None,
                       help="simulate a crash after N newly journaled units "
                            "(journaled runs only)")
    chaos.add_argument("--continuous", action="store_true",
                       help="journaled runs only: fit a calibration "
                            "surrogate (crash-recoverably) and search "
                            "continuous allocations against it")
    chaos.add_argument("--surrogate-tol", type=float, default=0.05,
                       metavar="TOL",
                       help="surrogate refinement tolerance "
                            "(--continuous; default 0.05)")
    chaos.add_argument("--surrogate-budget", type=int, default=24,
                       metavar="N",
                       help="surrogate calibration-request budget "
                            "(--continuous; default 24)")
    chaos.add_argument("--fine-factor", type=int, default=8, metavar="F",
                       help="continuous-search resolution multiplier "
                            "(--continuous; default 8)")
    chaos.set_defaults(func=cmd_chaos)

    monitor = subparsers.add_parser(
        "monitor", parents=[stats_parent, parallel_parent],
        help="run the drift-aware closed loop: observe, detect stale "
             "cost models, recalibrate on budget, warm-restart the search",
        epilog="Documentation: docs/drift.md")
    monitor.add_argument("--plan", default="turbulent",
                         choices=sorted(NAMED_PLANS),
                         help="named fault plan degrading the host "
                              "(default turbulent)")
    monitor.add_argument("--transient-rate", type=float, default=None,
                         help="override the plan's transient failure rate")
    monitor.add_argument("--host-degrade-rate", type=float, default=None,
                         help="override the plan's per-epoch host "
                              "degradation rate")
    monitor.add_argument("--host-degrade-factor", type=float, default=None,
                         help="override the plan's degradation severity "
                              "(surviving CPU fraction per event)")
    monitor.add_argument("--seed", type=int, default=None,
                         help="override the plan's fault seed")
    monitor.add_argument("--scale", type=float, default=0.002,
                         help="TPC-H scale factor (default 0.002)")
    monitor.add_argument("--epochs", type=int, default=8, metavar="N",
                         help="epochs of the observe-detect-repair loop "
                              "(default 8)")
    monitor.add_argument("--drift-threshold", type=float, default=0.15,
                         metavar="LAMBDA",
                         help="Page–Hinkley detection threshold in "
                              "log-residual units (default 0.15)")
    monitor.add_argument("--recal-budget", type=int, default=12, metavar="N",
                         help="calibration-request budget for drift repairs "
                              "(replays included; default 12)")
    monitor.add_argument("--grid", type=int, default=4,
                         help="search discretization (default 4)")
    monitor.add_argument("--algorithm", default="greedy",
                         choices=["exhaustive", "greedy",
                                  "dynamic-programming"])
    monitor.add_argument("--fine-factor", type=int, default=8, metavar="F",
                         help="continuous-search resolution multiplier "
                              "(default 8)")
    monitor.add_argument("--surrogate-tol", type=float, default=0.05,
                         metavar="TOL",
                         help="surrogate refinement tolerance for the "
                              "initial fit (default 0.05)")
    monitor.add_argument("--surrogate-budget", type=int, default=24,
                         metavar="N",
                         help="calibration-request budget for the initial "
                              "fit (default 24)")
    monitor.add_argument("--journal", default=None, metavar="PATH",
                         help="checkpoint every observation, drift event, "
                              "recalibration and redesign to a journal at "
                              "PATH (the run becomes crash-recoverable; "
                              "see 'repro resume')")
    monitor.add_argument("--max-units", type=int, default=None,
                         help="simulate a crash after N newly journaled "
                              "units (journaled runs only)")
    monitor.set_defaults(func=cmd_monitor)

    serve = subparsers.add_parser(
        "serve", parents=[stats_parent, parallel_parent],
        help="run the always-on design service: admission control, "
             "deadlines, graceful degradation over a seeded request trace",
        epilog="Documentation: docs/serve.md")
    serve.add_argument("--plan", default="flaky",
                       choices=sorted(NAMED_PLANS),
                       help="named fault plan hitting the calibration "
                            "backend (default flaky)")
    serve.add_argument("--transient-rate", type=float, default=None,
                       help="override the plan's transient failure rate")
    serve.add_argument("--seed", type=int, default=None,
                       help="override the plan's fault seed")
    serve.add_argument("--trace-seed", type=int, default=7,
                       help="request-trace seed (default 7)")
    serve.add_argument("--requests", type=int, default=120, metavar="N",
                       help="requests in the open-loop trace (default 120)")
    serve.add_argument("--rate", type=float, default=40.0,
                       help="mean offered load, requests per simulated "
                            "second (default 40)")
    serve.add_argument("--tenants", type=int, default=4,
                       help="distinct tenants, Zipf-skewed (default 4)")
    serve.add_argument("--design-every", type=int, default=25, metavar="N",
                       help="every N-th request is a design request "
                            "(default 25)")
    serve.add_argument("--max-queue", type=int, default=32,
                       help="bounded request queue depth; beyond it "
                            "requests shed with Overloaded (default 32)")
    serve.add_argument("--max-batch", type=int, default=16,
                       help="max requests merged per batch (default 16)")
    serve.add_argument("--quota-capacity", type=float, default=8.0,
                       help="per-tenant token-bucket capacity (default 8)")
    serve.add_argument("--quota-refill", type=float, default=4.0,
                       help="per-tenant token refill rate per simulated "
                            "second (default 4)")
    serve.add_argument("--scale", type=float, default=0.002,
                       help="TPC-H scale factor (default 0.002)")
    serve.add_argument("--grid", type=int, default=4,
                       help="search discretization (default 4)")
    serve.add_argument("--algorithm", default="greedy",
                       choices=["exhaustive", "greedy",
                                "dynamic-programming"])
    serve.add_argument("--fine-factor", type=int, default=8, metavar="F",
                       help="continuous-search resolution multiplier "
                            "(default 8)")
    serve.add_argument("--surrogate-tol", type=float, default=0.05,
                       metavar="TOL",
                       help="surrogate refinement tolerance for the boot "
                            "fit (default 0.05)")
    serve.add_argument("--surrogate-budget", type=int, default=24,
                       metavar="N",
                       help="calibration-request budget for the boot fit "
                            "(default 24)")
    serve.add_argument("--journal", default=None, metavar="PATH",
                       help="checkpoint every calibration, knot refresh "
                            "and committed incumbent to a journal at PATH "
                            "(the session becomes crash-recoverable; see "
                            "'repro resume')")
    serve.add_argument("--max-units", type=int, default=None,
                       help="simulate a crash after N newly journaled "
                            "units (journaled runs only)")
    serve.set_defaults(func=cmd_serve)

    fleet = subparsers.add_parser(
        "fleet", parents=[stats_parent, parallel_parent],
        help="place a synthetic fleet: cluster workloads, tune every "
             "host, reroute until total cost converges",
        epilog="Documentation: docs/fleet.md")
    fleet.add_argument("--hosts", type=int, default=12, metavar="N",
                       help="number of heterogeneous hosts in the "
                            "synthetic fleet (default 12)")
    fleet.add_argument("--workloads", type=int, default=60, metavar="N",
                       help="number of synthetic workloads to place "
                            "(default 60)")
    fleet.add_argument("--seed", type=int, default=7,
                       help="scenario seed (default 7)")
    fleet.add_argument("--grid", type=int, default=16,
                       help="per-host share-grid resolution (default 16)")
    fleet.add_argument("--clusters", type=int, default=0, metavar="K",
                       help="number of workload shape clusters "
                            "(0 = auto, about sqrt(workloads/2))")
    fleet.add_argument("--algorithm", default="greedy",
                       choices=["exhaustive", "greedy",
                                "dynamic-programming"],
                       help="per-host allocation search (default greedy)")
    fleet.add_argument("--rounds", type=int, default=8,
                       help="max reassignment rounds (default 8)")
    fleet.add_argument("--baseline", action="store_true",
                       help="also price a round-robin placement for "
                            "comparison")
    fleet.add_argument("--journal", default=None, metavar="PATH",
                       help="checkpoint completed host designs to a "
                            "journal at PATH (the run becomes "
                            "crash-recoverable; see 'repro resume')")
    fleet.add_argument("--max-units", type=int, default=None,
                       help="simulate a crash after N newly journaled "
                            "host designs (journaled runs only)")
    fleet.set_defaults(func=cmd_fleet)

    resume = subparsers.add_parser(
        "resume", parents=[stats_parent, parallel_parent],
        help="resume a killed journaled chaos, fleet, online, serve, or "
             "co-tuning run, bit-identically",
        epilog="Documentation: docs/robustness.md (chaos runs), "
               "docs/fleet.md (fleet runs), docs/drift.md (online runs), "
               "docs/serve.md (serving sessions), docs/codesign.md "
               "(co-tuning runs)")
    resume.add_argument("journal", help="journal file written by "
                                        "'repro chaos --journal', "
                                        "'repro fleet --journal', "
                                        "'repro monitor --journal', "
                                        "'repro serve --journal', or "
                                        "'repro design --co-tune --journal'")
    resume.add_argument("--max-units", type=int, default=None,
                        help="simulate another crash after N new units")
    resume.set_defaults(func=cmd_resume)

    profile = subparsers.add_parser(
        "profile", parents=[stats_parent],
        help="run the deterministic cProfile harness over the hot flows "
             "and write hot-frame + flamegraph artifacts",
        epilog="Documentation: docs/profiling.md")
    profile.add_argument(
        "--scenario", default="all",
        choices=["all", "calibration", "design", "workload"],
        help="which seeded flow to profile (default: all of them)")
    profile.add_argument(
        "--smoke", action="store_true",
        help="shrink every scenario for CI smoke runs (seconds, not minutes)")
    profile.add_argument(
        "--top", type=int, default=25, metavar="N",
        help="hot frames to keep per section (default 25)")
    profile.add_argument(
        "--output-dir", default="benchmarks/profiles", metavar="DIR",
        help="where to write <scenario>.txt/.json/.folded artifacts "
             "(default benchmarks/profiles)")
    profile.set_defaults(func=cmd_profile)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Parse and run one command; returns the documented exit code.

    The contract (asserted in ``tests/integration/test_cli.py`` and
    documented in ``docs/robustness.md``):

    * ``0`` — success;
    * ``2`` — usage error (argparse's own convention, plus invalid
      allocations, admission refusals, or serve-scenario misuse);
    * ``3`` — permanent failure (``CalibrationError``, including
      ``IllConditionedError``, or an unusable recovery journal);
    * ``4`` — a budgeted search stopped early, or a journaled run was
      stopped before completing (best-so-far / resumable outcome).
    """
    args = build_parser().parse_args(argv)
    try:
        code = args.func(args)
    except (AllocationError, AdmissionError, ServeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (CalibrationError, RecoveryError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 3
    _emit_stats(args)
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
