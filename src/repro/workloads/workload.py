"""The workload abstraction (the paper's ``W_i``).

A workload is a named sequence of SQL statements against one database.
The module also provides synthetic workload generators with contrasting
resource profiles, used by the search ablations: the interesting
virtualization-design instances are exactly those where workloads
differ in how they use resources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.util.rng import DeterministicRng
from repro.workloads.tpch_queries import tpch_query


@dataclass(frozen=True)
class Workload:
    """A named sequence of SQL statements."""

    name: str
    statements: tuple

    def __init__(self, name: str, statements: Iterable[str]):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "statements", tuple(statements))
        if not self.statements:
            raise ValueError(f"workload {name!r} has no statements")

    @classmethod
    def repeat(cls, name: str, sql: str, copies: int) -> "Workload":
        """A workload of *copies* identical statements.

        The paper's Figure 5 workloads are built this way (3 copies of
        Q4, 9 copies of Q13) "to reduce any effects of startup
        overheads".
        """
        if copies <= 0:
            raise ValueError("copies must be positive")
        return cls(name, [sql] * copies)

    @classmethod
    def of_queries(cls, name: str, query_names: Sequence[str]) -> "Workload":
        """A workload of named TPC-H queries."""
        return cls(name, [tpch_query(q) for q in query_names])

    def __len__(self) -> int:
        return len(self.statements)

    def __repr__(self) -> str:
        return f"Workload({self.name!r}, {len(self.statements)} statements)"


#: Queries that stress I/O (large scans, small CPU work per page).
IO_HEAVY_QUERIES = ("Q4", "Q6")
#: Queries that stress CPU (string matching, heavy aggregation).
CPU_HEAVY_QUERIES = ("Q13", "Q1")


def scan_heavy_workload(name: str = "io-heavy", copies: int = 2) -> Workload:
    """A workload dominated by I/O-bound queries."""
    statements: List[str] = []
    for query in IO_HEAVY_QUERIES:
        statements.extend([tpch_query(query)] * copies)
    return Workload(name, statements)


def cpu_heavy_workload(name: str = "cpu-heavy", copies: int = 2) -> Workload:
    """A workload dominated by CPU-bound queries."""
    statements: List[str] = []
    for query in CPU_HEAVY_QUERIES:
        statements.extend([tpch_query(query)] * copies)
    return Workload(name, statements)


def random_mixed_workload(name: str, n_statements: int, seed: int = 0,
                          cpu_bias: float = 0.5) -> Workload:
    """A random mix of TPC-H queries.

    *cpu_bias* in [0, 1] skews the draw toward CPU-heavy queries; the
    search ablations sweep it to create workload sets with varied
    resource profiles.
    """
    if not 0.0 <= cpu_bias <= 1.0:
        raise ValueError("cpu_bias must be in [0, 1]")
    rng = DeterministicRng(seed).fork(f"workload/{name}")
    statements = []
    for _ in range(n_statements):
        if rng.uniform(0, 1) < cpu_bias:
            statements.append(tpch_query(rng.choice(CPU_HEAVY_QUERIES)))
        else:
            statements.append(tpch_query(rng.choice(IO_HEAVY_QUERIES)))
    return Workload(name, statements)
