"""TPC-H schema and OSDB-style index set.

Column widths follow the TPC-H specification's average lengths so page
counts (and therefore I/O costs) scale realistically with the scale
factor. The index set mirrors the OSDB implementation the paper used,
which builds indexes on primary and foreign keys plus the common date
columns "to boost performance".
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.engine.schema import Column, ColumnType, TableSchema

_INT = ColumnType.INT
_FLOAT = ColumnType.FLOAT
_TEXT = ColumnType.TEXT
_DATE = ColumnType.DATE


def _table(name: str, columns: List[Tuple[str, ColumnType, int]]) -> TableSchema:
    return TableSchema(name, [Column(n, t, avg_width=w) for n, t, w in columns])


#: All eight TPC-H tables.
TPCH_TABLES: Dict[str, TableSchema] = {
    "region": _table("region", [
        ("r_regionkey", _INT, 8),
        ("r_name", _TEXT, 12),
        ("r_comment", _TEXT, 60),
    ]),
    "nation": _table("nation", [
        ("n_nationkey", _INT, 8),
        ("n_name", _TEXT, 12),
        ("n_regionkey", _INT, 8),
        ("n_comment", _TEXT, 60),
    ]),
    "supplier": _table("supplier", [
        ("s_suppkey", _INT, 8),
        ("s_name", _TEXT, 18),
        ("s_address", _TEXT, 24),
        ("s_nationkey", _INT, 8),
        ("s_phone", _TEXT, 15),
        ("s_acctbal", _FLOAT, 8),
        ("s_comment", _TEXT, 62),
    ]),
    "customer": _table("customer", [
        ("c_custkey", _INT, 8),
        ("c_name", _TEXT, 18),
        ("c_address", _TEXT, 24),
        ("c_nationkey", _INT, 8),
        ("c_phone", _TEXT, 15),
        ("c_acctbal", _FLOAT, 8),
        ("c_mktsegment", _TEXT, 10),
        ("c_comment", _TEXT, 72),
    ]),
    "part": _table("part", [
        ("p_partkey", _INT, 8),
        ("p_name", _TEXT, 32),
        ("p_mfgr", _TEXT, 14),
        ("p_brand", _TEXT, 10),
        ("p_type", _TEXT, 20),
        ("p_size", _INT, 8),
        ("p_container", _TEXT, 10),
        ("p_retailprice", _FLOAT, 8),
        ("p_comment", _TEXT, 14),
    ]),
    "partsupp": _table("partsupp", [
        ("ps_partkey", _INT, 8),
        ("ps_suppkey", _INT, 8),
        ("ps_availqty", _INT, 8),
        ("ps_supplycost", _FLOAT, 8),
        ("ps_comment", _TEXT, 80),
    ]),
    "orders": _table("orders", [
        ("o_orderkey", _INT, 8),
        ("o_custkey", _INT, 8),
        ("o_orderstatus", _TEXT, 1),
        ("o_totalprice", _FLOAT, 8),
        ("o_orderdate", _DATE, 4),
        ("o_orderpriority", _TEXT, 15),
        ("o_clerk", _TEXT, 15),
        ("o_shippriority", _INT, 8),
        ("o_comment", _TEXT, 48),
    ]),
    "lineitem": _table("lineitem", [
        ("l_orderkey", _INT, 8),
        ("l_partkey", _INT, 8),
        ("l_suppkey", _INT, 8),
        ("l_linenumber", _INT, 8),
        ("l_quantity", _FLOAT, 8),
        ("l_extendedprice", _FLOAT, 8),
        ("l_discount", _FLOAT, 8),
        ("l_tax", _FLOAT, 8),
        ("l_returnflag", _TEXT, 1),
        ("l_linestatus", _TEXT, 1),
        ("l_shipdate", _DATE, 4),
        ("l_commitdate", _DATE, 4),
        ("l_receiptdate", _DATE, 4),
        ("l_shipinstruct", _TEXT, 12),
        ("l_shipmode", _TEXT, 7),
        ("l_comment", _TEXT, 26),
    ]),
}

#: OSDB-style indexes: (index name, table, column, unique).
OSDB_INDEXES: List[Tuple[str, str, str, bool]] = [
    ("region_pk", "region", "r_regionkey", True),
    ("nation_pk", "nation", "n_nationkey", True),
    ("nation_regionkey_idx", "nation", "n_regionkey", False),
    ("supplier_pk", "supplier", "s_suppkey", True),
    ("supplier_nationkey_idx", "supplier", "s_nationkey", False),
    ("customer_pk", "customer", "c_custkey", True),
    ("customer_nationkey_idx", "customer", "c_nationkey", False),
    ("part_pk", "part", "p_partkey", True),
    ("partsupp_partkey_idx", "partsupp", "ps_partkey", False),
    ("partsupp_suppkey_idx", "partsupp", "ps_suppkey", False),
    ("orders_pk", "orders", "o_orderkey", True),
    ("orders_custkey_idx", "orders", "o_custkey", False),
    ("orders_orderdate_idx", "orders", "o_orderdate", False),
    ("lineitem_orderkey_idx", "lineitem", "l_orderkey", False),
    ("lineitem_partkey_idx", "lineitem", "l_partkey", False),
    ("lineitem_suppkey_idx", "lineitem", "l_suppkey", False),
    ("lineitem_shipdate_idx", "lineitem", "l_shipdate", False),
]


def tpch_schema(table_name: str) -> TableSchema:
    """The schema of one TPC-H table."""
    return TPCH_TABLES[table_name]


def tpch_row_counts(scale_factor: float) -> Dict[str, int]:
    """Nominal row counts for a scale factor (lineitem is approximate)."""
    if scale_factor <= 0:
        raise ValueError("scale_factor must be positive")
    return {
        "region": 5,
        "nation": 25,
        "supplier": max(10, int(10_000 * scale_factor)),
        "customer": max(30, int(150_000 * scale_factor)),
        "part": max(40, int(200_000 * scale_factor)),
        "partsupp": max(160, int(800_000 * scale_factor)),
        "orders": max(300, int(1_500_000 * scale_factor)),
        "lineitem": max(1200, int(6_000_000 * scale_factor)),
    }
