"""Deterministic TPC-H data generation.

A pure-Python dbgen: same schema, same value distributions that matter
to the reproduced experiments (order-date ranges for Q4, comment text
for Q13's LIKE filter, commit/receipt date relationship for Q4's EXISTS
predicate), deterministic from a single seed, scaled by the TPC-H scale
factor.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.engine.database import Database
from repro.engine.types import Date
from repro.util.rng import DeterministicRng
from repro.workloads.tpch_schema import OSDB_INDEXES, TPCH_TABLES, tpch_row_counts

#: Inclusive order date range used by TPC-H dbgen.
START_DATE = Date.from_ymd(1992, 1, 1)
END_DATE = Date.from_ymd(1998, 8, 2)

PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD")
SHIP_MODES = ("REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB")
SHIP_INSTRUCTIONS = ("DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN")
NATIONS = (
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
    "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
    "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
)
REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
#: nation key -> region key, following dbgen.
NATION_REGION = (0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0,
                 0, 0, 1, 2, 3, 4, 2, 3, 3, 1)

_WORDS = (
    "furiously", "slyly", "carefully", "quickly", "blithely", "express",
    "regular", "final", "ironic", "pending", "bold", "even", "silent",
    "unusual", "daring", "accounts", "deposits", "packages", "instructions",
    "theodolites", "foxes", "pinto", "beans", "dependencies", "platelets",
    "asymptotes", "courts", "ideas", "dolphins", "waters", "sauternes",
)

#: Colour vocabulary for part names, as in dbgen (Q9 greps '%green%',
#: Q20 greps 'forest%').
P_NAME_WORDS = (
    "almond", "antique", "aquamarine", "azure", "beige", "black", "blue",
    "blush", "brown", "chartreuse", "chocolate", "coral", "cream", "cyan",
    "dark", "deep", "dim", "drab", "firebrick", "floral", "forest",
    "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
    "hot", "indian", "ivory", "khaki", "lace", "lavender", "lemon", "light",
    "lime", "linen", "magenta", "maroon", "medium", "metallic", "midnight",
    "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange",
)

P_TYPES_1 = ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
P_TYPES_2 = ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
P_TYPES_3 = ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
CONTAINERS = ("SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE",
              "LG BOX", "JUMBO PACK", "WRAP CASE")

#: Fraction of order comments mentioning special requests (Q13 filter).
SPECIAL_REQUEST_FRACTION = 0.015


class TpchDataGenerator:
    """Generates the rows of each TPC-H table, deterministically."""

    def __init__(self, scale_factor: float = 0.01, seed: int = 42):
        self.scale_factor = scale_factor
        self.seed = seed
        self.counts: Dict[str, int] = tpch_row_counts(scale_factor)

    def _rng(self, table: str) -> DeterministicRng:
        return DeterministicRng(self.seed).fork(f"tpch/{table}")

    def _comment(self, rng: DeterministicRng, n_words: int) -> str:
        return " ".join(rng.choice(_WORDS) for _ in range(n_words))

    # -- small tables ----------------------------------------------------

    def region_rows(self) -> Iterator[tuple]:
        rng = self._rng("region")
        for key, name in enumerate(REGIONS):
            yield (key, name, self._comment(rng, 6))

    def nation_rows(self) -> Iterator[tuple]:
        rng = self._rng("nation")
        for key, name in enumerate(NATIONS):
            yield (key, name, NATION_REGION[key], self._comment(rng, 6))

    # -- dimension tables -----------------------------------------------------

    def supplier_rows(self) -> Iterator[tuple]:
        rng = self._rng("supplier")
        for key in range(1, self.counts["supplier"] + 1):
            yield (
                key,
                f"Supplier#{key:09d}",
                self._comment(rng, 2),
                rng.randint(0, 24),
                f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-"
                f"{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
                round(rng.uniform(-999.99, 9999.99), 2),
                self._comment(rng, 7),
            )

    def customer_rows(self) -> Iterator[tuple]:
        rng = self._rng("customer")
        for key in range(1, self.counts["customer"] + 1):
            yield (
                key,
                f"Customer#{key:09d}",
                self._comment(rng, 2),
                rng.randint(0, 24),
                f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-"
                f"{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
                round(rng.uniform(-999.99, 9999.99), 2),
                rng.choice(SEGMENTS),
                self._comment(rng, 8),
            )

    def part_rows(self) -> Iterator[tuple]:
        rng = self._rng("part")
        for key in range(1, self.counts["part"] + 1):
            p_type = " ".join(
                (rng.choice(P_TYPES_1), rng.choice(P_TYPES_2), rng.choice(P_TYPES_3))
            )
            p_name = " ".join(
                rng.choice(P_NAME_WORDS) for _ in range(5)
            )
            yield (
                key,
                p_name,
                f"Manufacturer#{rng.randint(1, 5)}",
                f"Brand#{rng.randint(1, 5)}{rng.randint(1, 5)}",
                p_type,
                rng.randint(1, 50),
                rng.choice(CONTAINERS),
                round(900.0 + (key % 1000) + rng.uniform(0, 100), 2),
                self._comment(rng, 2),
            )

    def partsupp_rows(self) -> Iterator[tuple]:
        rng = self._rng("partsupp")
        n_parts = self.counts["part"]
        n_suppliers = self.counts["supplier"]
        per_part = max(1, self.counts["partsupp"] // max(1, n_parts))
        for part_key in range(1, n_parts + 1):
            for i in range(per_part):
                supp_key = 1 + (part_key + i * (n_suppliers // per_part or 1)) % n_suppliers
                yield (
                    part_key,
                    supp_key,
                    rng.randint(1, 9999),
                    round(rng.uniform(1.0, 1000.0), 2),
                    self._comment(rng, 10),
                )

    # -- fact tables ---------------------------------------------------------------

    def order_comment(self, rng: DeterministicRng) -> str:
        """An order comment; a small fraction mention special requests."""
        words = [rng.choice(_WORDS) for _ in range(6)]
        if rng.uniform(0, 1) < SPECIAL_REQUEST_FRACTION:
            words[2] = "special"
            words[4] = "requests"
        return " ".join(words)

    def orders_rows(self) -> Iterator[tuple]:
        rng = self._rng("orders")
        n_customers = self.counts["customer"]
        date_span = END_DATE - START_DATE
        for key in range(1, self.counts["orders"] + 1):
            order_date = START_DATE.add_days(rng.randint(0, date_span))
            # A third of customers never place orders (dbgen does this
            # too); Q13 relies on customers with zero orders existing.
            cust_key = rng.randint(1, max(1, (2 * n_customers) // 3))
            yield (
                key,
                cust_key,
                rng.choice("OFP"),
                round(rng.uniform(850.0, 560000.0), 2),
                order_date,
                rng.choice(PRIORITIES),
                f"Clerk#{rng.randint(1, 1000):09d}",
                0,
                self.order_comment(rng),
            )

    def lineitem_rows(self) -> Iterator[tuple]:
        """Line items; the per-order fan-out reuses the orders stream."""
        order_rng = self._rng("orders")
        rng = self._rng("lineitem")
        date_span = END_DATE - START_DATE
        n_customers = self.counts["customer"]
        n_parts = self.counts["part"]
        n_suppliers = self.counts["supplier"]
        target_lines = self.counts["lineitem"]
        lines_emitted = 0
        for order_key in range(1, self.counts["orders"] + 1):
            # Re-derive this order's date exactly as orders_rows does.
            order_date = START_DATE.add_days(order_rng.randint(0, date_span))
            order_rng.randint(1, max(1, (2 * n_customers) // 3))
            order_rng.choice("OFP")
            order_rng.uniform(850.0, 560000.0)
            order_rng.choice(PRIORITIES)
            order_rng.randint(1, 1000)
            self.order_comment(order_rng)

            n_lines = rng.randint(1, 7)
            for line_no in range(1, n_lines + 1):
                if lines_emitted >= target_lines:
                    return
                lines_emitted += 1
                quantity = float(rng.randint(1, 50))
                price = round(quantity * rng.uniform(900.0, 2000.0) / 10.0, 2)
                ship_date = order_date.add_days(rng.randint(1, 121))
                commit_date = order_date.add_days(rng.randint(30, 90))
                receipt_date = ship_date.add_days(rng.randint(1, 30))
                return_flag = "R" if rng.uniform(0, 1) < 0.25 else (
                    "A" if rng.uniform(0, 1) < 0.33 else "N"
                )
                yield (
                    order_key,
                    rng.randint(1, n_parts),
                    rng.randint(1, n_suppliers),
                    line_no,
                    quantity,
                    price,
                    round(rng.randint(0, 10) / 100.0, 2),
                    round(rng.randint(0, 8) / 100.0, 2),
                    return_flag,
                    "F" if ship_date < Date.from_ymd(1995, 6, 17) else "O",
                    ship_date,
                    commit_date,
                    receipt_date,
                    rng.choice(SHIP_INSTRUCTIONS),
                    rng.choice(SHIP_MODES),
                    self._comment(rng, 3),
                )

    def rows_for(self, table: str) -> Iterator[tuple]:
        generators = {
            "region": self.region_rows,
            "nation": self.nation_rows,
            "supplier": self.supplier_rows,
            "customer": self.customer_rows,
            "part": self.part_rows,
            "partsupp": self.partsupp_rows,
            "orders": self.orders_rows,
            "lineitem": self.lineitem_rows,
        }
        return generators[table]()


def build_tpch_database(scale_factor: float = 0.01, seed: int = 42,
                        memory_pages: int = 8192,
                        tables: Optional[List[str]] = None,
                        with_indexes: bool = True,
                        name: str = "tpch") -> Database:
    """Create, load, index, and analyze a TPC-H database.

    *tables* restricts loading to a subset (plus their indexes), which
    keeps tests fast when only a couple of tables are needed.
    """
    generator = TpchDataGenerator(scale_factor=scale_factor, seed=seed)
    db = Database(name, memory_pages=memory_pages)
    wanted = list(tables) if tables is not None else list(TPCH_TABLES)
    for table_name in wanted:
        db.create_table(TPCH_TABLES[table_name])
        db.load_rows(table_name, generator.rows_for(table_name))
    if with_indexes:
        for index_name, table_name, column, unique in OSDB_INDEXES:
            if table_name in wanted:
                db.create_index(index_name, table_name, column, unique=unique)
    db.analyze()
    return db
