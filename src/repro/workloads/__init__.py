"""TPC-H-like benchmark kit.

A deterministic, scale-factor-parameterized generator for the TPC-H
schema and data (dialect and index set modeled on the OSDB
implementation the paper used), the query texts the experiments need,
and the :class:`Workload` abstraction of the paper's ``W_i``.
"""

from repro.workloads.tpch_schema import (
    TPCH_TABLES,
    OSDB_INDEXES,
    tpch_schema,
)
from repro.workloads.tpch_data import TpchDataGenerator, build_tpch_database
from repro.workloads.tpch_queries import QUERIES, tpch_query
from repro.workloads.workload import Workload, scan_heavy_workload, cpu_heavy_workload

__all__ = [
    "TPCH_TABLES",
    "OSDB_INDEXES",
    "tpch_schema",
    "TpchDataGenerator",
    "build_tpch_database",
    "QUERIES",
    "tpch_query",
    "Workload",
    "scan_heavy_workload",
    "cpu_heavy_workload",
]
