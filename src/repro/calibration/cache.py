"""Caching, persisting, and interpolating calibrated parameters.

Overview
--------
Calibration is "a fairly lengthy process" (paper, Section 7), so each
allocation is calibrated at most once per machine. The cache also
implements the paper's suggested refinement for reducing the number of
calibration experiments: calibrate a coarse grid of allocations and
*interpolate* parameters for allocations in between (multilinear over
the CPU/memory/I/O share axes). The interpolation ablation benchmark
quantifies what this costs in accuracy.

API
---
* :meth:`CalibrationCache.params_for` — the only lookup path:
  ``R -> P`` answered from the cache, by interpolation, or by running a
  fresh experiment (in that order).
* :meth:`CalibrationCache.calibrate_grid` — pre-populate a grid of
  share levels (the interpolation substrate).
* :meth:`CalibrationCache.save` / :meth:`CalibrationCache.load` —
  persist calibrated points as JSON; valid for any database and
  workload on the same machine.

Graceful degradation
--------------------
A production designer must keep producing allocations when a
calibration experiment dies for good (a permanently degraded
allocation, an ill-conditioned solve). When the runner raises a
permanent :class:`~repro.util.errors.CalibrationError`,
:meth:`CalibrationCache.params_for` walks a fallback chain instead of
propagating:

1. **retry** the whole experiment (``max_experiment_attempts``, the
   runner has already retried individual measurements);
2. **nearest calibrated allocation** — the cached point closest in
   share space stands in for the dead one;
3. **PostgreSQL defaults** — with an empty cache, the uncalibrated
   :meth:`OptimizerParameters.defaults` keep the pipeline alive.

Every tier the chain exercises is recorded: a :class:`FallbackEvent`
is appended to :attr:`CalibrationCache.fallback_log` and the
``resilience.fallbacks`` counter (labelled ``kind=retry|nearest|
default``) is incremented — ``retry`` when a whole-experiment retry
rescued the lookup (the answer is still a real calibration),
``nearest``/``default`` when the experiment died for good. Resilience
report sections render one row per tier, so a run's degradation mix is
visible at a glance. Fallback parameters are remembered separately
from calibrated ones, so they are never persisted by
:meth:`CalibrationCache.save` or used as interpolation corners.

Observability
-------------
Every lookup increments exactly one of the
``calibration.cache.exact_hits`` / ``calibration.cache.interpolated`` /
``calibration.cache.fresh`` counters, so a run report shows how many
optimizer-parameter requests were absorbed by the cache versus paid for
with a new experiment. Experiment-level retries count on
``resilience.retries`` (``site=experiment``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.calibration.runner import CalibrationRunner
from repro.obs import metrics
from repro.optimizer.params import OptimizerParameters
from repro.util.errors import CalibrationError
from repro.virt.resources import ResourceVector

#: Shares are quantized to this many decimals for cache keys.
_KEY_DECIMALS = 4

#: Current on-disk cache format (checksummed, atomically written; v3
#: adds an optional embedded surrogate fit block).
_CACHE_FORMAT = "repro-calibration-cache/3"
#: Formats :meth:`CalibrationCache.load` accepts (v1 predates checksums,
#: v2 predates surrogate fits).
_CACHE_FORMATS = {"repro-calibration-cache/1", "repro-calibration-cache/2",
                  _CACHE_FORMAT}
#: Formats whose files carry a points checksum.
_CHECKSUMMED_FORMATS = {"repro-calibration-cache/2", _CACHE_FORMAT}


def _key(allocation: ResourceVector) -> Tuple[float, float, float]:
    return tuple(round(s, _KEY_DECIMALS) for s in allocation.as_tuple())


@dataclass(frozen=True)
class FallbackEvent:
    """One recorded degradation of a ``P(R)`` lookup."""

    allocation: Tuple[float, float, float]
    #: ``"retry"`` (a whole-experiment retry rescued the lookup),
    #: ``"nearest"`` (served by another calibrated point) or
    #: ``"default"`` (served by uncalibrated defaults).
    kind: str
    #: The calibrated point that stood in (``nearest`` only).
    source: Optional[Tuple[float, float, float]]
    #: The permanent error that forced the fallback.
    reason: str


class CalibrationCache:
    """Memoized ``R -> P`` with interpolation and graceful degradation."""

    def __init__(self, runner: CalibrationRunner, interpolate: bool = False,
                 max_experiment_attempts: int = 2, journal=None):
        if max_experiment_attempts < 1:
            raise CalibrationError("max_experiment_attempts must be >= 1")
        self._runner = runner
        self._interpolate = interpolate
        self._max_experiment_attempts = max_experiment_attempts
        #: Optional :class:`repro.recovery.RunJournal`; every freshly
        #: calibrated point is appended as a ``calibration`` record the
        #: moment it completes, so a killed sweep can resume without
        #: repeating paid-for experiments.
        self._journal = journal
        self._cache: Dict[Tuple[float, float, float], OptimizerParameters] = {}
        # Degraded answers are remembered so a dead allocation is not
        # re-attempted on every probe, but kept apart from calibrated
        # points: they must never be saved or interpolated from.
        self._fallbacks: Dict[Tuple[float, float, float], OptimizerParameters] = {}
        self.fallback_log: List[FallbackEvent] = []
        # An attached surrogate fit rides along in v3 cache files (see
        # attach_surrogate / surrogate below); None until attached or
        # loaded from a v3 file that embeds one.
        self._surrogate = None

    @property
    def calibrated_points(self) -> List[Tuple[float, float, float]]:
        return sorted(self._cache)

    @property
    def n_calibrations(self) -> int:
        return len(self._cache)

    # -- population -------------------------------------------------------

    def calibrate_grid(self, cpu_shares: Sequence[float],
                       memory_shares: Sequence[float],
                       io_shares: Sequence[float] = (1.0,)) -> int:
        """Calibrate the cross product of share levels; returns count."""
        count = 0
        for cpu, mem, io in itertools.product(cpu_shares, memory_shares, io_shares):
            self.params_for(ResourceVector.of(cpu=cpu, memory=mem, io=io),
                            exact=True)
            count += 1
        return count

    # -- lookup -----------------------------------------------------------------

    def params_for(self, allocation: ResourceVector,
                   exact: bool = False) -> OptimizerParameters:
        """Parameters for *allocation*.

        With interpolation enabled (and *exact* false), an uncalibrated
        allocation is answered from the surrounding calibrated grid
        points when possible; otherwise a fresh calibration runs. A
        permanently failing experiment degrades through the fallback
        chain (module docstring) instead of raising.
        """
        key = _key(allocation)
        cached = self._cache.get(key)
        if cached is not None:
            metrics.counter("calibration.cache.exact_hits").inc()
            return cached
        degraded = self._fallbacks.get(key)
        if degraded is not None:
            metrics.counter("calibration.cache.exact_hits").inc()
            return degraded
        if self._interpolate and not exact:
            interpolated = self._try_interpolate(allocation)
            if interpolated is not None:
                metrics.counter("calibration.cache.interpolated").inc()
                return interpolated
        metrics.counter("calibration.cache.fresh").inc()
        try:
            params = self._calibrate_with_retries(allocation)
        except CalibrationError as error:
            params = self._fall_back(key, error)
            self._fallbacks[key] = params
            return params
        self._cache[key] = params
        if self._journal is not None:
            self._journal.append("calibration", {
                "allocation": list(key),
                "parameters": params.as_dict(),
            })
        return params

    def add_point(self, allocation: Tuple[float, float, float],
                  params: OptimizerParameters) -> None:
        """Install a calibrated point directly (journal replay, load)."""
        key = tuple(round(float(s), _KEY_DECIMALS) for s in allocation)
        if len(key) != 3:
            raise CalibrationError("allocation keys must have 3 shares")
        self._cache[key] = params

    def _calibrate_with_retries(self,
                                allocation: ResourceVector) -> OptimizerParameters:
        """Run the experiment, retrying whole-experiment failures once more."""
        last_error: Optional[CalibrationError] = None
        for attempt in range(1, self._max_experiment_attempts + 1):
            try:
                params = self._runner.parameters_for(allocation)
            except CalibrationError as error:
                last_error = error
                if attempt < self._max_experiment_attempts:
                    metrics.counter("resilience.retries",
                                    site="experiment").inc()
                continue
            if attempt > 1:
                # The first tier of the fallback chain rescued this
                # lookup: account it like the other tiers so resilience
                # reports show how often each tier fired.
                metrics.counter("resilience.fallbacks", kind="retry").inc()
                self.fallback_log.append(FallbackEvent(
                    allocation=_key(allocation), kind="retry", source=None,
                    reason=f"experiment succeeded on attempt {attempt}: "
                           f"{last_error}",
                ))
            return params
        assert last_error is not None
        raise last_error

    def _fall_back(self, key: Tuple[float, float, float],
                   error: CalibrationError) -> OptimizerParameters:
        """Nearest calibrated allocation, then PostgreSQL defaults."""
        if self._cache:
            nearest = min(
                self._cache,
                key=lambda point: sum((a - b) ** 2 for a, b in zip(point, key)),
            )
            metrics.counter("resilience.fallbacks", kind="nearest").inc()
            self.fallback_log.append(FallbackEvent(
                allocation=key, kind="nearest", source=nearest,
                reason=str(error),
            ))
            return self._cache[nearest]
        metrics.counter("resilience.fallbacks", kind="default").inc()
        self.fallback_log.append(FallbackEvent(
            allocation=key, kind="default", source=None, reason=str(error),
        ))
        return OptimizerParameters.defaults()

    # -- surrogate fits ----------------------------------------------------

    def attach_surrogate(self, surface) -> None:
        """Attach a fitted :class:`~repro.surrogate.ParameterSurface`.

        The fit is persisted inside v3 cache files by :meth:`save` and
        restored by :meth:`load`, so one adaptive-refinement run pays
        for the surface once per machine. Passing ``None`` detaches.
        """
        self._surrogate = surface

    @property
    def surrogate(self):
        """The attached surrogate fit (``None`` when not fitted)."""
        return self._surrogate

    # -- persistence -----------------------------------------------------------------

    @staticmethod
    def _points_checksum(points) -> str:
        import hashlib
        import json

        canonical = json.dumps(points, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def save(self, path) -> int:
        """Write all calibrated points to a JSON file; returns the count.

        Calibration depends only on the machine and allocation, so a
        saved cache is valid for any database and workload on the same
        machine — persisting it amortizes the "fairly lengthy"
        calibration process across sessions.

        The write is atomic (temp file + ``os.replace``) and the file
        embeds a checksum over the points, so a reader can tell a
        half-written or bit-rotted cache from a good one. A crash
        mid-save leaves any previous cache file untouched.
        """
        import json
        import os
        import pathlib
        import tempfile

        path = pathlib.Path(path)
        points = [
            {"allocation": list(key), "parameters": params.as_dict()}
            for key, params in sorted(self._cache.items())
        ]
        payload = {
            "format": _CACHE_FORMAT,
            "checksum": self._points_checksum(points),
            "points": points,
        }
        if self._surrogate is not None:
            fit = self._surrogate.as_dict()
            payload["surrogate"] = fit
            payload["surrogate_checksum"] = self._points_checksum(fit)
        fd, temp_name = tempfile.mkstemp(
            dir=str(path.parent) or ".", prefix=path.name + ".",
            suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=2)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return len(self._cache)

    def load(self, path) -> int:
        """Merge calibrated points from a JSON file; returns the count added.

        Raises a permanent :class:`~repro.util.errors.CalibrationError`
        — never a raw ``json.JSONDecodeError`` or ``KeyError`` — when
        the file is truncated, corrupted (checksum mismatch), from an
        unrecognized format version, or structurally malformed.
        """
        import json

        from repro.optimizer.params import OptimizerParameters as _Params

        try:
            with open(path) as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise CalibrationError(
                f"cannot read calibration cache {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise CalibrationError(
                f"calibration cache {path} is corrupt or truncated: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise CalibrationError(
                f"calibration cache {path} is not a JSON object")
        version = payload.get("format")
        if version not in _CACHE_FORMATS:
            raise CalibrationError(
                f"unrecognized calibration cache format {version!r} in "
                f"{path}; expected one of {sorted(_CACHE_FORMATS)}")
        try:
            points = payload["points"]
            if version in _CHECKSUMMED_FORMATS:
                stored = payload["checksum"]
                expected = self._points_checksum(points)
                if stored != expected:
                    raise CalibrationError(
                        f"calibration cache {path} checksum mismatch "
                        f"({stored} != {expected}): file is corrupted")
            added = 0
            for point in points:
                key = tuple(float(v) for v in point["allocation"])
                if len(key) != 3:
                    raise CalibrationError(
                        "allocation keys must have 3 shares")
                if key not in self._cache:
                    self._cache[key] = _Params.from_dict(point["parameters"])
                    added += 1
            if version == _CACHE_FORMAT and "surrogate" in payload:
                self._load_surrogate(path, payload)
        except CalibrationError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CalibrationError(
                f"calibration cache {path} is structurally malformed: "
                f"{exc!r}") from exc
        return added

    def _load_surrogate(self, path, payload: dict) -> None:
        """Restore the embedded surrogate fit from a v3 cache payload."""
        from repro.surrogate.surface import ParameterSurface
        from repro.util.errors import SurrogateError

        fit = payload["surrogate"]
        stored = payload.get("surrogate_checksum")
        expected = self._points_checksum(fit)
        if stored != expected:
            raise CalibrationError(
                f"calibration cache {path} surrogate checksum mismatch "
                f"({stored} != {expected}): file is corrupted")
        try:
            self._surrogate = ParameterSurface.from_dict(fit)
        except SurrogateError as exc:
            raise CalibrationError(
                f"calibration cache {path} embeds an unusable surrogate "
                f"fit: {exc}") from exc

    # -- interpolation ---------------------------------------------------------------

    def _axis_values(self, axis: int) -> List[float]:
        return sorted({point[axis] for point in self._cache})

    @staticmethod
    def _bracket(values: List[float], target: float) -> Optional[Tuple[float, float]]:
        """The two grid values surrounding *target* (may coincide)."""
        if not values:
            return None
        below = [v for v in values if v <= target + 1e-12]
        above = [v for v in values if v >= target - 1e-12]
        if not below or not above:
            return None  # extrapolation is worse than calibrating
        return max(below), min(above)

    def _try_interpolate(self, allocation: ResourceVector) -> Optional[OptimizerParameters]:
        target = _key(allocation)
        brackets = []
        for axis in range(3):
            bracket = self._bracket(self._axis_values(axis), target[axis])
            if bracket is None:
                return None
            brackets.append(bracket)

        corners: List[Tuple[Tuple[float, float, float], float]] = []
        for corner in itertools.product(*brackets):
            weight = 1.0
            for axis in range(3):
                lo, hi = brackets[axis]
                if hi == lo:
                    fraction = 0.0
                else:
                    fraction = (target[axis] - lo) / (hi - lo)
                weight *= (1.0 - fraction) if corner[axis] == lo else fraction
            if weight > 0 and corner not in self._cache:
                return None  # a needed corner was never calibrated
            if weight > 0:
                corners.append((corner, weight))
        if not corners:
            return None
        total = sum(w for _c, w in corners)
        if total <= 0:
            return None

        # Blend in the *time* domain via the shared surrogate rule
        # (repro.surrogate.surface.blend_corners): the ratio parameters
        # are per-unit times divided by T_seq, and both numerator and
        # denominator vary with the allocation — interpolating the
        # ratios directly compounds their curvatures. Imported lazily:
        # the surrogate package is an optional consumer of this module,
        # never a load-time dependency.
        from repro.surrogate.surface import blend_corners

        # Historical behavior: cache-side interpolation blends without
        # the monotonicity clamp (the full surrogate guard rails live on
        # ParameterSurface, the dedicated fit object).
        return blend_corners(
            [(self._cache[corner], weight) for corner, weight in corners],
            clamp=False)
