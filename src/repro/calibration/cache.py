"""Caching, persisting, and interpolating calibrated parameters.

Overview
--------
Calibration is "a fairly lengthy process" (paper, Section 7), so each
allocation is calibrated at most once per machine. The cache also
implements the paper's suggested refinement for reducing the number of
calibration experiments: calibrate a coarse grid of allocations and
*interpolate* parameters for allocations in between (multilinear over
the CPU/memory/I/O share axes). The interpolation ablation benchmark
quantifies what this costs in accuracy.

API
---
* :meth:`CalibrationCache.params_for` — the only lookup path:
  ``R -> P`` answered from the cache, by interpolation, or by running a
  fresh experiment (in that order).
* :meth:`CalibrationCache.calibrate_grid` — pre-populate a grid of
  share levels (the interpolation substrate).
* :meth:`CalibrationCache.save` / :meth:`CalibrationCache.load` —
  persist calibrated points as JSON; valid for any database and
  workload on the same machine.

Graceful degradation
--------------------
A production designer must keep producing allocations when a
calibration experiment dies for good (a permanently degraded
allocation, an ill-conditioned solve). When the runner raises a
permanent :class:`~repro.util.errors.CalibrationError`,
:meth:`CalibrationCache.params_for` walks a fallback chain instead of
propagating:

1. **retry** the whole experiment (``max_experiment_attempts``, the
   runner has already retried individual measurements);
2. **nearest calibrated allocation** — the cached point closest in
   share space stands in for the dead one;
3. **PostgreSQL defaults** — with an empty cache, the uncalibrated
   :meth:`OptimizerParameters.defaults` keep the pipeline alive.

Every degradation is recorded: a :class:`FallbackEvent` is appended to
:attr:`CalibrationCache.fallback_log` and the ``resilience.fallbacks``
counter (labelled ``kind=nearest|default``) is incremented. Fallback
parameters are remembered separately from calibrated ones, so they are
never persisted by :meth:`CalibrationCache.save` or used as
interpolation corners.

Observability
-------------
Every lookup increments exactly one of the
``calibration.cache.exact_hits`` / ``calibration.cache.interpolated`` /
``calibration.cache.fresh`` counters, so a run report shows how many
optimizer-parameter requests were absorbed by the cache versus paid for
with a new experiment. Experiment-level retries count on
``resilience.retries`` (``site=experiment``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.calibration.runner import CalibrationRunner
from repro.obs import metrics
from repro.optimizer.params import OptimizerParameters
from repro.util.errors import CalibrationError
from repro.virt.resources import ResourceKind, ResourceVector

#: Shares are quantized to this many decimals for cache keys.
_KEY_DECIMALS = 4


def _key(allocation: ResourceVector) -> Tuple[float, float, float]:
    return tuple(round(s, _KEY_DECIMALS) for s in allocation.as_tuple())


@dataclass(frozen=True)
class FallbackEvent:
    """One recorded degradation of a ``P(R)`` lookup."""

    allocation: Tuple[float, float, float]
    #: ``"nearest"`` (served by another calibrated point) or
    #: ``"default"`` (served by uncalibrated defaults).
    kind: str
    #: The calibrated point that stood in (``nearest`` only).
    source: Optional[Tuple[float, float, float]]
    #: The permanent error that forced the fallback.
    reason: str


class CalibrationCache:
    """Memoized ``R -> P`` with interpolation and graceful degradation."""

    def __init__(self, runner: CalibrationRunner, interpolate: bool = False,
                 max_experiment_attempts: int = 2):
        if max_experiment_attempts < 1:
            raise CalibrationError("max_experiment_attempts must be >= 1")
        self._runner = runner
        self._interpolate = interpolate
        self._max_experiment_attempts = max_experiment_attempts
        self._cache: Dict[Tuple[float, float, float], OptimizerParameters] = {}
        # Degraded answers are remembered so a dead allocation is not
        # re-attempted on every probe, but kept apart from calibrated
        # points: they must never be saved or interpolated from.
        self._fallbacks: Dict[Tuple[float, float, float], OptimizerParameters] = {}
        self.fallback_log: List[FallbackEvent] = []

    @property
    def calibrated_points(self) -> List[Tuple[float, float, float]]:
        return sorted(self._cache)

    @property
    def n_calibrations(self) -> int:
        return len(self._cache)

    # -- population -------------------------------------------------------

    def calibrate_grid(self, cpu_shares: Sequence[float],
                       memory_shares: Sequence[float],
                       io_shares: Sequence[float] = (1.0,)) -> int:
        """Calibrate the cross product of share levels; returns count."""
        count = 0
        for cpu, mem, io in itertools.product(cpu_shares, memory_shares, io_shares):
            self.params_for(ResourceVector.of(cpu=cpu, memory=mem, io=io),
                            exact=True)
            count += 1
        return count

    # -- lookup -----------------------------------------------------------------

    def params_for(self, allocation: ResourceVector,
                   exact: bool = False) -> OptimizerParameters:
        """Parameters for *allocation*.

        With interpolation enabled (and *exact* false), an uncalibrated
        allocation is answered from the surrounding calibrated grid
        points when possible; otherwise a fresh calibration runs. A
        permanently failing experiment degrades through the fallback
        chain (module docstring) instead of raising.
        """
        key = _key(allocation)
        cached = self._cache.get(key)
        if cached is not None:
            metrics.counter("calibration.cache.exact_hits").inc()
            return cached
        degraded = self._fallbacks.get(key)
        if degraded is not None:
            metrics.counter("calibration.cache.exact_hits").inc()
            return degraded
        if self._interpolate and not exact:
            interpolated = self._try_interpolate(allocation)
            if interpolated is not None:
                metrics.counter("calibration.cache.interpolated").inc()
                return interpolated
        metrics.counter("calibration.cache.fresh").inc()
        try:
            params = self._calibrate_with_retries(allocation)
        except CalibrationError as error:
            params = self._fall_back(key, error)
            self._fallbacks[key] = params
            return params
        self._cache[key] = params
        return params

    def _calibrate_with_retries(self,
                                allocation: ResourceVector) -> OptimizerParameters:
        """Run the experiment, retrying whole-experiment failures once more."""
        last_error: Optional[CalibrationError] = None
        for attempt in range(1, self._max_experiment_attempts + 1):
            try:
                return self._runner.parameters_for(allocation)
            except CalibrationError as error:
                last_error = error
                if attempt < self._max_experiment_attempts:
                    metrics.counter("resilience.retries",
                                    site="experiment").inc()
        assert last_error is not None
        raise last_error

    def _fall_back(self, key: Tuple[float, float, float],
                   error: CalibrationError) -> OptimizerParameters:
        """Nearest calibrated allocation, then PostgreSQL defaults."""
        if self._cache:
            nearest = min(
                self._cache,
                key=lambda point: sum((a - b) ** 2 for a, b in zip(point, key)),
            )
            metrics.counter("resilience.fallbacks", kind="nearest").inc()
            self.fallback_log.append(FallbackEvent(
                allocation=key, kind="nearest", source=nearest,
                reason=str(error),
            ))
            return self._cache[nearest]
        metrics.counter("resilience.fallbacks", kind="default").inc()
        self.fallback_log.append(FallbackEvent(
            allocation=key, kind="default", source=None, reason=str(error),
        ))
        return OptimizerParameters.defaults()

    # -- persistence -----------------------------------------------------------------

    def save(self, path) -> int:
        """Write all calibrated points to a JSON file; returns the count.

        Calibration depends only on the machine and allocation, so a
        saved cache is valid for any database and workload on the same
        machine — persisting it amortizes the "fairly lengthy"
        calibration process across sessions.
        """
        import json

        payload = {
            "format": "repro-calibration-cache/1",
            "points": [
                {"allocation": list(key), "parameters": params.as_dict()}
                for key, params in sorted(self._cache.items())
            ],
        }
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)
        return len(self._cache)

    def load(self, path) -> int:
        """Merge calibrated points from a JSON file; returns the count added."""
        import json

        from repro.optimizer.params import OptimizerParameters as _Params

        with open(path) as handle:
            payload = json.load(handle)
        if payload.get("format") != "repro-calibration-cache/1":
            raise CalibrationError(
                f"unrecognized calibration cache format in {path}"
            )
        added = 0
        for point in payload["points"]:
            key = tuple(float(v) for v in point["allocation"])
            if len(key) != 3:
                raise CalibrationError("allocation keys must have 3 shares")
            if key not in self._cache:
                self._cache[key] = _Params.from_dict(point["parameters"])
                added += 1
        return added

    # -- interpolation ---------------------------------------------------------------

    def _axis_values(self, axis: int) -> List[float]:
        return sorted({point[axis] for point in self._cache})

    @staticmethod
    def _bracket(values: List[float], target: float) -> Optional[Tuple[float, float]]:
        """The two grid values surrounding *target* (may coincide)."""
        if not values:
            return None
        below = [v for v in values if v <= target + 1e-12]
        above = [v for v in values if v >= target - 1e-12]
        if not below or not above:
            return None  # extrapolation is worse than calibrating
        return max(below), min(above)

    def _try_interpolate(self, allocation: ResourceVector) -> Optional[OptimizerParameters]:
        target = _key(allocation)
        brackets = []
        for axis in range(3):
            bracket = self._bracket(self._axis_values(axis), target[axis])
            if bracket is None:
                return None
            brackets.append(bracket)

        corners: List[Tuple[Tuple[float, float, float], float]] = []
        for corner in itertools.product(*brackets):
            weight = 1.0
            for axis in range(3):
                lo, hi = brackets[axis]
                if hi == lo:
                    fraction = 0.0
                else:
                    fraction = (target[axis] - lo) / (hi - lo)
                weight *= (1.0 - fraction) if corner[axis] == lo else fraction
            if weight > 0 and corner not in self._cache:
                return None  # a needed corner was never calibrated
            if weight > 0:
                corners.append((corner, weight))
        if not corners:
            return None
        total = sum(w for _c, w in corners)
        if total <= 0:
            return None

        # Blend in the *time* domain: the ratio parameters are per-unit
        # times divided by T_seq, and both numerator and denominator
        # vary with the allocation. Interpolating the ratios directly
        # compounds their curvatures; interpolating the underlying unit
        # times and re-normalizing is markedly more accurate.
        ratio_names = ("random_page_cost", "cpu_tuple_cost",
                       "cpu_index_tuple_cost", "cpu_operator_cost",
                       "cpu_like_byte_cost")
        blended_times: Dict[str, float] = {name: 0.0 for name in ratio_names}
        blended_t_seq = 0.0
        blended_cache = 0.0
        blended_sort = 0.0
        for corner, weight in corners:
            params = self._cache[corner]
            share = weight / total
            blended_t_seq += params.seconds_per_seq_page * share
            blended_cache += params.effective_cache_size * share
            blended_sort += params.sort_mem_pages * share
            values = params.as_dict()
            for name in ratio_names:
                blended_times[name] += (
                    values[name] * params.seconds_per_seq_page * share
                )
        return OptimizerParameters(
            seq_page_cost=1.0,
            random_page_cost=blended_times["random_page_cost"] / blended_t_seq,
            cpu_tuple_cost=blended_times["cpu_tuple_cost"] / blended_t_seq,
            cpu_index_tuple_cost=(
                blended_times["cpu_index_tuple_cost"] / blended_t_seq
            ),
            cpu_operator_cost=blended_times["cpu_operator_cost"] / blended_t_seq,
            cpu_like_byte_cost=blended_times["cpu_like_byte_cost"] / blended_t_seq,
            effective_cache_size=int(blended_cache),
            sort_mem_pages=int(blended_sort),
            seconds_per_seq_page=blended_t_seq,
        )
