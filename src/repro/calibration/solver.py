"""Solving the calibration equations for ``P``.

Each measured calibration query contributes one equation

    t_i  =  seq_i * T_seq + rand_i * T_rand + tup_i * T_tup
          + itup_i * T_itup + ops_i * T_op + like_i * T_like

where the coefficients are the query's known work counts and the
unknowns are the per-unit times. The system is solved by ridge-
regularized non-negative least squares: the regularizer anchors weakly
identified parameters (index-tuple cost is nearly collinear with random
pages) to PostgreSQL's default *ratios* scaled by the measured
sequential-page time, which is what a practitioner would do when a
calibration experiment cannot separate two parameters.

The recovered times are then normalized by ``T_seq`` to produce the
optimizer parameter set, matching the paper's definition of
``cpu_tuple_cost`` as a fraction of a sequential page fetch.

Diagnostics
-----------
Least squares happily returns *something* for a degenerate system; a
rank-deficient design matrix used to slide through and silently poison
``P(R)``. The solver now refuses: before solving it checks the rank and
condition number of the (weighted, column-scaled) data matrix and
raises :class:`~repro.util.errors.IllConditionedError` naming the work
categories that are not independently identified and the synthetic
queries whose rows were supposed to identify them. After solving, an
optional relative-residual check (``max_relative_residual``) flags rows
the fit cannot explain — the signature of corrupted measurements that
survived upstream filtering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.optimizer.params import OptimizerParameters
from repro.util.errors import CalibrationError, IllConditionedError

#: Column order of the design matrix.
CATEGORIES = ("seq_pages", "rand_pages", "tuples", "index_tuples", "ops",
              "like_bytes")

#: Ridge strength relative to the data scale.
RIDGE_LAMBDA = 1e-3

#: Condition-number ceiling for the scaled data matrix; beyond it the
#: measurements cannot separate the parameters even before ridge help.
MAX_CONDITION_NUMBER = 1e10

#: PostgreSQL default ratios used as the regularization anchor.
_ANCHOR_RATIOS = {
    "seq_pages": 1.0,
    "rand_pages": 4.0,
    "tuples": 0.01,
    "index_tuples": 0.005,
    "ops": 0.0025,
    "like_bytes": 0.0002,
}


@dataclass
class CalibrationSolution:
    """Per-unit times recovered by the solver (seconds per unit).

    ``condition_number`` and ``rank`` describe the scaled data matrix
    the fit was solved from (0 / full rank for the closed-form
    sequential protocol, which never builds a matrix).
    """

    unit_seconds: dict
    residual_rms: float
    condition_number: float = 0.0
    rank: int = len(CATEGORIES)

    def to_parameters(self, effective_cache_size: int,
                      sort_mem_pages: int) -> OptimizerParameters:
        t_seq = self.unit_seconds["seq_pages"]
        if t_seq <= 0:
            raise CalibrationError("calibration produced non-positive T_seq")
        return OptimizerParameters(
            seq_page_cost=1.0,
            random_page_cost=self.unit_seconds["rand_pages"] / t_seq,
            cpu_tuple_cost=self.unit_seconds["tuples"] / t_seq,
            cpu_index_tuple_cost=self.unit_seconds["index_tuples"] / t_seq,
            cpu_operator_cost=self.unit_seconds["ops"] / t_seq,
            cpu_like_byte_cost=self.unit_seconds["like_bytes"] / t_seq,
            effective_cache_size=effective_cache_size,
            sort_mem_pages=sort_mem_pages,
            seconds_per_seq_page=t_seq,
        )


def _row_names(query_names: Optional[Sequence[str]],
               indices: Sequence[int]) -> List[str]:
    if query_names is None:
        return [f"row {i}" for i in indices]
    return [query_names[i] for i in indices]


def _check_conditioning(A_scaled: np.ndarray,
                        query_names: Optional[Sequence[str]],
                        max_condition: float) -> tuple:
    """Rank/condition gate; returns (condition_number, rank) when sane."""
    rank = int(np.linalg.matrix_rank(A_scaled))
    singular_values = np.linalg.svd(A_scaled, compute_uv=False)
    smallest = singular_values[-1]
    condition = float(singular_values[0] / smallest) if smallest > 0 else float("inf")
    if rank < len(CATEGORIES):
        # Name the categories the measurements cannot identify: a column
        # is unidentified if dropping it does not reduce the rank (it
        # lies in the span of the others — all-zero columns included).
        degenerate = [
            category for j, category in enumerate(CATEGORIES)
            if int(np.linalg.matrix_rank(np.delete(A_scaled, j, axis=1))) == rank
        ]
        involved = sorted({
            j for j, category in enumerate(CATEGORIES) if category in degenerate
        })
        rows = [i for i in range(A_scaled.shape[0])
                if any(A_scaled[i, j] != 0 for j in involved)]
        raise IllConditionedError(
            f"design matrix is rank-deficient (rank {rank} of "
            f"{len(CATEGORIES)}): the measurements do not independently "
            f"identify {', '.join(degenerate) or 'any category'}; "
            f"queries involved: {', '.join(_row_names(query_names, rows)) or 'none'}",
            condition_number=condition,
            row_indices=rows,
            query_names=_row_names(query_names, rows),
        )
    if condition > max_condition:
        raise IllConditionedError(
            f"design matrix condition number {condition:.3g} exceeds "
            f"{max_condition:.3g}; the calibration queries are too "
            f"collinear to separate the parameters",
            condition_number=condition,
            row_indices=range(A_scaled.shape[0]),
            query_names=_row_names(query_names, range(A_scaled.shape[0])),
        )
    return condition, rank


def solve_parameters(design_rows: Sequence[Sequence[float]],
                     measured_seconds: Sequence[float],
                     query_names: Optional[Sequence[str]] = None,
                     max_condition: float = MAX_CONDITION_NUMBER,
                     max_relative_residual: Optional[float] = None,
                     ) -> CalibrationSolution:
    """Solve the calibration system; rows follow :data:`CATEGORIES`.

    *query_names* (parallel to the rows) makes diagnostics name the
    synthetic queries instead of bare row indices. A rank-deficient or
    worse-than-*max_condition* system raises
    :class:`IllConditionedError` instead of returning a silently
    poisoned solution; with *max_relative_residual* set, so does any
    row whose fitted time misses the measurement by more than that
    fraction.
    """
    if query_names is not None and len(query_names) != len(design_rows):
        raise CalibrationError("query names and design rows disagree in length")
    if len(design_rows) != len(measured_seconds):
        raise CalibrationError("design matrix and measurements disagree in length")
    if len(design_rows) < len(CATEGORIES):
        raise CalibrationError(
            f"need at least {len(CATEGORIES)} measurements, "
            f"got {len(design_rows)}"
        )
    A = np.asarray(design_rows, dtype=float)
    t = np.asarray(measured_seconds, dtype=float)
    if A.shape[1] != len(CATEGORIES):
        raise CalibrationError(
            f"design rows must have {len(CATEGORIES)} columns, "
            f"got {A.shape[1]}"
        )
    if np.any(t < 0):
        raise CalibrationError("negative measured times")

    # Rough T_seq from the most sequential-page-dominated row (among
    # rows without random I/O), used to scale the regularization anchor
    # into seconds.
    seq_col = A[:, 0].copy()
    seq_col[A[:, 1] > 0] = 0.0  # ignore rows with random fetches
    if seq_col.max() <= 0:
        seq_col = A[:, 0]
    if seq_col.max() <= 0:
        raise CalibrationError("no calibration query touched sequential pages")
    best_row = int(np.argmax(seq_col))
    t_seq_guess = max(1e-9, float(t[best_row] / seq_col[best_row]))
    anchor = np.array(
        [_ANCHOR_RATIOS[c] * t_seq_guess for c in CATEGORIES]
    )

    # Weight rows by 1/t: the suite mixes sub-millisecond cached scans
    # with multi-second index scans, and unweighted least squares would
    # fit only the big rows. Relative-error weighting treats every
    # designed query as equally informative.
    row_weight = 1.0 / np.maximum(t, max(t.max(), 1e-12) * 1e-4)
    A_weighted = A * row_weight[:, None]
    t_weighted = t * row_weight

    # Column scaling for conditioning.
    col_scale = np.maximum(A_weighted.max(axis=0), 1e-12)
    A_scaled = A_weighted / col_scale
    anchor_scaled = anchor * col_scale

    condition_number, rank = _check_conditioning(
        A_scaled, query_names, max_condition)

    lam = RIDGE_LAMBDA * np.linalg.norm(A_scaled, ord="fro") / len(CATEGORIES)
    augmented_A = np.vstack([A_scaled, lam * np.eye(len(CATEGORIES))])
    augmented_t = np.concatenate([t_weighted, lam * anchor_scaled])

    solution, *_ = np.linalg.lstsq(augmented_A, augmented_t, rcond=None)
    unit_seconds = solution / col_scale
    # Parameters are times: clamp tiny negatives from noise to the anchor.
    unit_seconds = np.where(unit_seconds <= 0, anchor, unit_seconds)

    residual = A @ unit_seconds - t
    rms = float(np.sqrt(np.mean(residual ** 2))) if len(t) else 0.0
    if max_relative_residual is not None:
        floor = max(float(t.max()), 1e-12) * 1e-4
        relative = np.abs(residual) / np.maximum(t, floor)
        bad = [int(i) for i in np.nonzero(relative > max_relative_residual)[0]]
        if bad:
            worst = max(bad, key=lambda i: relative[i])
            raise IllConditionedError(
                f"{len(bad)} measurement(s) unexplained by the fit "
                f"(worst: {_row_names(query_names, [worst])[0]} off by "
                f"{relative[worst]:.0%}); the rows look corrupted: "
                f"{', '.join(_row_names(query_names, bad))}",
                condition_number=condition_number,
                row_indices=bad,
                query_names=_row_names(query_names, bad),
            )
    return CalibrationSolution(
        unit_seconds=dict(zip(CATEGORIES, unit_seconds.tolist())),
        residual_rms=rms,
        condition_number=condition_number,
        rank=rank,
    )
