"""Running the calibration experiments.

For an allocation ``R``, the runner boots a virtual machine with those
shares on the target physical machine, installs the synthetic database,
executes designed queries, measures their simulated execution times
through the VM performance model, and deduces the optimizer parameters
``P`` — Section 5 of the paper.

Two protocols are provided:

* ``sequential`` (default): the classical optimizer-calibration scheme.
  CPU-priced parameters are isolated on the always-cached small table
  (pairs of queries differing in exactly one work category), then the
  page-fetch times are derived from steady-state big-table runs with
  the CPU terms subtracted. Every parameter has a closed-form estimate.
* ``lstsq``: all suite measurements are fitted jointly by regularized
  least squares (:mod:`repro.calibration.solver`). Used by the
  calibration ablation as the comparison point.

Measured repetitions run against a cache primed by one unmeasured
execution, so times reflect the steady-state behaviour the optimizer's
cost formulas model.

Execute once, replay many
-------------------------
A measurement's engine work is a pure function of the database state
(buffer-pool capacity and sort memory, both set by the booted VM's
memory share) and the query: the runner cold-restarts and re-primes the
pool before every measurement, so nothing else leaks in. The runner
therefore memoizes each query's executed work — the design row and the
:class:`WorkTrace` — per (pool capacity, sort pages, query, repetition
count) and replays it on later calibrations instead of re-executing,
sharing the buffer-pool warmup across all calibrations that land on the
same pool size. Only the *execution* is shared: every calibration still
times the trace through its own allocation's :class:`VMPerfModel` with
its own noise and fault streams, so calibrated parameters are
bit-identical with the cache on or off (``reuse_traces=False`` disables
it). Replays count on the ``calibration.trace_cache_hits`` counter.

Resilience: measurements run under a :class:`repro.faults.RetryPolicy`.
Each repetition takes ``policy.trials`` trials, rejects outlier trials
by MAD filtering, and reports the median of the survivors; a trial that
raises a transient :class:`~repro.util.errors.MeasurementFault` (or
exceeds the simulated measurement deadline) is retried with exponential
backoff on the *simulated* clock, and only when the retry budget is
exhausted does the experiment fail with a permanent
:class:`~repro.util.errors.CalibrationError` (see ``docs/robustness.md``).

Batched trials
--------------
With an :class:`~repro.parallel.EvaluationEngine` attached (the
``engine`` argument; the supervisor and the ``--workers`` CLI flag wire
one in), each repetition's ``policy.trials`` trials run as one engine
batch instead of a serial loop. Every trial is hermetic: it gets its
own :meth:`~repro.faults.FaultInjector.fork_stream` fault stream and
its own forked noise stream, both derived from the trial's label alone
— so the faults, retries, and timings a trial observes are a function
of its identity, never of which worker ran it, and an N-worker run is
bit-identical to a 1-worker run. Retry backoff, retry counters, and
injected-fault counts are computed inside the trial but *applied*
serially in trial order by the coordinating thread, keeping every
metric bit-identical too (see ``docs/parallelism.md``). Without an
engine, the original sequential-stream code path runs unchanged.

Observability: each :meth:`CalibrationRunner.calibrate` call opens a
``calibrate`` span (tagged with the allocation and protocol) and
increments ``calibration.experiments``; every measured repetition
increments ``calibration.measurements`` and adds its simulated seconds
to the ``sim.seconds`` counter (``source=calibration``). Retries count
on ``resilience.retries`` (labelled ``site=boot|measurement``),
rejected trials on ``resilience.outliers_rejected``, and backoff waits
accumulate into ``sim.seconds`` (``source=backoff``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, TypeVar

from repro.calibration.solver import CalibrationSolution, solve_parameters
from repro.calibration.synthetic import CalibrationWorkbench
from repro.engine.database import Database
from repro.engine.plans import IndexScan, PlanNode, walk
from repro.engine.trace import WorkTrace
from repro.faults.injector import FaultInjector
from repro.faults.retry import RetryPolicy, robust_seconds
from repro.obs import metrics
from repro.obs.spans import span
from repro.optimizer.params import OptimizerParameters
from repro.util.errors import (
    CalibrationError,
    MeasurementFault,
    MeasurementTimeout,
)
from repro.util.rng import DeterministicRng
from repro.virt.machine import PhysicalMachine
from repro.virt.perf import VMPerfModel
from repro.virt.resources import ResourceVector
from repro.virt.vm import VirtualMachine, VMConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel.engine import EvaluationEngine

_T = TypeVar("_T")

#: Floor for derived per-unit times (seconds); avoids zero/negative
#: parameters when a subtraction is dominated by model error.
MIN_UNIT_SECONDS = 1e-9


@dataclass
class CalibrationMeasurement:
    """One calibration query's measurement."""

    query_name: str
    design_row: List[float]
    measured_seconds: float
    trace: WorkTrace


@dataclass
class _TrialOutcome:
    """One batched trial's result plus its deferred side effects.

    A trial task must not touch shared state (the engine may run it in
    any worker, or another process entirely), so everything the serial
    path would have applied immediately — backoff seconds, retry
    counts, injected-fault counts — comes back here and is applied by
    the coordinating thread, serially, in trial order.
    """

    seconds: float
    backoff_seconds: float = 0.0
    retries: int = 0
    fault_counts: Dict[str, int] = field(default_factory=dict)


@dataclass
class CalibrationReport:
    """Everything one calibration run produced."""

    allocation: ResourceVector
    method: str = "sequential"
    measurements: List[CalibrationMeasurement] = field(default_factory=list)
    solution: Optional[CalibrationSolution] = None
    parameters: Optional[OptimizerParameters] = None


class CalibrationRunner:
    """Calibrates ``P(R)`` on one physical machine."""

    def __init__(self, machine: PhysicalMachine,
                 workbench: Optional[CalibrationWorkbench] = None,
                 method: str = "sequential",
                 noise_sigma: float = 0.0, seed: int = 1234,
                 injector: Optional[FaultInjector] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 engine: Optional["EvaluationEngine"] = None,
                 reuse_traces: bool = True):
        if method not in ("sequential", "lstsq"):
            raise CalibrationError(f"unknown calibration method {method!r}")
        self._machine = machine
        self._workbench = workbench or CalibrationWorkbench()
        self._method = method
        self._noise_sigma = noise_sigma
        self._rng = DeterministicRng(seed).fork("calibration-runner")
        self._injector = injector
        self._policy = retry_policy or RetryPolicy()
        self._engine = engine
        self._reuse_traces = reuse_traces
        # (pool capacity, sort pages, query, repetitions) -> the
        # executed work of each repetition; see "Execute once, replay
        # many" in the module docstring. Entries are treated read-only.
        self._trace_cache: Dict[
            tuple, List[Tuple[List[float], WorkTrace]]] = {}
        #: Simulated seconds spent waiting in retry backoff.
        self.backoff_seconds_total = 0.0
        # The synthetic database is allocation-independent; build once
        # and re-home it per calibration.
        self._database = self._workbench.build_database()

    @property
    def machine(self) -> PhysicalMachine:
        return self._machine

    @property
    def method(self) -> str:
        return self._method

    @property
    def retry_policy(self) -> RetryPolicy:
        return self._policy

    @property
    def injector(self) -> Optional[FaultInjector]:
        return self._injector

    # -- measurement plumbing ------------------------------------------------

    def _with_retries(self, site: str, name: str,
                      attempt_once: Callable[[], _T]) -> _T:
        """Run *attempt_once*, retrying transient faults with backoff.

        Backoff waits advance the simulated clock only (counted into
        ``sim.seconds`` with ``source=backoff``); exhausting the budget
        escalates the last transient fault into a permanent
        :class:`CalibrationError` (see the contract in
        :mod:`repro.util.errors`).
        """
        policy = self._policy
        for attempt in range(1, policy.max_attempts + 1):
            try:
                return attempt_once()
            except MeasurementFault as fault:
                if attempt >= policy.max_attempts:
                    raise CalibrationError(
                        f"{site} {name!r} failed after {attempt} "
                        f"attempt(s): {fault}"
                    ) from fault
                backoff = policy.backoff_seconds(attempt)
                self.backoff_seconds_total += backoff
                metrics.counter("resilience.retries", site=site).inc()
                metrics.counter("sim.seconds", source="backoff").inc(backoff)
        raise AssertionError("unreachable")  # pragma: no cover

    def _boot(self, allocation: ResourceVector) -> VMPerfModel:
        def attempt_boot() -> VMPerfModel:
            if self._injector is not None:
                self._injector.on_boot(allocation.as_tuple())
            vm = VirtualMachine(
                self._machine,
                VMConfig(name=f"calibration-{allocation.as_tuple()}",
                         shares=allocation),
            )
            vm.attach_guest(self._database)
            vm.start()
            return VMPerfModel(
                vm, noise_rng=self._rng if self._noise_sigma > 0 else None,
                noise_sigma=self._noise_sigma,
                injector=self._injector,
            )

        return self._with_retries("boot", str(allocation.as_tuple()),
                                  attempt_boot)

    def _timed_trial(self, perf: VMPerfModel, name: str,
                     total: float) -> float:
        """One trial's elapsed seconds, retried through transient faults.

        *total* is the repetition's precomputed noise-free time
        (:meth:`VMPerfModel.noise_free_seconds`); each trial — and each
        retry attempt — applies its own noise and fault draws to it,
        consuming the streams exactly as ``perf.elapsed`` would.
        """
        deadline = self._policy.measurement_deadline_seconds

        def attempt_trial() -> float:
            seconds = perf.finalize_seconds(total)
            if seconds > deadline:
                raise MeasurementTimeout(
                    f"measurement {name!r} took {seconds:.3g}s simulated, "
                    f"past the {deadline:.3g}s deadline"
                )
            return seconds

        return self._with_retries("measurement", name, attempt_trial)

    # -- batched trials ------------------------------------------------------

    def _one_trial(self, vm: VirtualMachine, name: str, label: str,
                   total: float) -> _TrialOutcome:
        """One hermetic trial: forked streams, local retry accounting.

        Runs inside an engine worker. The perf model is rebuilt around
        the booted VM with a fault stream and noise stream forked from
        *label*, so the trial's observations depend only on its label.
        Transient faults retry up to the policy's budget with the
        backoff accumulated locally; exhaustion escalates to the same
        permanent :class:`CalibrationError` the serial path raises.
        """
        injector = (self._injector.fork_stream(label)
                    if self._injector is not None else None)
        noise_rng = (self._rng.fork(f"noise:{label}")
                     if self._noise_sigma > 0 else None)
        perf = VMPerfModel(vm, noise_rng=noise_rng,
                           noise_sigma=self._noise_sigma, injector=injector)
        policy = self._policy
        deadline = policy.measurement_deadline_seconds
        backoff_total = 0.0
        retries = 0
        for attempt in range(1, policy.max_attempts + 1):
            try:
                seconds = perf.finalize_seconds(total)
                if seconds > deadline:
                    raise MeasurementTimeout(
                        f"measurement {name!r} took {seconds:.3g}s "
                        f"simulated, past the {deadline:.3g}s deadline")
            except MeasurementFault as fault:
                if attempt >= policy.max_attempts:
                    raise CalibrationError(
                        f"measurement {name!r} failed after {attempt} "
                        f"attempt(s): {fault}"
                    ) from fault
                backoff_total += policy.backoff_seconds(attempt)
                retries += 1
                continue
            return _TrialOutcome(
                seconds=seconds, backoff_seconds=backoff_total,
                retries=retries,
                fault_counts=(injector.drain_counts()
                              if injector is not None else {}))
        raise AssertionError("unreachable")  # pragma: no cover

    def _batched_trials(self, vm: VirtualMachine, name: str, label_base: str,
                        total: float) -> List[float]:
        """All of a repetition's trials as one engine batch.

        Labels enumerate the trials of this (query, repetition), so the
        batch is a pure function of the measurement's identity; the
        engine guarantees result order, so the list handed to the MAD
        filter is bit-identical for every worker count. Deferred side
        effects (backoff, retry and fault counters) are applied here,
        serially, in trial order.
        """
        labels = [f"{label_base}:trial{t}"
                  for t in range(self._policy.trials)]
        outcomes = self._engine.map(
            lambda label: self._one_trial(vm, name, label, total), labels)
        for outcome in outcomes:
            if outcome.retries:
                self.backoff_seconds_total += outcome.backoff_seconds
                metrics.counter("resilience.retries",
                                site="measurement").inc(outcome.retries)
                metrics.counter("sim.seconds",
                                source="backoff").inc(outcome.backoff_seconds)
            for kind, count in sorted(outcome.fault_counts.items()):
                metrics.counter("faults.injected", kind=kind).inc(count)
        return [outcome.seconds for outcome in outcomes]

    def _measure(self, perf: VMPerfModel, name: str, build_plan,
                 report: CalibrationReport,
                 repetitions: int = 1) -> CalibrationMeasurement:
        """Prime the cache, then measure; returns the last repetition.

        Each repetition is measured ``policy.trials`` times; outlier
        trials are rejected by MAD filtering and the median of the
        survivors is the repetition's measured time, so an injected
        outlier (or a noise spike) cannot poison the design row.

        With ``reuse_traces`` on, the execution phase (cold restart,
        priming run, measured runs) happens only the first time this
        (pool size, query) combination is seen; later calibrations
        replay the recorded design rows and traces and pay only for the
        per-allocation timing.
        """
        db = self._database
        key = (db.buffer_pool.capacity, db.sort_mem_pages, name, repetitions)
        executions = self._trace_cache.get(key) if self._reuse_traces else None
        if executions is None:
            db.cold_restart()
            db.run_plan(build_plan(db))  # unmeasured priming execution
            executions = []
            for _repetition in range(repetitions):
                plan = build_plan(db)
                result = db.run_plan(plan)
                executions.append(
                    (self._design_row(plan, result.trace, db), result.trace))
            if self._reuse_traces:
                self._trace_cache[key] = executions
        else:
            metrics.counter("calibration.trace_cache_hits").inc()
        measurement: Optional[CalibrationMeasurement] = None
        for repetition, (design_row, trace) in enumerate(executions):
            total = perf.noise_free_seconds(trace)
            if self._engine is not None:
                trials = self._batched_trials(
                    perf.vm, name, f"{name}#{repetition}", total)
            else:
                trials = [
                    self._timed_trial(perf, name, total)
                    for _trial in range(self._policy.trials)
                ]
            seconds, n_rejected = robust_seconds(
                trials, self._policy.mad_threshold)
            if n_rejected:
                metrics.counter("resilience.outliers_rejected").inc(n_rejected)
            metrics.counter("calibration.measurements").inc()
            metrics.counter("sim.seconds", source="calibration").inc(seconds)
            measurement = CalibrationMeasurement(
                query_name=f"{name}#{repetition}",
                design_row=design_row,
                measured_seconds=seconds,
                trace=trace,
            )
            report.measurements.append(measurement)
        assert measurement is not None
        return measurement

    def _design_row(self, plan: PlanNode, trace: WorkTrace,
                    db: Database) -> List[float]:
        """Map a query's work counts to optimizer-charged quantities.

        The calibration target is that the optimizer's *formulas*
        reproduce measured times, so each row contains the quantities
        the formulas multiply the parameters by: every scanned page is
        charged (hit or miss) and random fetches are split by the same
        cache-discount rule :func:`repro.optimizer.cost.cache_discount`
        applies.
        """
        from repro.optimizer.cost import cache_discount

        seq_pages = float(trace.seq_page_requests)
        rand_pages = float(trace.random_page_requests)
        discounted_rand = 0.0
        discounted_to_seq = 0.0
        if rand_pages > 0:
            relation_pages = 0
            for node in walk(plan):
                if isinstance(node, IndexScan):
                    relation_pages = max(
                        relation_pages,
                        db.catalog.table(node.table_name).heap.n_pages,
                    )
            probe = OptimizerParameters(
                effective_cache_size=db.buffer_pool.capacity
            )
            discount = cache_discount(probe, relation_pages)
            discounted_rand = rand_pages * (1.0 - discount)
            discounted_to_seq = rand_pages * discount
        return [
            seq_pages + discounted_to_seq,
            discounted_rand,
            float(trace.tuples_processed),
            float(trace.index_tuples),
            float(trace.predicate_ops),
            float(trace.like_bytes),
        ]

    # -- protocols ---------------------------------------------------------------

    def calibrate(self, allocation: ResourceVector) -> CalibrationReport:
        """Measure and solve ``P`` for one allocation."""
        with span("calibrate", allocation=str(allocation.as_tuple()),
                  method=self._method):
            if self._injector is not None:
                # One calibration = one unit of work: with a per-unit
                # injector the fault stream inside this experiment
                # depends only on the allocation, not on run history —
                # the property checkpoint/resume relies on.
                self._injector.begin_unit(str(allocation.as_tuple()))
            metrics.counter("calibration.experiments").inc()
            report = CalibrationReport(allocation=allocation,
                                       method=self._method)
            perf = self._boot(allocation)
            if self._method == "sequential":
                self._calibrate_sequential(perf, report)
            else:
                self._calibrate_lstsq(perf, report)
            return report

    def _calibrate_sequential(self, perf: VMPerfModel,
                              report: CalibrationReport) -> None:
        bench = self._workbench
        db = self._database

        # Step 1: CPU-priced parameters from the always-cached small table.
        base = self._measure(perf, "small_count", bench.plan_small_count, report)
        pred = self._measure(perf, "small_pred", bench.plan_small_pred, report)
        like = self._measure(perf, "small_like", bench.plan_small_like, report)

        n_tuples = base.trace.tuples_processed
        if n_tuples <= 0:
            raise CalibrationError("small-table scan processed no tuples")
        t_tuple = max(MIN_UNIT_SECONDS, base.measured_seconds / n_tuples)

        delta_ops = pred.trace.predicate_ops - base.trace.predicate_ops
        if delta_ops <= 0:
            raise CalibrationError("predicate query added no operator work")
        t_op = max(
            MIN_UNIT_SECONDS,
            (pred.measured_seconds - base.measured_seconds) / delta_ops,
        )

        delta_bytes = like.trace.like_bytes - base.trace.like_bytes
        if delta_bytes <= 0:
            raise CalibrationError("LIKE query matched no bytes")
        like_cpu = (like.measured_seconds - base.measured_seconds
                    - (like.trace.predicate_ops - base.trace.predicate_ops) * t_op)
        t_like = max(MIN_UNIT_SECONDS, like_cpu / delta_bytes)

        # Step 2: index-tuple cost from the always-cached small index scan.
        sidx = self._measure(perf, "small_index", bench.plan_small_index, report)
        fetched = sidx.trace.index_tuples
        if fetched <= 0:
            raise CalibrationError("small index scan fetched no tuples")
        t_itup = max(
            MIN_UNIT_SECONDS,
            sidx.measured_seconds / fetched - t_tuple,
        )

        # Step 3: sequential page time from the steady-state scan ladder.
        # Blending tables that do and do not fit in this allocation's
        # buffer pool makes T_seq an *effective* (cache-weighted) page
        # time that varies smoothly with the memory share.
        total_io_seconds = 0.0
        total_pages = 0
        for table in bench.scan_ladder():
            scan = self._measure(perf, f"scan_{table}",
                                 bench.plan_ladder_scan(table), report)
            total_pages += scan.trace.seq_page_requests
            total_io_seconds += (
                scan.measured_seconds - scan.trace.tuples_processed * t_tuple
            )
        if total_pages <= 0:
            raise CalibrationError("ladder scans requested no pages")
        # A fully cached page fetch still costs roughly a tuple's worth
        # of CPU, which floors the effective sequential page time.
        t_seq = max(1.2 * t_tuple, total_io_seconds / total_pages)

        # Step 4: random page time from the steady-state huge index scan,
        # inverted through the same cache discount the cost model uses.
        bidx = self._measure(perf, "huge_index", bench.plan_huge_index, report)
        row = bidx.design_row
        priced_rand = row[1]
        cpu_part = (
            bidx.trace.tuples_processed * t_tuple
            + bidx.trace.index_tuples * t_itup
            + bidx.trace.predicate_ops * t_op
        )
        io_part = bidx.measured_seconds - cpu_part - row[0] * t_seq
        if priced_rand > 0:
            t_rand = max(t_seq, io_part / priced_rand)
        else:
            t_rand = 4.0 * t_seq  # nothing to measure: PostgreSQL default ratio

        unit_seconds = {
            "seq_pages": t_seq,
            "rand_pages": t_rand,
            "tuples": t_tuple,
            "index_tuples": t_itup,
            "ops": t_op,
            "like_bytes": t_like,
        }
        predicted = [
            sum(m.design_row[i] * u for i, u in enumerate(unit_seconds.values()))
            for m in report.measurements
        ]
        residuals = [
            p - m.measured_seconds for p, m in zip(predicted, report.measurements)
        ]
        rms = (sum(r * r for r in residuals) / len(residuals)) ** 0.5
        report.solution = CalibrationSolution(unit_seconds=unit_seconds,
                                              residual_rms=rms)
        report.parameters = report.solution.to_parameters(
            effective_cache_size=db.buffer_pool.capacity,
            sort_mem_pages=db.sort_mem_pages,
        )

    def _calibrate_lstsq(self, perf: VMPerfModel,
                         report: CalibrationReport) -> None:
        db = self._database
        for query in self._workbench.suite():
            self._measure(perf, query.name, query.build_plan, report,
                          repetitions=query.repetitions)
        report.solution = solve_parameters(
            [m.design_row for m in report.measurements],
            [m.measured_seconds for m in report.measurements],
            query_names=[m.query_name for m in report.measurements],
        )
        report.parameters = report.solution.to_parameters(
            effective_cache_size=db.buffer_pool.capacity,
            sort_mem_pages=db.sort_mem_pages,
        )

    def parameters_for(self, allocation: ResourceVector) -> OptimizerParameters:
        """Calibrated parameters for one allocation (no caching here)."""
        report = self.calibrate(allocation)
        assert report.parameters is not None
        return report.parameters
