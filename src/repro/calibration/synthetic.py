"""The synthetic calibration database and query suite.

The queries are *designed*, in the paper's sense: each one exercises a
known mix of the work categories the optimizer parameters price
(sequential pages, random pages, tuples, index tuples, predicate
operators, LIKE bytes), so measuring their execution times yields a
solvable system. Plans are built by hand rather than through the
planner, guaranteeing the intended access paths (the paper achieves the
same by constructing queries "so that the optimizer chooses specific
plans").

Layout of the synthetic database:

* ``cal_small`` — a tiny table that is always cached; pairs of queries
  over it isolate the CPU-priced parameters.
* ``cal_scan_a`` < ``cal_scan_b`` < ``cal_scan_c`` — a *ladder* of scan
  tables sized to cross the buffer-pool capacity at different memory
  shares, so the effective sequential-page time (a blend of cached and
  uncached fetches) varies smoothly with the memory allocation instead
  of stepping.
* ``cal_huge`` — larger than any pool; its scans always hit the disk
  and its secondary index produces random fetches whose hit ratio is
  graded by memory share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.engine.database import Database
from repro.engine.expr import BinaryOp, ColumnRef, Expr, LikeExpr, Literal, RowLayout
from repro.engine.plans import (
    AggFunc,
    Aggregate,
    AggSpec,
    IndexScan,
    PlanNode,
    SeqScan,
)
from repro.engine.schema import Column, ColumnType, TableSchema
from repro.util.rng import DeterministicRng

#: The always-cached CPU-measurement table.
SMALL_TABLE = "cal_small"
#: The scan ladder (ascending size).
SCAN_TABLES = ("cal_scan_a", "cal_scan_b", "cal_scan_c")
#: The never-cached table carrying the random-I/O index.
HUGE_TABLE = "cal_huge"
#: Width of the text payload column, in characters.
TEXT_WIDTH = 48

#: Default row counts. At ~92 rows/page these give roughly 250, 550,
#: and 950 pages for the ladder and 1400 pages for the huge table —
#: chosen against the laboratory machine's buffer pools at memory
#: shares 25/50/75% (384/768/1152 pages).
DEFAULT_ROWS = {
    SMALL_TABLE: 2_000,
    "cal_scan_a": 23_000,
    "cal_scan_b": 50_000,
    "cal_scan_c": 87_000,
    HUGE_TABLE: 128_000,
}


@dataclass
class CalibrationQuery:
    """One designed query: a label and a physical-plan factory."""

    name: str
    build_plan: Callable[[Database], PlanNode]
    #: Executions per measurement (repeats expose caching effects).
    repetitions: int = 1


def _count_star(scan: PlanNode) -> PlanNode:
    return Aggregate(input=scan, group_keys=[],
                     aggregates=[AggSpec(AggFunc.COUNT_STAR, None, "n")])


def _scan(db: Database, table: str, filter_expr: Optional[Expr] = None) -> SeqScan:
    schema = db.catalog.table(table).schema
    scan = SeqScan(table_name=table, alias=table, filter_expr=filter_expr)
    scan.layout = RowLayout([(table, col) for col in schema.column_names()])
    return scan


def _index_scan(db: Database, table: str, index_name: str,
                low, high) -> IndexScan:
    schema = db.catalog.table(table).schema
    scan = IndexScan(table_name=table, alias=table, index_name=index_name,
                     low=low, high=high)
    scan.layout = RowLayout([(table, col) for col in schema.column_names()])
    return scan


class CalibrationWorkbench:
    """Builds the synthetic database and the designed query suite."""

    def __init__(self, rows: Optional[Dict[str, int]] = None, seed: int = 7):
        self.rows = dict(DEFAULT_ROWS)
        if rows:
            self.rows.update(rows)
        self.seed = seed

    # -- database ---------------------------------------------------------

    def _table_schema(self, name: str) -> TableSchema:
        return TableSchema(name, [
            Column("a", ColumnType.INT),          # sequential key
            Column("b", ColumnType.INT),          # random permutation
            Column("c", ColumnType.TEXT, avg_width=TEXT_WIDTH),
        ])

    def _table_rows(self, n: int, rng: DeterministicRng):
        permutation = list(range(n))
        rng.shuffle(permutation)
        payload = "x" * (TEXT_WIDTH - 1) + "q"  # LIKE '%zz%' never matches
        for i in range(n):
            yield (i, permutation[i], payload)

    def build_database(self, memory_pages: int = 4096) -> Database:
        """Create and populate the calibration database."""
        rng = DeterministicRng(self.seed).fork("calibration")
        db = Database("calibration", memory_pages=memory_pages)
        for table, n_rows in self.rows.items():
            db.create_table(self._table_schema(table))
            db.load_rows(table, self._table_rows(n_rows, rng.fork(table)))
        db.create_index("cal_huge_b_idx", HUGE_TABLE, "b")
        db.create_index("cal_small_b_idx", SMALL_TABLE, "b")
        db.analyze()
        return db

    # -- designed predicates --------------------------------------------------

    def always_true_predicate(self, n_clauses: int, table: str) -> Expr:
        """A predicate true for every row with a known operator count.

        ``a`` is non-negative in every calibration table, so each clause
        evaluates (no short-circuiting) and passes.
        """
        expr: Expr = BinaryOp(">=", ColumnRef(table, "a"), Literal(-1))
        for _ in range(n_clauses - 1):
            expr = BinaryOp(
                "and", expr, BinaryOp(">=", ColumnRef(table, "b"), Literal(-1))
            )
        return expr

    # -- named plan builders (sequential protocol) ----------------------------

    def plan_small_count(self, db: Database) -> PlanNode:
        return _count_star(_scan(db, SMALL_TABLE))

    def plan_small_pred(self, db: Database) -> PlanNode:
        return _count_star(
            _scan(db, SMALL_TABLE, self.always_true_predicate(4, SMALL_TABLE))
        )

    def plan_small_like(self, db: Database) -> PlanNode:
        return _count_star(
            _scan(db, SMALL_TABLE, LikeExpr(ColumnRef(SMALL_TABLE, "c"), "%zz%"))
        )

    def plan_small_index(self, db: Database) -> PlanNode:
        return _count_star(_index_scan(
            db, SMALL_TABLE, "cal_small_b_idx",
            0, max(1, self.rows[SMALL_TABLE] // 4),
        ))

    def scan_ladder(self) -> List[str]:
        """Tables whose steady-state scans blend into the T_seq estimate."""
        return list(SCAN_TABLES) + [HUGE_TABLE]

    def plan_ladder_scan(self, table: str):
        def build(db: Database) -> PlanNode:
            return _count_star(_scan(db, table))
        return build

    def plan_huge_index(self, db: Database) -> PlanNode:
        return _count_star(_index_scan(
            db, HUGE_TABLE, "cal_huge_b_idx",
            0, max(1, self.rows[HUGE_TABLE] // 12),
        ))

    # -- the full suite (least-squares protocol) -----------------------------------

    def suite(self) -> List[CalibrationQuery]:
        """Every designed query, for the joint least-squares protocol."""
        queries: List[CalibrationQuery] = [
            CalibrationQuery("small_count", self.plan_small_count, repetitions=2),
            CalibrationQuery("small_pred", self.plan_small_pred, repetitions=2),
            CalibrationQuery("small_like", self.plan_small_like, repetitions=2),
            CalibrationQuery("small_index", self.plan_small_index, repetitions=2),
        ]
        queries.extend(
            CalibrationQuery(f"scan_{table}", self.plan_ladder_scan(table))
            for table in self.scan_ladder()
        )
        queries.append(CalibrationQuery("huge_index", self.plan_huge_index))
        return queries
