"""Offline calibration of optimizer parameters per resource allocation.

Implements Section 5 of the paper: create a VM with allocation ``R``,
run carefully designed synthetic queries on a synthetic database inside
it, measure their execution times, and solve the resulting system of
equations for the optimizer parameters ``P``. ``P(R)`` depends only on
the machine and allocation — never on the user database or workload —
so calibrations are cached and reused across design problems.
"""

from repro.calibration.synthetic import CalibrationWorkbench
from repro.calibration.runner import CalibrationRunner, CalibrationMeasurement
from repro.calibration.solver import solve_parameters
from repro.calibration.cache import CalibrationCache, FallbackEvent

__all__ = [
    "CalibrationWorkbench",
    "CalibrationRunner",
    "CalibrationMeasurement",
    "solve_parameters",
    "CalibrationCache",
    "FallbackEvent",
]
