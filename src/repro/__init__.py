"""repro: reproduction of "Database Virtualization: A New Frontier for
Database Tuning and Physical Design" (Soror, Aboulnaga, Salem; ICDE 2007).

The package implements the paper's full stack on a simulated substrate:

* :mod:`repro.virt` — a machine-virtualization layer (physical machine,
  VMs with CPU/memory/I/O shares, credit scheduler, VMM, performance
  model) standing in for the paper's Xen testbed.
* :mod:`repro.engine` — a PostgreSQL-class relational engine (paged
  heap storage, clock-sweep buffer pool, B+-trees, statistics, iterator
  executor, SQL front end) whose execution produces exact work traces.
* :mod:`repro.optimizer` — a cost-based optimizer with the paper's
  virtualization-aware what-if mode.
* :mod:`repro.calibration` — offline calibration of the optimizer
  parameters ``P`` per resource allocation ``R`` (Section 5).
* :mod:`repro.workloads` — a deterministic TPC-H-like benchmark kit.
* :mod:`repro.core` — the virtualization design problem, cost models,
  and combinatorial searches (Sections 3–4), plus the Section 7
  extensions (SLOs, dynamic reallocation).
* :mod:`repro.obs` — the cross-cutting observability layer: a
  process-wide metrics registry, nested timed spans, and serializable
  run reports (``python -m repro report``).

Quickstart::

    from repro import (
        CalibrationCache, CalibrationRunner, OptimizerCostModel,
        VirtualizationDesignProblem, VirtualizationDesigner,
        Workload, WorkloadSpec, build_tpch_database, laboratory_machine,
        tpch_query,
    )

    machine = laboratory_machine()
    db = build_tpch_database(scale_factor=0.01)
    specs = [
        WorkloadSpec(Workload.repeat("oltp", tpch_query("Q4"), 3), db),
        WorkloadSpec(Workload.repeat("reporting", tpch_query("Q13"), 9), db),
    ]
    cache = CalibrationCache(CalibrationRunner(machine))
    designer = VirtualizationDesigner(
        VirtualizationDesignProblem(machine=machine, specs=specs),
        OptimizerCostModel(cache),
    )
    print(designer.design("exhaustive", grid=4).summary())
"""

from repro.calibration import (
    CalibrationCache,
    CalibrationRunner,
    CalibrationWorkbench,
)
from repro.core import (
    AllocationMatrix,
    Design,
    DriftReport,
    PlacementDesigner,
    PlacementResult,
    WorkloadMonitor,
    DynamicProgrammingSearch,
    DynamicReallocator,
    ExhaustiveSearch,
    GreedySearch,
    MeasuredCostModel,
    OptimizerCostModel,
    ServiceLevelObjective,
    SloPolicy,
    VirtualizationDesignProblem,
    VirtualizationDesigner,
    WorkloadPhase,
    WorkloadRunner,
    WorkloadSpec,
)
from repro.engine import Database
from repro.obs import MetricsRegistry, RunReport, span
from repro import obs
from repro.optimizer import OptimizerParameters, Planner, WhatIfOptimizer
from repro.virt import (
    ColocationSimulator,
    PhysicalMachine,
    ResourceKind,
    ResourceVector,
    VirtualMachine,
    VirtualMachineMonitor,
    VMPerfModel,
    equal_share,
)
from repro.virt.machine import laboratory_machine
from repro.workloads import Workload, build_tpch_database, tpch_query

__version__ = "1.0.0"

__all__ = [
    "CalibrationCache",
    "CalibrationRunner",
    "CalibrationWorkbench",
    "AllocationMatrix",
    "Design",
    "DriftReport",
    "PlacementDesigner",
    "PlacementResult",
    "WorkloadMonitor",
    "DynamicProgrammingSearch",
    "DynamicReallocator",
    "ExhaustiveSearch",
    "GreedySearch",
    "MeasuredCostModel",
    "OptimizerCostModel",
    "ServiceLevelObjective",
    "SloPolicy",
    "VirtualizationDesignProblem",
    "VirtualizationDesigner",
    "WorkloadPhase",
    "WorkloadRunner",
    "WorkloadSpec",
    "Database",
    "MetricsRegistry",
    "RunReport",
    "obs",
    "span",
    "OptimizerParameters",
    "Planner",
    "WhatIfOptimizer",
    "ColocationSimulator",
    "PhysicalMachine",
    "ResourceKind",
    "ResourceVector",
    "VirtualMachine",
    "VirtualMachineMonitor",
    "VMPerfModel",
    "equal_share",
    "laboratory_machine",
    "Workload",
    "build_tpch_database",
    "tpch_query",
    "__version__",
]
