"""Cost models for the virtualization design problem.

``Cost(W_i, R_i)`` — the objective's inner term — comes in two flavours:

* :class:`OptimizerCostModel` is the paper's proposal: ask the query
  optimizer, running in its virtualization-aware what-if mode under the
  parameters calibrated for ``R_i``, for the estimated total execution
  time of the workload. Nothing is executed.
* :class:`MeasuredCostModel` actually runs the workload in a VM at
  ``R_i`` and reports simulated wall-clock time. It is the ground truth
  the experiments validate against (and an upper bound on what any
  search could use in practice — measuring every candidate is exactly
  what the what-if mode avoids).

Both memoize per (workload, allocation): the search algorithms probe
the same allocations repeatedly.

Observability: every uncached evaluation increments the
``cost_model.evaluations`` counter (labelled by model kind) and is
timed into the ``cost_model.seconds`` histogram; memo hits increment
``cost_model.memo_hits``. The counters reconcile exactly with
``SearchResult.evaluations`` (see ``tests/obs/test_obs_integration.py``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Tuple

from repro.calibration.cache import CalibrationCache
from repro.obs import metrics
from repro.core.measure import WorkloadRunner
from repro.core.problem import WorkloadSpec
from repro.optimizer.params import OptimizerParameters
from repro.optimizer.whatif import WhatIfOptimizer
from repro.virt.machine import PhysicalMachine
from repro.virt.resources import ResourceVector


def _allocation_key(allocation: ResourceVector) -> Tuple[float, float, float]:
    return tuple(round(s, 6) for s in allocation.as_tuple())


def memo_key(spec: WorkloadSpec, allocation: ResourceVector):
    """The memoization key ``CostModel.cost`` uses for one evaluation.

    The workload's statements are part of the key: the same named
    workload may change content across phases (dynamic case). The
    statement hash is only stable within one process
    (``PYTHONHASHSEED``), so keys must never be persisted — journal
    replay re-derives them through this function instead.
    """
    return (spec.name, hash(spec.workload.statements),
            _allocation_key(allocation))


class CostModel(ABC):
    """Interface: estimated cost (seconds) of a workload at an allocation."""

    #: Label for the ``cost_model.*`` metrics ("optimizer", "measured", ...).
    kind = "generic"

    def __init__(self):
        self._memo: Dict[Tuple[str, Tuple[float, float, float]], float] = {}
        self.evaluations = 0

    def seed(self, spec: WorkloadSpec, allocation: ResourceVector,
             value: float) -> None:
        """Pre-load the memo with a known evaluation (journal replay)."""
        self._memo[memo_key(spec, allocation)] = value

    def cost(self, spec: WorkloadSpec, allocation: ResourceVector) -> float:
        key = memo_key(spec, allocation)
        cached = self._memo.get(key)
        if cached is not None:
            metrics.counter("cost_model.memo_hits", model=self.kind).inc()
            return cached
        self.evaluations += 1
        metrics.counter("cost_model.evaluations", model=self.kind).inc()
        with metrics.timer("cost_model.seconds", model=self.kind):
            value = self._cost(spec, allocation)
        self._memo[key] = value
        return value

    @abstractmethod
    def _cost(self, spec: WorkloadSpec, allocation: ResourceVector) -> float:
        """Compute the cost (uncached)."""


class OptimizerCostModel(CostModel):
    """The paper's what-if cost model over calibrated parameters."""

    kind = "optimizer"

    def __init__(self, calibration: CalibrationCache):
        super().__init__()
        self._calibration = calibration
        self._whatif: Dict[str, WhatIfOptimizer] = {}

    def parameters_for(self, allocation: ResourceVector) -> OptimizerParameters:
        return self._calibration.params_for(allocation)

    def _cost(self, spec: WorkloadSpec, allocation: ResourceVector) -> float:
        params = self.parameters_for(allocation)
        whatif = self._whatif.get(spec.name)
        if whatif is None:
            whatif = WhatIfOptimizer(spec.database.catalog, params)
            self._whatif[spec.name] = whatif
        return whatif.with_params(params).estimate_workload(spec.workload.statements)


class MeasuredCostModel(CostModel):
    """Ground truth: execute the workload at the allocation and time it."""

    kind = "measured"

    def __init__(self, machine: PhysicalMachine,
                 calibration: Optional[CalibrationCache] = None,
                 noise_sigma: float = 0.0):
        super().__init__()
        self._runner = WorkloadRunner(machine, noise_sigma=noise_sigma)
        self._calibration = calibration

    def _cost(self, spec: WorkloadSpec, allocation: ResourceVector) -> float:
        planning_params = (
            self._calibration.params_for(allocation)
            if self._calibration is not None else None
        )
        run = self._runner.run(
            spec.workload, spec.database, allocation,
            planning_params=planning_params,
        )
        return run.total_seconds
