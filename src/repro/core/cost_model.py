"""Cost models for the virtualization design problem.

``Cost(W_i, R_i)`` — the objective's inner term — comes in two flavours:

* :class:`OptimizerCostModel` is the paper's proposal: ask the query
  optimizer, running in its virtualization-aware what-if mode under the
  parameters calibrated for ``R_i``, for the estimated total execution
  time of the workload. Nothing is executed.
* :class:`MeasuredCostModel` actually runs the workload in a VM at
  ``R_i`` and reports simulated wall-clock time. It is the ground truth
  the experiments validate against (and an upper bound on what any
  search could use in practice — measuring every candidate is exactly
  what the what-if mode avoids).

Both memoize per (workload, allocation): the search algorithms probe
the same allocations repeatedly.

Batched evaluation
------------------
:meth:`CostModel.cost_many` evaluates a whole batch of
``(spec, allocation)`` pairs at once: duplicate pairs are evaluated
once, memo hits are served without recomputation, and the fresh
remainder can be fanned out over a
:class:`repro.parallel.EvaluationEngine`. The returned
:class:`BatchOutcome` carries the number of fresh (uncached)
evaluations the batch actually paid for — searches account their spend
from these counts instead of diffing the shared
:attr:`CostModel.evaluations` total, which misattributes work when two
searches interleave on one model (see
``tests/parallel/test_search_parallel.py``). The memo and the
evaluation counter are lock-protected so concurrent callers stay
consistent.

Observability: every uncached evaluation increments the
``cost_model.evaluations`` counter (labelled by model kind) and is
timed into the ``cost_model.seconds`` histogram; memo hits increment
``cost_model.memo_hits``; every batch observes its size on the
``cost_model.batch_size`` histogram. The counters reconcile exactly
with ``SearchResult.evaluations`` (see
``tests/obs/test_instrumentation.py``).
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.calibration.cache import CalibrationCache
from repro.core.measure import WorkloadRunner
from repro.core.problem import WorkloadSpec
from repro.obs import metrics
from repro.optimizer.params import OptimizerParameters
from repro.optimizer.whatif import WhatIfOptimizer
from repro.virt.machine import PhysicalMachine
from repro.virt.resources import ResourceVector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel.engine import EvaluationEngine


def _allocation_key(allocation: ResourceVector) -> Tuple[float, float, float]:
    return tuple(round(s, 6) for s in allocation.as_tuple())


def memo_key(spec: WorkloadSpec, allocation: ResourceVector):
    """The memoization key ``CostModel.cost`` uses for one evaluation.

    The workload's statements are part of the key: the same named
    workload may change content across phases (dynamic case). The
    statement hash is only stable within one process
    (``PYTHONHASHSEED``), so keys must never be persisted — journal
    replay re-derives them through this function instead.
    """
    return (spec.name, hash(spec.workload.statements),
            _allocation_key(allocation))


@dataclass
class BatchOutcome:
    """What one :meth:`CostModel.cost_many` call produced.

    ``costs[i]`` corresponds to ``pairs[i]`` — duplicates included, in
    input order. ``fresh`` counts the evaluations the batch actually
    computed (the budget currency); ``hits`` counts the lookups served
    by the memo (duplicates within the batch count as hits too).
    """

    costs: List[float]
    fresh: int = 0
    hits: int = 0


class CostModel(ABC):
    """Interface: estimated cost (seconds) of a workload at an allocation."""

    #: Label for the ``cost_model.*`` metrics ("optimizer", "measured", ...).
    kind = "generic"

    #: Whether :meth:`_cost` tolerates concurrent invocations (distinct
    #: pairs only). The measured model mutates one shared simulated
    #: database per run, so it evaluates batches sequentially even when
    #: an engine is supplied.
    parallel_safe = False

    def __init__(self):
        self._memo: Dict[tuple, float] = {}
        self._memo_lock = threading.Lock()
        self.evaluations = 0

    def _key(self, spec: WorkloadSpec, allocation: ResourceVector) -> tuple:
        """The memo key for one evaluation (overridable).

        The default keys on (workload, allocation) via :func:`memo_key`.
        Models whose costs also depend on mutable per-spec configuration
        — the co-design model, where index DDL changes what-if costs —
        override this to fold that configuration in, so a stale value
        is never served across a configuration change.
        """
        return memo_key(spec, allocation)

    def seed(self, spec: WorkloadSpec, allocation: ResourceVector,
             value: float) -> None:
        """Pre-load the memo with a known evaluation (journal replay)."""
        with self._memo_lock:
            self._memo[self._key(spec, allocation)] = value

    def cost(self, spec: WorkloadSpec, allocation: ResourceVector) -> float:
        key = self._key(spec, allocation)
        with self._memo_lock:
            cached = self._memo.get(key)
        if cached is not None:
            metrics.counter("cost_model.memo_hits", model=self.kind).inc()
            return cached
        with metrics.timer("cost_model.seconds", model=self.kind):
            value = self._cost(spec, allocation)
        with self._memo_lock:
            self._memo[key] = value
            self.evaluations += 1
        metrics.counter("cost_model.evaluations", model=self.kind).inc()
        return value

    def cost_many(self, pairs: Sequence[Tuple[WorkloadSpec, ResourceVector]],
                  engine: Optional["EvaluationEngine"] = None) -> BatchOutcome:
        """Evaluate a batch of ``(spec, allocation)`` pairs.

        Duplicate pairs are computed once; memo hits cost nothing; the
        fresh remainder is evaluated through *engine* when one is given
        and the model is :attr:`parallel_safe` (serially otherwise).
        Results arrive in input order and are bit-identical for every
        engine configuration: fresh work is keyed by the pair, never by
        the worker that happened to run it.
        """
        pairs = list(pairs)
        metrics.histogram("cost_model.batch_size",
                          model=self.kind).observe(len(pairs))
        keys = [self._key(spec, allocation) for spec, allocation in pairs]
        values: Dict[tuple, float] = {}
        todo: List[Tuple[WorkloadSpec, ResourceVector]] = []
        todo_keys: List[tuple] = []
        pending = set()
        with self._memo_lock:
            for key, pair in zip(keys, pairs):
                if key in values or key in pending:
                    continue
                cached = self._memo.get(key)
                if cached is not None:
                    values[key] = cached
                else:
                    todo.append(pair)
                    todo_keys.append(key)
                    pending.add(key)
        hits = len(pairs) - len(todo)
        if hits:
            metrics.counter("cost_model.memo_hits",
                            model=self.kind).inc(hits)

        fresh = 0
        if todo:
            self._prepare_batch(todo)
            if (engine is not None and engine.workers > 1
                    and self.parallel_safe and len(todo) > 1):
                timed = engine.map(self._timed_cost, todo)
            else:
                timed = [self._timed_cost(pair) for pair in todo]
            with self._memo_lock:
                for key, (value, seconds) in zip(todo_keys, timed):
                    # Another caller may have raced us to this pair;
                    # first write wins so every reader agrees.
                    if key not in self._memo:
                        self._memo[key] = value
                        self.evaluations += 1
                        fresh += 1
                    values[key] = self._memo[key]
            for _value, seconds in timed:
                metrics.histogram("cost_model.seconds",
                                  model=self.kind).observe(seconds)
            if fresh:
                metrics.counter("cost_model.evaluations",
                                model=self.kind).inc(fresh)
        return BatchOutcome(costs=[values[key] for key in keys],
                            fresh=fresh, hits=hits)

    def _timed_cost(self, pair: Tuple[WorkloadSpec, ResourceVector]
                    ) -> Tuple[float, float]:
        """One uncached evaluation plus its host seconds (engine task)."""
        import time as _time

        spec, allocation = pair
        start = _time.perf_counter()
        value = self._cost(spec, allocation)
        return value, _time.perf_counter() - start

    def _prepare_batch(self, todo: Sequence[Tuple[WorkloadSpec,
                                                  ResourceVector]]) -> None:
        """Hook: resolve shared state for a batch before fan-out.

        Runs serially in deterministic (first-appearance) order, so
        anything order-sensitive — calibration experiments, lazily
        created per-workload optimizers — happens identically for every
        worker count, and the fanned-out :meth:`_cost` calls touch only
        read-mostly state.
        """

    @abstractmethod
    def _cost(self, spec: WorkloadSpec, allocation: ResourceVector) -> float:
        """Compute the cost (uncached)."""


class OptimizerCostModel(CostModel):
    """The paper's what-if cost model over calibrated parameters."""

    kind = "optimizer"
    #: What-if estimation only reads the catalog and the (pre-resolved)
    #: calibrated parameters, so distinct pairs may evaluate concurrently.
    parallel_safe = True

    def __init__(self, calibration: CalibrationCache,
                 config_aware: bool = False):
        super().__init__()
        self._calibration = calibration
        self._whatif: Dict[str, WhatIfOptimizer] = {}
        self._prepare_lock = threading.Lock()
        #: Fold each spec's catalog fingerprint into memo keys, so index
        #: DDL between evaluations invalidates instead of serving stale
        #: costs. Off by default: allocation-only searches never touch
        #: the catalog mid-search, and the narrower key is cheaper.
        self._config_aware = config_aware

    def _key(self, spec: WorkloadSpec, allocation: ResourceVector) -> tuple:
        base = memo_key(spec, allocation)
        if not self._config_aware:
            return base
        return base + (spec.database.catalog.fingerprint(),)

    def parameters_for(self, allocation: ResourceVector) -> OptimizerParameters:
        return self._calibration.params_for(allocation)

    def _prepare_batch(self, todo) -> None:
        """Resolve calibrations and per-workload optimizers serially.

        Calibration experiments draw from sequential RNG/fault streams,
        so they must never run from pool workers; resolving every
        unique allocation here (in first-appearance order) leaves the
        fanned-out estimates reading an already-warm cache. The order
        is a function of the batch alone, which is what makes 1-worker
        and N-worker runs bit-identical.
        """
        with self._prepare_lock:
            seen = set()
            for spec, allocation in todo:
                key = allocation.as_tuple()
                if key not in seen:
                    seen.add(key)
                    self.parameters_for(allocation)
                if spec.name not in self._whatif:
                    self._whatif[spec.name] = WhatIfOptimizer(
                        spec.database.catalog,
                        OptimizerParameters.defaults())

    def _cost(self, spec: WorkloadSpec, allocation: ResourceVector) -> float:
        params = self.parameters_for(allocation)
        whatif = self._whatif.get(spec.name)
        if whatif is None:
            whatif = WhatIfOptimizer(spec.database.catalog, params)
            self._whatif[spec.name] = whatif
        return whatif.with_params(params).estimate_workload(spec.workload.statements)


class MeasuredCostModel(CostModel):
    """Ground truth: execute the workload at the allocation and time it.

    Runs mutate one shared simulated database (buffer pool, VM boot),
    so ``parallel_safe`` stays ``False``: ``cost_many`` still dedupes
    and batch-accounts, but evaluates misses sequentially in
    first-appearance order regardless of the engine supplied.
    """

    kind = "measured"

    def __init__(self, machine: PhysicalMachine,
                 calibration: Optional[CalibrationCache] = None,
                 noise_sigma: float = 0.0):
        super().__init__()
        self._runner = WorkloadRunner(machine, noise_sigma=noise_sigma)
        self._calibration = calibration

    def _cost(self, spec: WorkloadSpec, allocation: ResourceVector) -> float:
        planning_params = (
            self._calibration.params_for(allocation)
            if self._calibration is not None else None
        )
        run = self._runner.run(
            spec.workload, spec.database, allocation,
            planning_params=planning_params,
        )
        return run.total_seconds
