"""Measuring actual workload execution times under an allocation.

This is the simulation's stand-in for running the workloads on the Xen
testbed and timing them: boot a VM with the allocation's shares, attach
the workload's database (which resizes its buffer pool to the VM's
memory), execute the statements with plans chosen under the provided
optimizer parameters, and convert the work traces to seconds through
the VM performance model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.engine.database import Database
from repro.engine.trace import WorkTrace
from repro.faults.injector import FaultInjector
from repro.obs import metrics
from repro.obs.spans import span
from repro.optimizer.params import OptimizerParameters
from repro.optimizer.planner import Planner
from repro.util.rng import DeterministicRng
from repro.virt.machine import PhysicalMachine
from repro.virt.perf import VMPerfModel
from repro.virt.resources import ResourceVector
from repro.virt.vm import VirtualMachine, VMConfig
from repro.workloads.workload import Workload


@dataclass
class MeasuredRun:
    """Result of running one workload at one allocation."""

    workload_name: str
    allocation: ResourceVector
    statement_seconds: List[float] = field(default_factory=list)
    statement_traces: List[WorkTrace] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(self.statement_seconds)


class WorkloadRunner:
    """Runs workloads inside simulated VMs and measures them."""

    def __init__(self, machine: PhysicalMachine,
                 noise_sigma: float = 0.0, seed: int = 99,
                 injector: Optional[FaultInjector] = None):
        self._machine = machine
        self._noise_sigma = noise_sigma
        self._rng = DeterministicRng(seed).fork("workload-runner")
        #: Optional fault injector threaded into each run's perf model;
        #: measured runs then see the same hostile environment the
        #: calibration pipeline defends against. WorkloadRunner itself
        #: does not retry — transient faults propagate to the caller.
        self._injector = injector

    def run(self, workload: Workload, database: Database,
            allocation: ResourceVector,
            planning_params: Optional[OptimizerParameters] = None,
            cold_start: bool = True) -> MeasuredRun:
        """Execute *workload* in a VM configured with *allocation*.

        *planning_params* selects the optimizer configuration used to
        choose execution plans (a tuned deployment uses the parameters
        calibrated for this allocation); defaults are used otherwise.
        With *cold_start* the buffer pool begins empty, as after VM
        deployment.
        """
        with span("measure.run", workload=workload.name,
                  allocation=str(allocation.as_tuple())):
            vm = VirtualMachine(
                self._machine,
                VMConfig(name=f"run-{workload.name}", shares=allocation),
            )
            vm.attach_guest(database)
            vm.start()
            perf = VMPerfModel(
                vm,
                noise_rng=self._rng if self._noise_sigma > 0 else None,
                noise_sigma=self._noise_sigma,
                injector=self._injector,
            )
            if cold_start:
                database.cold_restart()

            params = planning_params or OptimizerParameters.defaults()
            planner = Planner(database.catalog, params)
            run = MeasuredRun(workload_name=workload.name,
                              allocation=allocation)
            for sql in workload.statements:
                plan = planner.plan_sql(sql)
                result = database.run_plan(plan)
                run.statement_seconds.append(perf.elapsed(result.trace))
                run.statement_traces.append(result.trace)
            metrics.counter("measure.runs").inc()
            metrics.counter("sim.seconds", source="measure").inc(
                run.total_seconds)
            return run
