"""DBMS <-> virtualization layer communication (paper, Section 7).

"We foresee that making database systems virtualization-aware, and
allowing them to communicate with the virtualization layer, would
enable a better configuration for both the virtual machine and the
database system. The mechanisms for communication ... are still open
issues."

This module implements the simplest useful instance of that channel:

* each database *advises* the hypervisor of its working set (the pages
  it would profit from caching, estimated from its catalog),
* a :class:`MemoryNegotiator` redistributes the hosts' memory shares in
  proportion to those advisories (with a floor so no guest starves) and
  applies the result through the VMM.

Unlike the full virtualization design, negotiation needs no calibration
and no search — it is a cheap heuristic for one resource. The E4
benchmark positions it between the equal-share default and the
designed allocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.engine.database import Database
from repro.util.errors import AllocationError
from repro.virt.monitor import VirtualMachineMonitor
from repro.virt.resources import ResourceKind

#: No guest's memory share may fall below this fraction of the host.
DEFAULT_MIN_SHARE = 0.10


def working_set_report(database: Database) -> List[int]:
    """The database's advisory: page counts of its cacheable units.

    Each heap and each index is one unit — the raw information the
    guest sends over the communication channel. Deciding which units
    can actually profit from caching needs knowledge of the host's
    total memory, so that judgement belongs to the hypervisor side
    (:meth:`MemoryNegotiator.cacheable_pages`).
    """
    report: List[int] = []
    for table_name in database.catalog.table_names():
        info = database.catalog.table(table_name)
        report.append(info.heap.n_pages)
        for index_info in info.indexes.values():
            report.append(index_info.index.n_pages)
    return report


def working_set_pages(database: Database) -> int:
    """Total advised pages (uncapped sum of the report)."""
    return sum(working_set_report(database))


@dataclass
class NegotiationResult:
    """Outcome of one memory negotiation round."""

    shares: Dict[str, float]            # vm name -> memory share
    advisories: Dict[str, int]          # vm name -> advised pages

    def summary(self) -> str:
        lines = ["Memory negotiation"]
        for name in sorted(self.shares):
            lines.append(
                f"  {name}: advised {self.advisories[name]} pages "
                f"-> memory share {self.shares[name]:.0%}"
            )
        return "\n".join(lines)


class MemoryNegotiator:
    """Redistributes one host's memory using guest advisories."""

    def __init__(self, min_share: float = DEFAULT_MIN_SHARE,
                 safety_factor: float = 0.8):
        if not 0.0 < min_share < 1.0:
            raise AllocationError("min_share must be in (0, 1)")
        if not 0.0 < safety_factor <= 1.0:
            raise AllocationError("safety_factor must be in (0, 1]")
        self._min_share = min_share
        self._safety_factor = safety_factor

    def cacheable_pages(self, report: List[int], machine_memory_mib: float,
                        n_guests: int) -> int:
        """The part of a guest's working set that caching can actually serve.

        Units are admitted smallest-first while the cumulative size fits
        (with a safety margin) inside the largest buffer pool this guest
        could possibly receive. A relation beyond that bound is scanned
        through the ring buffer no matter how memory is split — granting
        memory for it is worse than useless, since a too-large scan
        churns the pool and evicts the units that *do* fit.
        """
        from repro.engine.database import BUFFER_POOL_FRACTION
        from repro.util.units import mib_to_pages
        from repro.virt.vm import GUEST_OS_MEMORY_FRACTION

        max_share = 1.0 - self._min_share * max(0, n_guests - 1)
        max_pool = mib_to_pages(
            machine_memory_mib * max_share * (1.0 - GUEST_OS_MEMORY_FRACTION)
        ) * BUFFER_POOL_FRACTION
        budget = max_pool * self._safety_factor
        # Largest-first: the biggest relation that still fits dominates
        # the caching benefit; smaller units fill the remainder.
        admitted = 0
        for pages in sorted(report, reverse=True):
            if admitted + pages <= budget:
                admitted += pages
        return admitted

    def propose(self, advisories: Mapping[str, int]) -> Dict[str, float]:
        """Memory shares proportional to advisories, floored per guest."""
        if not advisories:
            raise AllocationError("nothing to negotiate")
        names = sorted(advisories)
        if self._min_share * len(names) > 1.0 + 1e-9:
            raise AllocationError(
                f"{len(names)} guests cannot all receive the "
                f"{self._min_share:.0%} floor"
            )
        total_advised = sum(max(0, advisories[name]) for name in names)
        if total_advised <= 0:
            return {name: 1.0 / len(names) for name in names}
        distributable = 1.0 - self._min_share * len(names)
        return {
            name: self._min_share
            + distributable * max(0, advisories[name]) / total_advised
            for name in names
        }

    def negotiate(self, vmm: VirtualMachineMonitor,
                  machine_name: Optional[str] = None) -> NegotiationResult:
        """Collect advisories from every database guest on a host and
        apply the proportional memory shares through the VMM."""
        if machine_name is None:
            machine_name = next(iter(vmm.machines))
        vms = vmm.vms_on(machine_name)
        database_vms = [vm for vm in vms if isinstance(vm.guest, Database)]
        if not database_vms:
            raise AllocationError(
                f"no database guests on {machine_name!r} to negotiate for"
            )
        machine = vmm.machines[machine_name]
        advisories = {
            vm.name: self.cacheable_pages(
                working_set_report(vm.guest), machine.memory_mib,
                n_guests=len(database_vms),
            )
            for vm in database_vms
        }
        shares = self.propose(advisories)
        allocation = {
            vm.name: vm.shares.with_share(ResourceKind.MEMORY, shares[vm.name])
            for vm in database_vms
        }
        vmm.apply_allocation(allocation)
        return NegotiationResult(shares=shares, advisories=advisories)
