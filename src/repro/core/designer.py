"""The virtualization designer facade.

Ties the pieces of the paper's framework together (Figure 2): a design
problem, a cost model (what-if optimizer over calibrated parameters),
and a combinatorial search. The resulting :class:`Design` reports the
recommended allocation matrix alongside the default (equal-share)
baseline, and can be applied to a :class:`VirtualMachineMonitor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Union

from repro.core.cost_model import CostModel
from repro.core.problem import AllocationMatrix, VirtualizationDesignProblem
from repro.core.search import SearchAlgorithm, SearchResult, make_algorithm
from repro.core.slo import SloCostModel, SloPolicy
from repro.virt.monitor import VirtualMachineMonitor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel.engine import EvaluationEngine


@dataclass
class Design:
    """A recommended virtualization design."""

    problem: VirtualizationDesignProblem
    allocation: AllocationMatrix
    predicted_total_cost: float
    predicted_costs: Dict[str, float]
    default_allocation: AllocationMatrix
    default_total_cost: float
    default_costs: Dict[str, float]
    algorithm: str
    evaluations: int
    #: True when the search stopped early on its evaluation budget or
    #: deadline — the design is best-so-far, not exhaustively optimal.
    stopped: bool = False

    @property
    def predicted_improvement(self) -> float:
        """Fractional predicted cost reduction vs the equal-share default."""
        if self.default_total_cost <= 0:
            return 0.0
        return 1.0 - self.predicted_total_cost / self.default_total_cost

    def summary(self) -> str:
        lines = [
            f"Design via {self.algorithm} "
            f"({self.evaluations} cost evaluations)",
        ]
        for name in self.allocation.workload_names():
            vec = self.allocation.vector_for(name)
            lines.append(
                f"  {name}: cpu={vec.cpu:.2f} mem={vec.memory:.2f} io={vec.io:.2f}"
                f"  predicted={self.predicted_costs[name]:.3f}s"
                f" (default {self.default_costs[name]:.3f}s)"
            )
        lines.append(
            f"  total predicted {self.predicted_total_cost:.3f}s vs "
            f"default {self.default_total_cost:.3f}s "
            f"({100 * self.predicted_improvement:.1f}% better)"
        )
        return "\n".join(lines)


class VirtualizationDesigner:
    """Solves design problems and applies the results."""

    def __init__(self, problem: VirtualizationDesignProblem,
                 cost_model: CostModel,
                 slo: Optional[SloPolicy] = None):
        self._problem = problem
        self._base_cost_model = cost_model
        if slo is not None:
            baseline = self._baseline_costs(cost_model)
            self._cost_model: CostModel = SloCostModel(cost_model, slo, baseline)
        else:
            self._cost_model = cost_model

    @property
    def problem(self) -> VirtualizationDesignProblem:
        return self._problem

    @property
    def cost_model(self) -> CostModel:
        return self._cost_model

    def _baseline_costs(self, cost_model: CostModel) -> Dict[str, float]:
        default = self._problem.default_allocation()
        return {
            spec.name: cost_model.cost(spec, default.vector_for(spec.name))
            for spec in self._problem.specs
        }

    # -- designing -----------------------------------------------------------

    def evaluate(self, allocation: AllocationMatrix) -> Dict[str, float]:
        """Un-penalized cost of each workload under *allocation*.

        Validates the matrix first: a negative share or a resource
        column summing past 1 raises an
        :class:`~repro.util.errors.AllocationError` naming the VM and
        resource, instead of surfacing later as nonsense costs.
        """
        allocation.validate()
        return {
            spec.name: self._base_cost_model.cost(
                spec, allocation.vector_for(spec.name)
            )
            for spec in self._problem.specs
        }

    def design(self, algorithm: Union[str, SearchAlgorithm] = "exhaustive",
               grid: int = 4, max_evaluations: Optional[int] = None,
               deadline_seconds: Optional[float] = None,
               engine: Optional["EvaluationEngine"] = None,
               continuous: bool = False, fine_factor: int = 8) -> Design:
        """Search for the best allocation of the controlled resources.

        *max_evaluations* / *deadline_seconds* bound the search when the
        cost model may be degraded (see ``docs/robustness.md``); with an
        *engine* the search runs its batched strategy (see
        ``docs/parallelism.md``); with *continuous* the search leaves
        the coarse grid for allocations down to a
        ``1/(grid * fine_factor)`` resolution — pair it with a cost
        model backed by a fitted surrogate so the extra allocations cost
        interpolations, not experiments (``docs/surrogate.md``). All
        apply only when *algorithm* is given by name.
        """
        if isinstance(algorithm, str):
            algorithm = make_algorithm(algorithm, grid,
                                       max_evaluations=max_evaluations,
                                       deadline_seconds=deadline_seconds,
                                       engine=engine, continuous=continuous,
                                       fine_factor=fine_factor)
        result: SearchResult = algorithm.search(self._problem, self._cost_model)

        default = self._problem.default_allocation()
        default_costs = self.evaluate(default)
        chosen_costs = self.evaluate(result.allocation)
        return Design(
            problem=self._problem,
            allocation=result.allocation,
            predicted_total_cost=sum(chosen_costs.values()),
            predicted_costs=chosen_costs,
            default_allocation=default,
            default_total_cost=sum(default_costs.values()),
            default_costs=default_costs,
            algorithm=result.algorithm,
            evaluations=result.evaluations,
            stopped=result.stopped,
        )

    # -- deployment -----------------------------------------------------------

    def apply(self, vmm: VirtualMachineMonitor, design: Design,
              machine_name: Optional[str] = None) -> None:
        """Create or reconfigure one VM per workload with the design's shares.

        Existing VMs with matching names are reconfigured in place (the
        run-time knob Xen exposes); missing ones are created with the
        workload's database attached and started.
        """
        allocation = design.allocation
        allocation.validate()
        existing = {
            name: vmm.vms[name]
            for name in allocation.workload_names() if name in vmm.vms
        }
        if existing:
            vmm.apply_allocation({
                name: allocation.vector_for(name) for name in existing
            })
        for spec in self._problem.specs:
            if spec.name in existing:
                continue
            vm = vmm.create_vm(spec.name, allocation.vector_for(spec.name),
                               machine_name=machine_name)
            vm.attach_guest(spec.database)
            vm.start()
