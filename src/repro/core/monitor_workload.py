"""Workload drift detection for the dynamic case.

The paper's dynamic extension needs a trigger: reconfiguring "in
response to changes in the workload" presumes something notices the
change. The :class:`WorkloadMonitor` watches per-workload costs (from
measured runs or estimates) and reports drift when any workload's cost
moves beyond a relative threshold from its baseline; the baseline then
resets so a persistent shift fires exactly once.

Used by :class:`repro.core.dynamic.DynamicReallocator`'s ``triggered``
strategy: re-design only when the monitor fires, instead of on every
phase boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional


@dataclass
class DriftReport:
    """What the monitor saw in one observation."""

    drifted: bool
    per_workload_change: Dict[str, float] = field(default_factory=dict)

    def worst_change(self) -> float:
        if not self.per_workload_change:
            return 0.0
        return max(abs(change) for change in self.per_workload_change.values())


class WorkloadMonitor:
    """Detects relative cost drift against a rolling baseline."""

    def __init__(self, threshold: float = 0.25):
        if threshold <= 0:
            raise ValueError("drift threshold must be positive")
        self.threshold = threshold
        self._baseline: Optional[Dict[str, float]] = None

    @property
    def baseline(self) -> Optional[Dict[str, float]]:
        return dict(self._baseline) if self._baseline is not None else None

    def observe(self, costs: Mapping[str, float]) -> DriftReport:
        """Record one epoch's per-workload costs.

        The first observation only establishes the baseline. Afterwards
        drift is flagged when any workload's cost changed by more than
        ``threshold`` relative to its baseline; on drift the baseline
        resets to the new observation.
        """
        costs = dict(costs)
        if self._baseline is None:
            self._baseline = costs
            return DriftReport(drifted=False)

        changes: Dict[str, float] = {}
        for name, cost in costs.items():
            base = self._baseline.get(name)
            if base is None or base <= 0:
                changes[name] = float("inf") if cost > 0 else 0.0
                continue
            changes[name] = (cost - base) / base
        drifted = any(abs(change) > self.threshold for change in changes.values())
        if drifted:
            self._baseline = costs
        return DriftReport(drifted=drifted, per_workload_change=changes)

    def reset(self, costs: Optional[Mapping[str, float]] = None) -> None:
        """Re-anchor the baseline (e.g. after a deliberate reconfiguration)."""
        self._baseline = dict(costs) if costs is not None else None
