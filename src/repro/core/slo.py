"""Service-level objectives (paper, Section 7 future work).

"Adding different service-level objectives to the different workloads
is also an interesting direction for future work." This module
implements the natural formulation: per-workload *weights* (a gold
workload's seconds count more than a batch workload's) and per-workload
*bounds* — an absolute cost ceiling and/or a maximum degradation
relative to the equal-share default.

Bounds are enforced through a large additive penalty, which keeps every
search algorithm unchanged: an allocation violating an SLO can never
beat a feasible one, and among infeasible allocations less violation is
still preferred (so searches descend toward feasibility).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.cost_model import CostModel
from repro.core.problem import WorkloadSpec
from repro.virt.resources import ResourceVector

#: Penalty per second of SLO violation; large enough to dominate any
#: realistic workload cost.
VIOLATION_PENALTY = 1e6


@dataclass(frozen=True)
class ServiceLevelObjective:
    """The objective attached to one workload."""

    #: Relative importance of this workload's seconds in the objective.
    weight: float = 1.0
    #: Absolute ceiling on the workload's cost (seconds), if any.
    max_seconds: Optional[float] = None
    #: Maximum allowed slowdown vs the equal-share default, e.g. 0.1
    #: allows up to 10% degradation.
    max_degradation: Optional[float] = None

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("SLO weight must be non-negative")
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise ValueError("max_seconds must be positive")
        if self.max_degradation is not None and self.max_degradation < 0:
            raise ValueError("max_degradation must be non-negative")

    def ceiling(self, baseline_seconds: Optional[float]) -> Optional[float]:
        """The effective cost ceiling given the workload's baseline."""
        bounds = []
        if self.max_seconds is not None:
            bounds.append(self.max_seconds)
        if self.max_degradation is not None and baseline_seconds is not None:
            bounds.append(baseline_seconds * (1.0 + self.max_degradation))
        return min(bounds) if bounds else None


class SloPolicy:
    """Per-workload objectives, defaulting to weight-1, unbounded."""

    def __init__(self, objectives: Optional[Dict[str, ServiceLevelObjective]] = None):
        self._objectives = dict(objectives or {})

    def objective_for(self, workload_name: str) -> ServiceLevelObjective:
        return self._objectives.get(workload_name, ServiceLevelObjective())

    def set_objective(self, workload_name: str,
                      objective: ServiceLevelObjective) -> None:
        self._objectives[workload_name] = objective

    def is_satisfied(self, workload_name: str, cost_seconds: float,
                     baseline_seconds: Optional[float]) -> bool:
        ceiling = self.objective_for(workload_name).ceiling(baseline_seconds)
        return ceiling is None or cost_seconds <= ceiling


class SloCostModel(CostModel):
    """Wraps a cost model with SLO weights and violation penalties."""

    def __init__(self, inner: CostModel, policy: SloPolicy,
                 baseline_costs: Dict[str, float]):
        super().__init__()
        self._inner = inner
        self._policy = policy
        self._baseline_costs = dict(baseline_costs)

    @property
    def inner(self) -> CostModel:
        return self._inner

    def _cost(self, spec: WorkloadSpec, allocation: ResourceVector) -> float:
        raw = self._inner.cost(spec, allocation)
        objective = self._policy.objective_for(spec.name)
        weighted = raw * objective.weight
        ceiling = objective.ceiling(self._baseline_costs.get(spec.name))
        if ceiling is not None and raw > ceiling:
            weighted += VIOLATION_PENALTY * (raw - ceiling)
        return weighted
