"""Formulation of the virtualization design problem (paper, Section 3).

``N`` workloads ``W_1..W_N``, each against its own database, run in
``N`` virtual machines on one physical machine with ``m`` controllable
resources. An :class:`AllocationMatrix` assigns each workload a
:class:`ResourceVector`; validity requires every share non-negative and
each resource's shares summing to (at most) one. The objective is to
minimize ``sum_i Cost(W_i, R_i)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.engine.database import Database
from repro.util.errors import AllocationError
from repro.virt.machine import PhysicalMachine
from repro.virt.resources import (
    ALL_RESOURCES,
    SHARE_EPSILON,
    ResourceKind,
    ResourceVector,
    equal_share,
)
from repro.workloads.workload import Workload


@dataclass
class WorkloadSpec:
    """One workload plus the database it runs against."""

    workload: Workload
    database: Database

    @property
    def name(self) -> str:
        return self.workload.name


class AllocationMatrix:
    """The paper's ``R``: one share vector per workload."""

    def __init__(self, allocations: Mapping[str, ResourceVector]):
        if not allocations:
            raise AllocationError("an allocation matrix needs at least one workload")
        self._allocations: Dict[str, ResourceVector] = dict(allocations)

    @classmethod
    def equal(cls, workload_names: Sequence[str]) -> "AllocationMatrix":
        """The default allocation: every resource split evenly."""
        share = equal_share(len(workload_names))
        return cls({name: share for name in workload_names})

    def vector_for(self, workload_name: str) -> ResourceVector:
        try:
            return self._allocations[workload_name]
        except KeyError:
            raise AllocationError(f"no allocation for workload {workload_name!r}") from None

    def workload_names(self) -> List[str]:
        return sorted(self._allocations)

    def items(self) -> Iterable[Tuple[str, ResourceVector]]:
        return self._allocations.items()

    def as_dict(self) -> Dict[str, ResourceVector]:
        return dict(self._allocations)

    def with_vector(self, workload_name: str,
                    vector: ResourceVector) -> "AllocationMatrix":
        updated = dict(self._allocations)
        updated[workload_name] = vector
        return AllocationMatrix(updated)

    def resource_totals(self) -> Dict[ResourceKind, float]:
        totals = {kind: 0.0 for kind in ALL_RESOURCES}
        for vector in self._allocations.values():
            for kind in ALL_RESOURCES:
                totals[kind] += vector.share(kind)
        return totals

    def validate(self, require_full: bool = False) -> None:
        """Raise :class:`AllocationError` on an infeasible matrix.

        With *require_full*, each resource must be fully allocated
        (shares summing to 1), matching the paper's equality constraint.
        """
        for name, vector in self._allocations.items():
            for kind in ALL_RESOURCES:
                if vector.share(kind) < -SHARE_EPSILON:
                    raise AllocationError(
                        f"negative {kind} share for workload {name!r}"
                    )
        for kind, total in self.resource_totals().items():
            if total > 1.0 + SHARE_EPSILON:
                per_vm = ", ".join(
                    f"{name}={vector.share(kind):.4f}"
                    for name, vector in sorted(self._allocations.items())
                )
                raise AllocationError(
                    f"{kind} oversubscribed: shares sum to {total:.4f} > 1 "
                    f"({per_vm})"
                )
            if require_full and abs(total - 1.0) > 1e-6:
                raise AllocationError(
                    f"{kind} not fully allocated: shares sum to {total:.4f}"
                )

    def __eq__(self, other) -> bool:
        if not isinstance(other, AllocationMatrix):
            return NotImplemented
        return self._allocations == other._allocations

    def __repr__(self) -> str:
        rows = ", ".join(
            f"{name}: ({vec.cpu:.2f}, {vec.memory:.2f}, {vec.io:.2f})"
            for name, vec in sorted(self._allocations.items())
        )
        return f"AllocationMatrix({rows})"


@dataclass
class VirtualizationDesignProblem:
    """A complete problem instance."""

    machine: PhysicalMachine
    specs: List[WorkloadSpec]
    #: Resources the search controls; the rest are fixed at
    #: ``fixed_shares`` (the paper's experiment controls CPU only, with
    #: memory fixed at 50/50).
    controlled_resources: Tuple[ResourceKind, ...] = (
        ResourceKind.CPU, ResourceKind.MEMORY, ResourceKind.IO,
    )
    fixed_shares: Dict[ResourceKind, Dict[str, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.specs:
            raise AllocationError("a design problem needs at least one workload")
        names = [spec.name for spec in self.specs]
        if len(set(names)) != len(names):
            raise AllocationError(f"duplicate workload names: {names}")
        if not self.controlled_resources:
            raise AllocationError("at least one resource must be controlled")

    @property
    def n_workloads(self) -> int:
        return len(self.specs)

    def workload_names(self) -> List[str]:
        return [spec.name for spec in self.specs]

    def spec(self, name: str) -> WorkloadSpec:
        for spec in self.specs:
            if spec.name == name:
                return spec
        raise AllocationError(f"unknown workload {name!r}")

    def fixed_share_for(self, kind: ResourceKind, workload_name: str) -> float:
        """The fixed share of an uncontrolled resource for a workload."""
        per_workload = self.fixed_shares.get(kind)
        if per_workload is not None and workload_name in per_workload:
            return per_workload[workload_name]
        return 1.0 / self.n_workloads

    def default_allocation(self) -> AllocationMatrix:
        """Equal controlled shares plus the configured fixed shares."""
        allocations = {}
        for spec in self.specs:
            shares = {}
            for kind in ALL_RESOURCES:
                if kind in self.controlled_resources:
                    shares[kind] = 1.0 / self.n_workloads
                else:
                    shares[kind] = self.fixed_share_for(kind, spec.name)
            allocations[spec.name] = ResourceVector(shares)
        return AllocationMatrix(allocations)
