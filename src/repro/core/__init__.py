"""The virtualization design problem and its solvers (the paper's core).

Given ``N`` database workloads to run in ``N`` virtual machines on one
physical machine, find the resource allocation matrix ``R`` minimizing
the total workload cost, using the virtualization-aware what-if
optimizer as the cost model.
"""

from repro.core.problem import (
    AllocationMatrix,
    VirtualizationDesignProblem,
    WorkloadSpec,
)
from repro.core.cost_model import (
    CostModel,
    MeasuredCostModel,
    OptimizerCostModel,
)
from repro.core.measure import MeasuredRun, WorkloadRunner
from repro.core.search import (
    DynamicProgrammingSearch,
    ExhaustiveSearch,
    GreedySearch,
    SearchResult,
)
from repro.core.designer import Design, VirtualizationDesigner
from repro.core.slo import ServiceLevelObjective, SloPolicy
from repro.core.dynamic import DynamicReallocator, WorkloadPhase
from repro.core.monitor_workload import DriftReport, WorkloadMonitor
from repro.core.negotiation import (
    MemoryNegotiator,
    NegotiationResult,
    working_set_pages,
    working_set_report,
)
from repro.core.placement import PlacementDesigner, PlacementResult

__all__ = [
    "AllocationMatrix",
    "VirtualizationDesignProblem",
    "WorkloadSpec",
    "CostModel",
    "MeasuredCostModel",
    "OptimizerCostModel",
    "MeasuredRun",
    "WorkloadRunner",
    "DynamicProgrammingSearch",
    "ExhaustiveSearch",
    "GreedySearch",
    "SearchResult",
    "Design",
    "VirtualizationDesigner",
    "ServiceLevelObjective",
    "SloPolicy",
    "DynamicReallocator",
    "WorkloadPhase",
    "DriftReport",
    "WorkloadMonitor",
    "PlacementDesigner",
    "PlacementResult",
    "MemoryNegotiator",
    "NegotiationResult",
    "working_set_pages",
    "working_set_report",
]
