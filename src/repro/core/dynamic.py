"""Dynamic reallocation (paper, Section 7 future work).

"An important next step ... is to consider the dynamic case and
reconfigure the virtual machines on the fly in response to changes in
the workload." This module implements the obvious controller: the
workload arrives in *phases*; at each phase boundary the controller
re-solves the (static) virtualization design problem for the upcoming
phase and applies the new shares through the VMM, paying a
reconfiguration penalty when the allocation actually changes.

The report compares four strategies over the same phase sequence:

* ``static-default`` — equal shares throughout,
* ``static-designed`` — one design computed for the first phase and
  kept,
* ``dynamic`` — re-designed every phase (plus reconfiguration costs),
* ``triggered`` — re-designed only when a :class:`WorkloadMonitor`
  detects cost drift at the current allocation; the realistic
  controller, since production systems observe the change one phase
  after it happens rather than being told the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.core.cost_model import CostModel
from repro.core.designer import VirtualizationDesigner
from repro.core.monitor_workload import WorkloadMonitor
from repro.core.problem import (
    AllocationMatrix,
    VirtualizationDesignProblem,
    WorkloadSpec,
)
from repro.core.search import SearchAlgorithm
from repro.util.errors import AllocationError
from repro.virt.machine import PhysicalMachine


@dataclass
class WorkloadPhase:
    """One phase: the specs active until the next boundary."""

    name: str
    specs: List[WorkloadSpec]


@dataclass
class PhaseOutcome:
    """Costs of one phase under one strategy."""

    phase_name: str
    allocation: AllocationMatrix
    workload_costs: Dict[str, float]
    reconfigured: bool = False

    @property
    def total_cost(self) -> float:
        return sum(self.workload_costs.values())


@dataclass
class StrategyReport:
    """A strategy's outcomes over the full phase sequence."""

    strategy: str
    outcomes: List[PhaseOutcome] = field(default_factory=list)
    reconfiguration_seconds: float = 0.0

    @property
    def total_cost(self) -> float:
        return sum(o.total_cost for o in self.outcomes) + self.reconfiguration_seconds

    @property
    def reconfigurations(self) -> int:
        return sum(1 for o in self.outcomes if o.reconfigured)


class DynamicReallocator:
    """Compares static and dynamic allocation over a phase sequence."""

    def __init__(self, machine: PhysicalMachine, cost_model: CostModel,
                 algorithm: Union[str, SearchAlgorithm] = "exhaustive",
                 grid: int = 4, reconfiguration_seconds: float = 1.0,
                 drift_threshold: float = 0.25):
        self._machine = machine
        self._cost_model = cost_model
        self._algorithm = algorithm
        self._grid = grid
        self._reconfiguration_seconds = reconfiguration_seconds
        self._drift_threshold = drift_threshold

    def _problem(self, phase: WorkloadPhase) -> VirtualizationDesignProblem:
        return VirtualizationDesignProblem(machine=self._machine, specs=phase.specs)

    def _phase_costs(self, phase: WorkloadPhase,
                     allocation: AllocationMatrix) -> Dict[str, float]:
        return {
            spec.name: self._cost_model.cost(spec, allocation.vector_for(spec.name))
            for spec in phase.specs
        }

    def run(self, phases: List[WorkloadPhase]) -> Dict[str, StrategyReport]:
        """Evaluate all three strategies over *phases*."""
        if not phases:
            raise AllocationError("need at least one phase")
        names = [spec.name for spec in phases[0].specs]
        for phase in phases:
            if [spec.name for spec in phase.specs] != names:
                raise AllocationError(
                    "all phases must contain the same workloads (their "
                    "statements may differ)"
                )

        default = self._problem(phases[0]).default_allocation()
        reports = {
            "static-default": StrategyReport(strategy="static-default"),
            "static-designed": StrategyReport(strategy="static-designed"),
            "dynamic": StrategyReport(strategy="dynamic"),
            "triggered": StrategyReport(strategy="triggered"),
        }

        # Static default: equal shares, never touched.
        for phase in phases:
            reports["static-default"].outcomes.append(PhaseOutcome(
                phase_name=phase.name, allocation=default,
                workload_costs=self._phase_costs(phase, default),
            ))

        # Static designed: solve once on the first phase.
        first_designer = VirtualizationDesigner(
            self._problem(phases[0]), self._cost_model
        )
        static_design = first_designer.design(self._algorithm, grid=self._grid)
        for phase in phases:
            reports["static-designed"].outcomes.append(PhaseOutcome(
                phase_name=phase.name, allocation=static_design.allocation,
                workload_costs=self._phase_costs(phase, static_design.allocation),
            ))

        # Dynamic: re-design at each phase boundary.
        current: Optional[AllocationMatrix] = None
        dynamic = reports["dynamic"]
        for phase in phases:
            designer = VirtualizationDesigner(
                self._problem(phase), self._cost_model
            )
            design = designer.design(self._algorithm, grid=self._grid)
            reconfigured = current is not None and design.allocation != current
            if reconfigured:
                dynamic.reconfiguration_seconds += self._reconfiguration_seconds
            current = design.allocation
            dynamic.outcomes.append(PhaseOutcome(
                phase_name=phase.name, allocation=design.allocation,
                workload_costs=self._phase_costs(phase, design.allocation),
                reconfigured=reconfigured,
            ))

        # Triggered: run each phase at the standing allocation; if the
        # monitor sees the costs drift, re-design for the *observed*
        # phase and apply the new allocation going forward. A role swap
        # therefore costs one badly-allocated phase before the
        # controller adapts — the realistic lag.
        triggered = reports["triggered"]
        monitor = WorkloadMonitor(threshold=self._drift_threshold)
        standing = static_design.allocation
        monitor.reset(self._phase_costs(phases[0], standing))
        for phase in phases:
            costs = self._phase_costs(phase, standing)
            drift = monitor.observe(costs)
            reconfigured = False
            if drift.drifted:
                designer = VirtualizationDesigner(
                    self._problem(phase), self._cost_model
                )
                new_design = designer.design(self._algorithm, grid=self._grid)
                if new_design.allocation != standing:
                    standing = new_design.allocation
                    triggered.reconfiguration_seconds += \
                        self._reconfiguration_seconds
                    reconfigured = True
                    monitor.reset(self._phase_costs(phase, standing))
            triggered.outcomes.append(PhaseOutcome(
                phase_name=phase.name, allocation=standing,
                workload_costs=costs, reconfigured=reconfigured,
            ))
        return reports
