"""Combinatorial search over resource allocations (paper, Section 3).

Overview
--------
The paper anticipates that "any standard combinatorial search algorithm
such as greedy search or dynamic programming" applies once the cost
model exists. This module provides three, all operating on a shared
discretization (each controlled resource split into ``grid`` units,
every workload receiving at least one unit):

* :class:`ExhaustiveSearch` — enumerate every full allocation; the
  oracle for solution quality.
* :class:`GreedySearch` — start from equal shares and repeatedly move
  the single unit whose transfer most reduces total cost. Fast, can
  stop in a local minimum.
* :class:`DynamicProgrammingSearch` — exact for this separable
  objective: workloads are considered one at a time against the vector
  of remaining units per resource.

Accounting
----------
Because ``Cost(W_i, R_i)`` is separable, all three report both the
chosen matrix and how many distinct cost-model evaluations they used —
the currency that matters when each evaluation is an optimizer call (or
worse, a measured run). ``SearchResult.evaluations`` counts *uncached*
evaluations spent by this search (deltas of
``CostModel.evaluations``).

Budgets
-------
A degraded cost model (one falling back to fresh calibrations, or
retrying a faulty environment) can make each evaluation arbitrarily
expensive, and an unbounded search would hang the designer. Every
algorithm therefore accepts an optional evaluation budget
(``max_evaluations``) and host-time deadline (``deadline_seconds``).
When either trips, the search stops early and returns the best
allocation found so far (the dynamic program falls back to equal
shares when it has no complete solution yet); ``SearchResult.stopped``
records that, and the ``search.budget_stops`` counter (labelled
``algorithm=<name>``) makes it visible in run reports. Budget spend is
accounted from the fresh-evaluation counts the batch API returns —
never by diffing ``CostModel.evaluations``, which misattributes spend
when two searches interleave on a shared model.

Batched evaluation
------------------
With an :class:`~repro.parallel.EvaluationEngine` attached (the
``engine`` argument, ``--workers N`` on the CLI) each algorithm
switches to a batched strategy built on
:meth:`~repro.core.cost_model.CostModel.cost_many`: greedy evaluates
its whole single-unit-move frontier per step in one batch, exhaustive
and dynamic-programming chunk their enumerations into
budget-capped batches (at most :data:`BATCH_TARGET` pairs each), and
evaluation budgets are re-checked at every batch boundary — an
in-flight batch always completes (see ``docs/parallelism.md``).
Batch boundaries are a function of the problem and budget alone, never
of the worker count, so a 4-worker run is bit-identical to a 1-worker
run. Without an engine the original unbatched code path runs,
unchanged.

Continuous allocations
----------------------
With ``continuous=True`` the search is no longer confined to the coarse
grid: greedy climbs with shrinking step sizes (halving the step each
time it stalls, down to ``1/(grid * fine_factor)``), while exhaustive
and dynamic programming enumerate a fine grid of
``grid * fine_factor`` units. Continuous mode only makes economic sense
with a cost model whose parameter source answers arbitrary allocations
without fresh experiments — a fitted
:class:`~repro.surrogate.ParameterSurface` (``repro design
--continuous``, see ``docs/surrogate.md``). Refinement stages count on
``search.step_refinements`` (labelled ``algorithm=<name>``); all
bit-identity guarantees carry over, since every stage reuses the
ordinary serial/batched strategies.

Observability
-------------
Each run opens a ``search`` span tagged with the algorithm and grid and
increments the ``search.runs`` and ``search.evaluations`` counters
(labelled ``algorithm=<name>``), so a :class:`repro.obs.report.RunReport`
can break evaluation spend down per algorithm. The counters agree with
``SearchResult.evaluations`` by construction.

API
---
Use :func:`make_algorithm` (or the ``ALGORITHMS`` mapping) to construct
an algorithm by name, then ``algorithm.search(problem, cost_model)``.
"""

from __future__ import annotations

import itertools
import math
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.core.cost_model import CostModel
from repro.core.problem import AllocationMatrix, VirtualizationDesignProblem
from repro.obs import metrics
from repro.obs.spans import span
from repro.util.errors import AllocationError
from repro.virt.resources import ALL_RESOURCES, ResourceKind, ResourceVector
from repro.virt.vm import MIN_GUEST_MEMORY_MIB

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel.engine import EvaluationEngine

#: Upper bound on the pairs per ``cost_many`` batch in the batched
#: search strategies. Deliberately independent of the engine's worker
#: count: batch boundaries decide where budgets are checked, and those
#: decisions must be identical for every worker count for parallel and
#: serial runs to be bit-identical.
BATCH_TARGET = 256


@dataclass
class SearchResult:
    """Outcome of one search."""

    algorithm: str
    allocation: AllocationMatrix
    total_cost: float
    per_workload_costs: Dict[str, float] = field(default_factory=dict)
    evaluations: int = 0
    #: True when the search stopped early on its evaluation budget or
    #: deadline; the allocation is then best-so-far, not exhaustive.
    stopped: bool = False


class _Budget:
    """Tracks one search's evaluation/deadline budget.

    Spend is reported explicitly by the search (the ``fresh`` counts
    its batches paid for) via :meth:`add`, so two searches interleaving
    on one shared cost model each account only their own work.
    """

    def __init__(self, algorithm: str,
                 max_evaluations: Optional[int],
                 deadline_seconds: Optional[float]):
        self._algorithm = algorithm
        self._max_evaluations = max_evaluations
        self._deadline_seconds = deadline_seconds
        self._started = time.monotonic()
        self.spent = 0
        self.stopped = False

    def add(self, fresh: int) -> None:
        """Record *fresh* uncached evaluations spent by this search."""
        self.spent += fresh

    def remaining(self) -> Optional[int]:
        """Evaluations left before the budget trips (None = unbounded)."""
        if self._max_evaluations is None:
            return None
        return max(0, self._max_evaluations - self.spent)

    def cap(self, target: int, floor: int = 1) -> int:
        """Batch-size cap: *target* pairs, but never past the budget.

        The floor keeps forward progress — the first unit of work (one
        full allocation, one DP option) is always evaluated whole, the
        same overshoot-by-at-most-one-unit the unbatched strategies
        have always had.
        """
        remaining = self.remaining()
        if remaining is None:
            return target
        return max(floor, min(target, remaining))

    def exhausted(self) -> bool:
        """Whether the budget has tripped (counts the first trip)."""
        if self.stopped:
            return True
        if (self._max_evaluations is not None
                and self.spent >= self._max_evaluations):
            self._trip()
        elif (self._deadline_seconds is not None
                and time.monotonic() - self._started >= self._deadline_seconds):
            self._trip()
        return self.stopped

    def _trip(self) -> None:
        self.stopped = True
        metrics.counter("search.budget_stops",
                        algorithm=self._algorithm).inc()


def compositions(total: int, parts: int, minimum: int = 1) -> Iterator[Tuple[int, ...]]:
    """All ways to split *total* units into *parts* parts, each >= minimum."""
    if parts <= 0:
        raise AllocationError("parts must be positive")
    spare = total - parts * minimum
    if spare < 0:
        return
    if parts == 1:
        yield (total,)
        return
    for first in range(minimum, total - minimum * (parts - 1) + 1):
        for rest in compositions(total - first, parts - 1, minimum):
            yield (first,) + rest


class SearchAlgorithm(ABC):
    """Base class for allocation searches."""

    name = "base"

    #: How :attr:`continuous` mode refines this algorithm's resolution:
    #: ``"fine-grid"`` multiplies the grid by :attr:`fine_factor` up
    #: front (exhaustive, DP); ``"shrinking-steps"`` starts at the base
    #: grid and halves the step size whenever the climb stalls (greedy).
    continuous_strategy = "fine-grid"

    def __init__(self, grid: int = 4,
                 max_evaluations: Optional[int] = None,
                 deadline_seconds: Optional[float] = None,
                 engine: Optional["EvaluationEngine"] = None,
                 continuous: bool = False, fine_factor: int = 8):
        if grid < 1:
            raise AllocationError("grid must be at least 1")
        if max_evaluations is not None and max_evaluations < 1:
            raise AllocationError("max_evaluations must be at least 1")
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise AllocationError("deadline_seconds must be positive")
        if continuous and fine_factor < 2:
            raise AllocationError("fine_factor must be at least 2")
        self.grid = grid
        #: The coarse grid the caller asked for; in continuous mode
        #: :attr:`grid` is the *effective* resolution, up to
        #: ``base_grid * fine_factor``.
        self.base_grid = grid
        self.continuous = continuous
        self.fine_factor = fine_factor
        if continuous and self.continuous_strategy == "fine-grid":
            self.grid = grid * fine_factor
        self.max_evaluations = max_evaluations
        self.deadline_seconds = deadline_seconds
        self.engine = engine

    def search(self, problem: VirtualizationDesignProblem,
               cost_model: CostModel) -> SearchResult:
        """Find a (locally) optimal allocation matrix.

        Template method: opens a ``search`` span tagged with the
        algorithm and grid, then delegates to :meth:`_search`.
        """
        with span("search", algorithm=self.name, grid=str(self.grid),
                  continuous=str(self.continuous).lower()):
            return self._search(problem, cost_model)

    @abstractmethod
    def _search(self, problem: VirtualizationDesignProblem,
                cost_model: CostModel) -> SearchResult:
        """The algorithm body; must end via :meth:`_finish`."""

    # -- shared helpers -----------------------------------------------------

    def _min_units(self, problem: VirtualizationDesignProblem,
                   kind: ResourceKind) -> int:
        """Smallest grid allotment a workload may receive for *kind*.

        One unit by default; for memory the floor is raised so every
        candidate VM can actually boot (the hypervisor refuses guests
        below :data:`MIN_GUEST_MEMORY_MIB`) — the search must never
        probe allocations that are physically inadmissible.
        """
        if kind is ResourceKind.MEMORY:
            min_share = MIN_GUEST_MEMORY_MIB / problem.machine.memory_mib
            return max(1, math.ceil(min_share * self.grid - 1e-9))
        return 1

    def _vector(self, problem: VirtualizationDesignProblem, name: str,
                units: Dict[ResourceKind, int]) -> ResourceVector:
        """Share vector from controlled units plus fixed shares."""
        shares = {}
        for kind in ALL_RESOURCES:
            if kind in problem.controlled_resources:
                shares[kind] = units[kind] / self.grid
            else:
                shares[kind] = problem.fixed_share_for(kind, name)
        return ResourceVector(shares)

    def _matrix(self, problem: VirtualizationDesignProblem,
                units_by_name: Dict[str, Dict[ResourceKind, int]]) -> AllocationMatrix:
        return AllocationMatrix({
            name: self._vector(problem, name, units)
            for name, units in units_by_name.items()
        })

    def _evaluate(self, problem: VirtualizationDesignProblem,
                  cost_model: CostModel,
                  matrix: AllocationMatrix,
                  budget: Optional[_Budget] = None
                  ) -> Tuple[float, Dict[str, float]]:
        """Cost one full allocation matrix (one pair per workload).

        Goes through :meth:`CostModel.cost_many` so the fresh-evaluation
        count lands in *budget* — the per-search accounting that stays
        correct when several searches share one cost model.
        """
        pairs = [(spec, matrix.vector_for(spec.name))
                 for spec in problem.specs]
        outcome = cost_model.cost_many(pairs, engine=self.engine)
        if budget is not None:
            budget.add(outcome.fresh)
        per_workload = {
            spec.name: cost
            for spec, cost in zip(problem.specs, outcome.costs)
        }
        return sum(per_workload.values()), per_workload

    def _equal_units(self, problem: VirtualizationDesignProblem
                     ) -> Dict[str, Dict[ResourceKind, int]]:
        """Start point: units split as evenly as the grid allows."""
        n = problem.n_workloads
        if self.grid < n:
            raise AllocationError(
                f"grid {self.grid} too coarse for {n} workloads "
                f"(each needs at least one unit)"
            )
        base, remainder = divmod(self.grid, n)
        units_by_name: Dict[str, Dict[ResourceKind, int]] = {}
        for i, spec in enumerate(problem.specs):
            per_kind = {}
            for kind in problem.controlled_resources:
                per_kind[kind] = base + (1 if i < remainder else 0)
            units_by_name[spec.name] = per_kind
        for kind in problem.controlled_resources:
            needed = self._min_units(problem, kind) * n
            if needed > self.grid:
                raise AllocationError(
                    f"grid {self.grid} cannot give {n} workloads the "
                    f"minimum feasible {kind} allotment"
                )
        return units_by_name

    def _budget(self) -> _Budget:
        return _Budget(self.name, self.max_evaluations,
                       self.deadline_seconds)

    def _finish(self, problem: VirtualizationDesignProblem,
                cost_model: CostModel,
                units_by_name: Dict[str, Dict[ResourceKind, int]],
                budget: _Budget, stopped: bool = False) -> SearchResult:
        matrix = self._matrix(problem, units_by_name)
        # The final evaluation is usually all memo hits, but a search
        # that degraded to a fallback allocation pays for it here — the
        # budget keeps the complete spend either way.
        total, per_workload = self._evaluate(problem, cost_model, matrix,
                                             budget)
        evaluations = budget.spent
        metrics.counter("search.runs", algorithm=self.name).inc()
        metrics.counter("search.evaluations", algorithm=self.name).inc(evaluations)
        return SearchResult(
            algorithm=self.name, allocation=matrix, total_cost=total,
            per_workload_costs=per_workload, evaluations=evaluations,
            stopped=stopped,
        )


class ExhaustiveSearch(SearchAlgorithm):
    """Enumerate every full allocation of the grid; the oracle."""

    name = "exhaustive"

    def _search(self, problem: VirtualizationDesignProblem,
                cost_model: CostModel) -> SearchResult:
        names = problem.workload_names()
        n = len(names)
        resources = list(problem.controlled_resources)
        budget = self._budget()
        splits_per_resource = [
            list(compositions(self.grid, n,
                              minimum=self._min_units(problem, kind)))
            for kind in resources
        ]
        if self.engine is not None:
            best_units = self._enumerate_batched(
                problem, cost_model, budget, names, resources,
                splits_per_resource)
        else:
            best_units = self._enumerate_serial(
                problem, cost_model, budget, names, resources,
                splits_per_resource)
        if best_units is None:
            raise AllocationError("no feasible allocation for this grid")
        return self._finish(problem, cost_model, best_units,
                            budget, stopped=budget.stopped)

    def _enumerate_serial(self, problem, cost_model, budget, names,
                          resources, splits_per_resource):
        """Unbatched reference enumeration: one matrix at a time."""
        best_units: Optional[Dict[str, Dict[ResourceKind, int]]] = None
        best_cost = float("inf")
        for combo in itertools.product(*splits_per_resource):
            units_by_name = {
                name: {kind: combo[r][i] for r, kind in enumerate(resources)}
                for i, name in enumerate(names)
            }
            matrix = self._matrix(problem, units_by_name)
            total, _per = self._evaluate(problem, cost_model, matrix, budget)
            if total < best_cost:
                best_cost = total
                best_units = units_by_name
            # Checked after evaluating, so even an instantly exhausted
            # budget still yields one feasible candidate.
            if budget.exhausted():
                break
        return best_units

    def _enumerate_batched(self, problem, cost_model, budget, names,
                           resources, splits_per_resource):
        """Chunked enumeration exploiting the separable objective.

        The objective sums per-workload terms, and each workload's term
        depends only on its own unit choice — so the enumeration costs
        each distinct ``(workload, choice)`` pair once (in first-
        appearance order, through one ``cost_many`` batch per chunk)
        and scores every combination with plain float sums. Chunks are
        cut when they would need more than the budget-capped
        :data:`BATCH_TARGET` uncosted pairs; the floor of one full
        combination preserves the serial guarantee that even an
        instantly exhausted budget yields one feasible candidate.
        Chunk boundaries depend on the problem and budget alone, never
        the worker count.
        """
        n = len(names)
        local: Dict[Tuple[int, Tuple[int, ...]], float] = {}
        best_units: Optional[Dict[str, Dict[ResourceKind, int]]] = None
        best_cost = float("inf")
        combo_iter = itertools.product(*splits_per_resource)
        done = False
        while not done:
            chunk: List[tuple] = []
            pending: List[Tuple[int, Tuple[int, ...]]] = []
            pending_set = set()
            cap = budget.cap(BATCH_TARGET, floor=n)
            for combo in combo_iter:
                chunk.append(combo)
                for i in range(n):
                    choice = tuple(combo[r][i] for r in range(len(resources)))
                    key = (i, choice)
                    if key not in local and key not in pending_set:
                        pending_set.add(key)
                        pending.append(key)
                if len(pending) >= cap:
                    break
            else:
                done = True
            if not chunk:
                break
            if pending:
                pairs = []
                for i, choice in pending:
                    units = {kind: choice[r]
                             for r, kind in enumerate(resources)}
                    pairs.append((problem.spec(names[i]),
                                  self._vector(problem, names[i], units)))
                outcome = cost_model.cost_many(pairs, engine=self.engine)
                budget.add(outcome.fresh)
                for key, value in zip(pending, outcome.costs):
                    local[key] = value
            for combo in chunk:
                total = 0.0
                for i in range(n):
                    choice = tuple(combo[r][i] for r in range(len(resources)))
                    total += local[(i, choice)]
                if total < best_cost:
                    best_cost = total
                    best_units = {
                        names[i]: {kind: combo[r][i]
                                   for r, kind in enumerate(resources)}
                        for i in range(n)
                    }
            if budget.exhausted():
                done = True
        return best_units


class GreedySearch(SearchAlgorithm):
    """Hill climbing by single-unit transfers, starting from equal shares.

    In continuous mode the climb runs with *shrinking step sizes*: it
    starts at the base grid (step ``1/grid``) and, whenever no
    single-unit move improves the cost, doubles the grid resolution —
    halving the step — and resumes from the same point, until the step
    reaches ``1/(grid * fine_factor)``. Every stage reuses the ordinary
    single-unit-move frontier, so the serial/batched strategies (and
    their bit-identical-across-workers guarantee) carry over unchanged.
    """

    name = "greedy"

    continuous_strategy = "shrinking-steps"

    def _search(self, problem: VirtualizationDesignProblem,
                cost_model: CostModel) -> SearchResult:
        names = problem.workload_names()
        budget = self._budget()
        units_by_name = self._equal_units(problem)

        matrix = self._matrix(problem, units_by_name)
        current_cost, _ = self._evaluate(problem, cost_model, matrix, budget)

        base_grid = self.grid
        try:
            units_by_name, current_cost = self._climb(
                problem, cost_model, budget, names, units_by_name,
                current_cost)
            while (self.continuous and not budget.exhausted()
                   and self.grid * 2 <= base_grid * self.fine_factor):
                # Halve the step: double the resolution, rescale the
                # current point, and climb again from where we stand.
                self.grid *= 2
                units_by_name = {
                    name: {kind: value * 2 for kind, value in units.items()}
                    for name, units in units_by_name.items()
                }
                metrics.counter("search.step_refinements",
                                algorithm=self.name).inc()
                units_by_name, current_cost = self._climb(
                    problem, cost_model, budget, names, units_by_name,
                    current_cost)
            return self._finish(problem, cost_model, units_by_name,
                                budget, stopped=budget.stopped)
        finally:
            self.grid = base_grid

    def _climb(self, problem, cost_model, budget, names, units_by_name,
               current_cost):
        """Hill-climb at the current resolution until no move improves."""
        improved = True
        while improved and not budget.exhausted():
            improved = False
            if self.engine is not None:
                best_move, best_cost = self._best_move_batched(
                    problem, cost_model, budget, names, units_by_name,
                    current_cost)
            else:
                best_move, best_cost = self._best_move_serial(
                    problem, cost_model, budget, names, units_by_name,
                    current_cost)
            if best_move is not None:
                units_by_name = best_move
                current_cost = best_cost
                improved = True
        return units_by_name, current_cost

    def _moves(self, problem: VirtualizationDesignProblem, names,
               units_by_name) -> Iterator[Dict[str, Dict[ResourceKind, int]]]:
        """The single-unit-move frontier, in deterministic order."""
        for kind in problem.controlled_resources:
            min_units = self._min_units(problem, kind)
            for donor in names:
                if units_by_name[donor][kind] <= min_units:
                    continue
                for recipient in names:
                    if recipient == donor:
                        continue
                    candidate = {
                        name: dict(units)
                        for name, units in units_by_name.items()
                    }
                    candidate[donor][kind] -= 1
                    candidate[recipient][kind] += 1
                    yield candidate

    def _best_move_serial(self, problem, cost_model, budget, names,
                          units_by_name, current_cost):
        """Unbatched reference: probe moves one at a time."""
        best_move = None
        best_cost = current_cost
        for candidate in self._moves(problem, names, units_by_name):
            total, _ = self._evaluate(
                problem, cost_model, self._matrix(problem, candidate),
                budget,
            )
            if total < best_cost - 1e-12:
                best_cost = total
                best_move = candidate
            if budget.exhausted():
                break
        return best_move, best_cost

    def _best_move_batched(self, problem, cost_model, budget, names,
                           units_by_name, current_cost):
        """Evaluate the whole move frontier in one ``cost_many`` batch.

        The frontier of one greedy step is a single in-flight batch:
        the budget is re-checked at the step boundary, never inside it.
        Candidate scoring (same strictly-better-by-1e-12 rule, same
        frontier order) is unchanged from the serial path.
        """
        candidates = list(self._moves(problem, names, units_by_name))
        if not candidates:
            return None, current_cost
        specs = list(problem.specs)
        pairs = []
        for candidate in candidates:
            matrix = self._matrix(problem, candidate)
            for spec in specs:
                pairs.append((spec, matrix.vector_for(spec.name)))
        outcome = cost_model.cost_many(pairs, engine=self.engine)
        budget.add(outcome.fresh)
        best_move = None
        best_cost = current_cost
        n = len(specs)
        for j, candidate in enumerate(candidates):
            total = sum(outcome.costs[j * n:(j + 1) * n])
            if total < best_cost - 1e-12:
                best_cost = total
                best_move = candidate
        budget.exhausted()
        return best_move, best_cost


class DynamicProgrammingSearch(SearchAlgorithm):
    """Exact DP over workloads with a remaining-units state vector."""

    name = "dynamic-programming"

    def _search(self, problem: VirtualizationDesignProblem,
                cost_model: CostModel) -> SearchResult:
        names = problem.workload_names()
        n = len(names)
        resources = list(problem.controlled_resources)
        budget = self._budget()
        memo: Dict[Tuple[int, Tuple[int, ...]], Tuple[float, Optional[tuple]]] = {}
        #: Per-(workload, choice) option costs — the DP's own view of the
        #: cost surface, filled in budget-capped batches when an engine
        #: is attached, one singleton batch at a time otherwise.
        local: Dict[Tuple[int, Tuple[int, ...]], float] = {}

        min_units = [self._min_units(problem, kind) for kind in resources]

        def options(i: int, remaining: Tuple[int, ...]) -> Iterable[Tuple[int, ...]]:
            """Feasible unit choices for workload *i* given what's left."""
            left_after = n - i - 1  # workloads still to serve
            ranges = []
            for r, rem in enumerate(remaining):
                # Leave each downstream workload its feasible minimum.
                high = rem - left_after * min_units[r]
                if high < min_units[r]:
                    return
                if i == n - 1:
                    ranges.append([rem])  # last workload takes the rest
                else:
                    ranges.append(list(range(min_units[r], high + 1)))
            yield from itertools.product(*ranges)

        def pair_for(i: int, choice: Tuple[int, ...]):
            units = {kind: choice[r] for r, kind in enumerate(resources)}
            return (problem.spec(names[i]),
                    self._vector(problem, names[i], units))

        def fill_local(i: int, choices: List[Tuple[int, ...]]) -> None:
            """Cost this state's uncached options in capped batches.

            Fills ``local`` as a prefix of the option order, so a budget
            trip mid-state leaves exactly the options the serial path
            would have seen.
            """
            missing = [choice for choice in choices
                       if (i, choice) not in local]
            pos = 0
            while pos < len(missing) and not budget.exhausted():
                cap = budget.cap(BATCH_TARGET)
                part = missing[pos:pos + cap]
                pos += len(part)
                outcome = cost_model.cost_many(
                    [pair_for(i, choice) for choice in part],
                    engine=self.engine)
                budget.add(outcome.fresh)
                for choice, value in zip(part, outcome.costs):
                    local[(i, choice)] = value

        def solve(i: int, remaining: Tuple[int, ...]) -> Tuple[float, Optional[tuple]]:
            if i == n:
                return (0.0, None) if all(r == 0 for r in remaining) else (float("inf"), None)
            key = (i, remaining)
            if key in memo:
                return memo[key]
            best = (float("inf"), None)
            choices = list(options(i, remaining))
            if self.engine is not None:
                fill_local(i, choices)
            for choice in choices:
                if self.engine is None:
                    if budget.exhausted():
                        break  # keep whatever this state has seen so far
                    if (i, choice) not in local:
                        outcome = cost_model.cost_many(
                            [pair_for(i, choice)], engine=self.engine)
                        budget.add(outcome.fresh)
                        local[(i, choice)] = outcome.costs[0]
                elif (i, choice) not in local:
                    break  # budget tripped before this option was costed
                here = local[(i, choice)]
                rest, _ = solve(
                    i + 1,
                    tuple(rem - c for rem, c in zip(remaining, choice)),
                )
                total = here + rest
                if total < best[0]:
                    best = (total, choice)
            memo[key] = best
            return best

        start = tuple(self.grid for _ in resources)
        total_cost, _ = solve(0, start)
        if total_cost == float("inf"):
            if budget.stopped:
                # The budget tripped before any complete solution was
                # assembled; degrade to the equal-share starting point.
                return self._finish(problem, cost_model,
                                    self._equal_units(problem),
                                    budget, stopped=True)
            raise AllocationError("no feasible allocation for this grid")

        # Reconstruct the chosen allocation.
        units_by_name: Dict[str, Dict[ResourceKind, int]] = {}
        remaining = start
        for i, name in enumerate(names):
            _cost, choice = solve(i, remaining)
            assert choice is not None
            units_by_name[name] = {
                kind: choice[r] for r, kind in enumerate(resources)
            }
            remaining = tuple(rem - c for rem, c in zip(remaining, choice))

        return self._finish(problem, cost_model, units_by_name,
                            budget, stopped=budget.stopped)


ALGORITHMS = {
    ExhaustiveSearch.name: ExhaustiveSearch,
    GreedySearch.name: GreedySearch,
    DynamicProgrammingSearch.name: DynamicProgrammingSearch,
}


def make_algorithm(name: str, grid: int,
                   max_evaluations: Optional[int] = None,
                   deadline_seconds: Optional[float] = None,
                   engine: Optional["EvaluationEngine"] = None,
                   continuous: bool = False,
                   fine_factor: int = 8) -> SearchAlgorithm:
    """Instantiate a search algorithm by name."""
    try:
        return ALGORITHMS[name](grid=grid, max_evaluations=max_evaluations,
                                deadline_seconds=deadline_seconds,
                                engine=engine, continuous=continuous,
                                fine_factor=fine_factor)
    except KeyError:
        raise AllocationError(
            f"unknown search algorithm {name!r}; available: {sorted(ALGORITHMS)}"
        ) from None
