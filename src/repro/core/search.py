"""Combinatorial search over resource allocations (paper, Section 3).

Overview
--------
The paper anticipates that "any standard combinatorial search algorithm
such as greedy search or dynamic programming" applies once the cost
model exists. This module provides three, all operating on a shared
discretization (each controlled resource split into ``grid`` units,
every workload receiving at least one unit):

* :class:`ExhaustiveSearch` — enumerate every full allocation; the
  oracle for solution quality.
* :class:`GreedySearch` — start from equal shares and repeatedly move
  the single unit whose transfer most reduces total cost. Fast, can
  stop in a local minimum.
* :class:`DynamicProgrammingSearch` — exact for this separable
  objective: workloads are considered one at a time against the vector
  of remaining units per resource.

Accounting
----------
Because ``Cost(W_i, R_i)`` is separable, all three report both the
chosen matrix and how many distinct cost-model evaluations they used —
the currency that matters when each evaluation is an optimizer call (or
worse, a measured run). ``SearchResult.evaluations`` counts *uncached*
evaluations spent by this search (deltas of
``CostModel.evaluations``).

Budgets
-------
A degraded cost model (one falling back to fresh calibrations, or
retrying a faulty environment) can make each evaluation arbitrarily
expensive, and an unbounded search would hang the designer. Every
algorithm therefore accepts an optional evaluation budget
(``max_evaluations``) and host-time deadline (``deadline_seconds``).
When either trips, the search stops early and returns the best
allocation found so far (the dynamic program falls back to equal
shares when it has no complete solution yet); ``SearchResult.stopped``
records that, and the ``search.budget_stops`` counter (labelled
``algorithm=<name>``) makes it visible in run reports.

Observability
-------------
Each run opens a ``search`` span tagged with the algorithm and grid and
increments the ``search.runs`` and ``search.evaluations`` counters
(labelled ``algorithm=<name>``), so a :class:`repro.obs.report.RunReport`
can break evaluation spend down per algorithm. The counters agree with
``SearchResult.evaluations`` by construction.

API
---
Use :func:`make_algorithm` (or the ``ALGORITHMS`` mapping) to construct
an algorithm by name, then ``algorithm.search(problem, cost_model)``.
"""

from __future__ import annotations

import itertools
import math
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.cost_model import CostModel
from repro.obs import metrics
from repro.obs.spans import span
from repro.core.problem import AllocationMatrix, VirtualizationDesignProblem
from repro.util.errors import AllocationError
from repro.virt.resources import ALL_RESOURCES, ResourceKind, ResourceVector
from repro.virt.vm import MIN_GUEST_MEMORY_MIB


@dataclass
class SearchResult:
    """Outcome of one search."""

    algorithm: str
    allocation: AllocationMatrix
    total_cost: float
    per_workload_costs: Dict[str, float] = field(default_factory=dict)
    evaluations: int = 0
    #: True when the search stopped early on its evaluation budget or
    #: deadline; the allocation is then best-so-far, not exhaustive.
    stopped: bool = False


class _Budget:
    """Tracks one search's evaluation/deadline budget."""

    def __init__(self, algorithm: str, cost_model: CostModel,
                 max_evaluations: Optional[int],
                 deadline_seconds: Optional[float]):
        self._algorithm = algorithm
        self._cost_model = cost_model
        self._start_evaluations = cost_model.evaluations
        self._max_evaluations = max_evaluations
        self._deadline_seconds = deadline_seconds
        self._started = time.monotonic()
        self.stopped = False

    def exhausted(self) -> bool:
        """Whether the budget has tripped (counts the first trip)."""
        if self.stopped:
            return True
        spent = self._cost_model.evaluations - self._start_evaluations
        if (self._max_evaluations is not None
                and spent >= self._max_evaluations):
            self._trip()
        elif (self._deadline_seconds is not None
                and time.monotonic() - self._started >= self._deadline_seconds):
            self._trip()
        return self.stopped

    def _trip(self) -> None:
        self.stopped = True
        metrics.counter("search.budget_stops",
                        algorithm=self._algorithm).inc()


def compositions(total: int, parts: int, minimum: int = 1) -> Iterator[Tuple[int, ...]]:
    """All ways to split *total* units into *parts* parts, each >= minimum."""
    if parts <= 0:
        raise AllocationError("parts must be positive")
    spare = total - parts * minimum
    if spare < 0:
        return
    if parts == 1:
        yield (total,)
        return
    for first in range(minimum, total - minimum * (parts - 1) + 1):
        for rest in compositions(total - first, parts - 1, minimum):
            yield (first,) + rest


class SearchAlgorithm(ABC):
    """Base class for allocation searches."""

    name = "base"

    def __init__(self, grid: int = 4,
                 max_evaluations: Optional[int] = None,
                 deadline_seconds: Optional[float] = None):
        if grid < 1:
            raise AllocationError("grid must be at least 1")
        if max_evaluations is not None and max_evaluations < 1:
            raise AllocationError("max_evaluations must be at least 1")
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise AllocationError("deadline_seconds must be positive")
        self.grid = grid
        self.max_evaluations = max_evaluations
        self.deadline_seconds = deadline_seconds

    def search(self, problem: VirtualizationDesignProblem,
               cost_model: CostModel) -> SearchResult:
        """Find a (locally) optimal allocation matrix.

        Template method: opens a ``search`` span tagged with the
        algorithm and grid, then delegates to :meth:`_search`.
        """
        with span("search", algorithm=self.name, grid=str(self.grid)):
            return self._search(problem, cost_model)

    @abstractmethod
    def _search(self, problem: VirtualizationDesignProblem,
                cost_model: CostModel) -> SearchResult:
        """The algorithm body; must end via :meth:`_finish`."""

    # -- shared helpers -----------------------------------------------------

    def _min_units(self, problem: VirtualizationDesignProblem,
                   kind: ResourceKind) -> int:
        """Smallest grid allotment a workload may receive for *kind*.

        One unit by default; for memory the floor is raised so every
        candidate VM can actually boot (the hypervisor refuses guests
        below :data:`MIN_GUEST_MEMORY_MIB`) — the search must never
        probe allocations that are physically inadmissible.
        """
        if kind is ResourceKind.MEMORY:
            min_share = MIN_GUEST_MEMORY_MIB / problem.machine.memory_mib
            return max(1, math.ceil(min_share * self.grid - 1e-9))
        return 1

    def _vector(self, problem: VirtualizationDesignProblem, name: str,
                units: Dict[ResourceKind, int]) -> ResourceVector:
        """Share vector from controlled units plus fixed shares."""
        shares = {}
        for kind in ALL_RESOURCES:
            if kind in problem.controlled_resources:
                shares[kind] = units[kind] / self.grid
            else:
                shares[kind] = problem.fixed_share_for(kind, name)
        return ResourceVector(shares)

    def _matrix(self, problem: VirtualizationDesignProblem,
                units_by_name: Dict[str, Dict[ResourceKind, int]]) -> AllocationMatrix:
        return AllocationMatrix({
            name: self._vector(problem, name, units)
            for name, units in units_by_name.items()
        })

    def _evaluate(self, problem: VirtualizationDesignProblem,
                  cost_model: CostModel,
                  matrix: AllocationMatrix) -> Tuple[float, Dict[str, float]]:
        per_workload = {}
        for spec in problem.specs:
            per_workload[spec.name] = cost_model.cost(
                spec, matrix.vector_for(spec.name)
            )
        return sum(per_workload.values()), per_workload

    def _equal_units(self, problem: VirtualizationDesignProblem
                     ) -> Dict[str, Dict[ResourceKind, int]]:
        """Start point: units split as evenly as the grid allows."""
        n = problem.n_workloads
        if self.grid < n:
            raise AllocationError(
                f"grid {self.grid} too coarse for {n} workloads "
                f"(each needs at least one unit)"
            )
        base, remainder = divmod(self.grid, n)
        units_by_name: Dict[str, Dict[ResourceKind, int]] = {}
        for i, spec in enumerate(problem.specs):
            per_kind = {}
            for kind in problem.controlled_resources:
                per_kind[kind] = base + (1 if i < remainder else 0)
            units_by_name[spec.name] = per_kind
        for kind in problem.controlled_resources:
            needed = self._min_units(problem, kind) * n
            if needed > self.grid:
                raise AllocationError(
                    f"grid {self.grid} cannot give {n} workloads the "
                    f"minimum feasible {kind} allotment"
                )
        return units_by_name

    def _budget(self, cost_model: CostModel) -> _Budget:
        return _Budget(self.name, cost_model, self.max_evaluations,
                       self.deadline_seconds)

    def _finish(self, problem: VirtualizationDesignProblem,
                cost_model: CostModel,
                units_by_name: Dict[str, Dict[ResourceKind, int]],
                evaluations: int, stopped: bool = False) -> SearchResult:
        matrix = self._matrix(problem, units_by_name)
        total, per_workload = self._evaluate(problem, cost_model, matrix)
        metrics.counter("search.runs", algorithm=self.name).inc()
        metrics.counter("search.evaluations", algorithm=self.name).inc(evaluations)
        return SearchResult(
            algorithm=self.name, allocation=matrix, total_cost=total,
            per_workload_costs=per_workload, evaluations=evaluations,
            stopped=stopped,
        )


class ExhaustiveSearch(SearchAlgorithm):
    """Enumerate every full allocation of the grid; the oracle."""

    name = "exhaustive"

    def _search(self, problem: VirtualizationDesignProblem,
                cost_model: CostModel) -> SearchResult:
        names = problem.workload_names()
        n = len(names)
        resources = list(problem.controlled_resources)
        before = cost_model.evaluations
        budget = self._budget(cost_model)

        best_units: Optional[Dict[str, Dict[ResourceKind, int]]] = None
        best_cost = float("inf")
        splits_per_resource = [
            list(compositions(self.grid, n,
                              minimum=self._min_units(problem, kind)))
            for kind in resources
        ]
        for combo in itertools.product(*splits_per_resource):
            units_by_name = {
                name: {kind: combo[r][i] for r, kind in enumerate(resources)}
                for i, name in enumerate(names)
            }
            matrix = self._matrix(problem, units_by_name)
            total, _per = self._evaluate(problem, cost_model, matrix)
            if total < best_cost:
                best_cost = total
                best_units = units_by_name
            # Checked after evaluating, so even an instantly exhausted
            # budget still yields one feasible candidate.
            if budget.exhausted():
                break
        if best_units is None:
            raise AllocationError("no feasible allocation for this grid")
        result = self._finish(problem, cost_model, best_units,
                              cost_model.evaluations - before,
                              stopped=budget.stopped)
        return result


class GreedySearch(SearchAlgorithm):
    """Hill climbing by single-unit transfers, starting from equal shares."""

    name = "greedy"

    def _search(self, problem: VirtualizationDesignProblem,
                cost_model: CostModel) -> SearchResult:
        names = problem.workload_names()
        before = cost_model.evaluations
        budget = self._budget(cost_model)
        units_by_name = self._equal_units(problem)

        matrix = self._matrix(problem, units_by_name)
        current_cost, _ = self._evaluate(problem, cost_model, matrix)

        improved = True
        while improved and not budget.exhausted():
            improved = False
            best_move = None
            best_cost = current_cost
            for kind in problem.controlled_resources:
                min_units = self._min_units(problem, kind)
                for donor in names:
                    if units_by_name[donor][kind] <= min_units:
                        continue
                    for recipient in names:
                        if recipient == donor:
                            continue
                        candidate = {
                            name: dict(units) for name, units in units_by_name.items()
                        }
                        candidate[donor][kind] -= 1
                        candidate[recipient][kind] += 1
                        total, _ = self._evaluate(
                            problem, cost_model, self._matrix(problem, candidate)
                        )
                        if total < best_cost - 1e-12:
                            best_cost = total
                            best_move = candidate
                        if budget.exhausted():
                            break
                    if budget.stopped:
                        break
                if budget.stopped:
                    break
            if best_move is not None:
                units_by_name = best_move
                current_cost = best_cost
                improved = True

        return self._finish(problem, cost_model, units_by_name,
                            cost_model.evaluations - before,
                            stopped=budget.stopped)


class DynamicProgrammingSearch(SearchAlgorithm):
    """Exact DP over workloads with a remaining-units state vector."""

    name = "dynamic-programming"

    def _search(self, problem: VirtualizationDesignProblem,
                cost_model: CostModel) -> SearchResult:
        names = problem.workload_names()
        n = len(names)
        resources = list(problem.controlled_resources)
        before = cost_model.evaluations
        budget = self._budget(cost_model)
        memo: Dict[Tuple[int, Tuple[int, ...]], Tuple[float, Optional[tuple]]] = {}

        min_units = [self._min_units(problem, kind) for kind in resources]

        def options(i: int, remaining: Tuple[int, ...]) -> Iterable[Tuple[int, ...]]:
            """Feasible unit choices for workload *i* given what's left."""
            left_after = n - i - 1  # workloads still to serve
            ranges = []
            for r, rem in enumerate(remaining):
                # Leave each downstream workload its feasible minimum.
                high = rem - left_after * min_units[r]
                if high < min_units[r]:
                    return
                if i == n - 1:
                    ranges.append([rem])  # last workload takes the rest
                else:
                    ranges.append(list(range(min_units[r], high + 1)))
            yield from itertools.product(*ranges)

        def solve(i: int, remaining: Tuple[int, ...]) -> Tuple[float, Optional[tuple]]:
            if i == n:
                return (0.0, None) if all(r == 0 for r in remaining) else (float("inf"), None)
            key = (i, remaining)
            if key in memo:
                return memo[key]
            spec = problem.spec(names[i])
            best = (float("inf"), None)
            for choice in options(i, remaining):
                if budget.exhausted():
                    break  # keep whatever this state has seen so far
                units = {kind: choice[r] for r, kind in enumerate(resources)}
                vector = self._vector(problem, names[i], units)
                here = cost_model.cost(spec, vector)
                rest, _ = solve(
                    i + 1,
                    tuple(rem - c for rem, c in zip(remaining, choice)),
                )
                total = here + rest
                if total < best[0]:
                    best = (total, choice)
            memo[key] = best
            return best

        start = tuple(self.grid for _ in resources)
        total_cost, _ = solve(0, start)
        if total_cost == float("inf"):
            if budget.stopped:
                # The budget tripped before any complete solution was
                # assembled; degrade to the equal-share starting point.
                return self._finish(problem, cost_model,
                                    self._equal_units(problem),
                                    cost_model.evaluations - before,
                                    stopped=True)
            raise AllocationError("no feasible allocation for this grid")

        # Reconstruct the chosen allocation.
        units_by_name: Dict[str, Dict[ResourceKind, int]] = {}
        remaining = start
        for i, name in enumerate(names):
            _cost, choice = solve(i, remaining)
            assert choice is not None
            units_by_name[name] = {
                kind: choice[r] for r, kind in enumerate(resources)
            }
            remaining = tuple(rem - c for rem, c in zip(remaining, choice))

        return self._finish(problem, cost_model, units_by_name,
                            cost_model.evaluations - before,
                            stopped=budget.stopped)


ALGORITHMS = {
    ExhaustiveSearch.name: ExhaustiveSearch,
    GreedySearch.name: GreedySearch,
    DynamicProgrammingSearch.name: DynamicProgrammingSearch,
}


def make_algorithm(name: str, grid: int,
                   max_evaluations: Optional[int] = None,
                   deadline_seconds: Optional[float] = None) -> SearchAlgorithm:
    """Instantiate a search algorithm by name."""
    try:
        return ALGORITHMS[name](grid=grid, max_evaluations=max_evaluations,
                                deadline_seconds=deadline_seconds)
    except KeyError:
        raise AllocationError(
            f"unknown search algorithm {name!r}; available: {sorted(ALGORITHMS)}"
        ) from None
