"""Workload placement across multiple physical machines.

The paper studies one consolidated host; real consolidation projects
(and the dynamic-placement literature the paper cites) have a fleet.
This extension composes the single-host virtualization designer into a
placement search: choose *which machine each workload runs on* and the
shares within every machine, minimizing the summed estimated cost.

Algorithm: greedy seeding (workloads in decreasing dedicated-cost
order, each placed where it raises the fleet cost least) followed by
single-workload relocation until no move improves the total. Every
machine's share division is re-solved by the single-host designer
whenever its tenant set changes, so placement and allocation are
optimized together rather than in separate phases.

Costs are per-machine: each host has its own calibration, so the same
workload can cost differently on different hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.cost_model import CostModel
from repro.core.designer import Design, VirtualizationDesigner
from repro.core.problem import VirtualizationDesignProblem, WorkloadSpec
from repro.util.errors import AllocationError
from repro.virt.machine import PhysicalMachine
from repro.virt.monitor import VirtualMachineMonitor
from repro.virt.resources import ResourceKind

#: Relocation rounds are capped; each round tries every (workload,
#: machine) move, so convergence is fast in practice.
MAX_IMPROVEMENT_ROUNDS = 10


@dataclass
class PlacementResult:
    """A fleet placement plus the per-machine designs."""

    assignment: Dict[str, str]            # workload name -> machine name
    designs: Dict[str, Optional[Design]]  # machine name -> design (None if empty)
    total_cost: float

    def machine_for(self, workload_name: str) -> str:
        return self.assignment[workload_name]

    def summary(self) -> str:
        lines = [f"Placement (total estimated cost {self.total_cost:.3f}s)"]
        for machine_name in sorted(self.designs):
            design = self.designs[machine_name]
            if design is None:
                lines.append(f"  {machine_name}: (idle)")
                continue
            tenants = ", ".join(
                f"{name}(cpu={design.allocation.vector_for(name).cpu:.0%})"
                for name in design.allocation.workload_names()
            )
            lines.append(
                f"  {machine_name}: {tenants} "
                f"-> {design.predicted_total_cost:.3f}s"
            )
        return "\n".join(lines)


class PlacementDesigner:
    """Places workloads on machines and divides each machine's resources."""

    def __init__(self, machines: Sequence[PhysicalMachine],
                 specs: Sequence[WorkloadSpec],
                 cost_model_for: Callable[[PhysicalMachine], CostModel],
                 controlled_resources: Tuple[ResourceKind, ...] = (
                     ResourceKind.CPU,),
                 algorithm: str = "exhaustive", grid: int = 4):
        if not machines:
            raise AllocationError("placement needs at least one machine")
        if not specs:
            raise AllocationError("placement needs at least one workload")
        names = [machine.name for machine in machines]
        if len(set(names)) != len(names):
            raise AllocationError("duplicate machine names")
        self._machines = {machine.name: machine for machine in machines}
        self._specs = list(specs)
        self._cost_models = {
            machine.name: cost_model_for(machine) for machine in machines
        }
        self._controlled = controlled_resources
        self._algorithm = algorithm
        self._grid = grid
        self._design_cache: Dict[Tuple[str, frozenset], Optional[Design]] = {}

    # -- machine-level design -------------------------------------------------

    def _design_machine(self, machine_name: str,
                        tenant_names: frozenset) -> Optional[Design]:
        """The best share division for one machine's tenant set (cached)."""
        key = (machine_name, tenant_names)
        if key in self._design_cache:
            return self._design_cache[key]
        design: Optional[Design] = None
        if tenant_names:
            specs = [spec for spec in self._specs if spec.name in tenant_names]
            problem = VirtualizationDesignProblem(
                machine=self._machines[machine_name], specs=specs,
                controlled_resources=self._controlled,
            )
            designer = VirtualizationDesigner(
                problem, self._cost_models[machine_name]
            )
            design = designer.design(self._algorithm, grid=self._grid)
        self._design_cache[key] = design
        return design

    def _fleet_cost(self, assignment: Dict[str, str]) -> Tuple[float, Dict[str, Optional[Design]]]:
        designs: Dict[str, Optional[Design]] = {}
        total = 0.0
        for machine_name in self._machines:
            tenants = frozenset(
                name for name, placed in assignment.items()
                if placed == machine_name
            )
            design = self._design_machine(machine_name, tenants)
            designs[machine_name] = design
            if design is not None:
                total += design.predicted_total_cost
        return total, designs

    # -- the search -------------------------------------------------------------

    def place(self) -> PlacementResult:
        """Greedy seeding plus relocation until no move improves."""
        # Seed order: most expensive workloads first (judged dedicated,
        # i.e. alone on the first machine).
        dedicated_cost = {}
        reference = next(iter(self._machines))
        for spec in self._specs:
            design = self._design_machine(reference, frozenset([spec.name]))
            assert design is not None
            dedicated_cost[spec.name] = design.predicted_total_cost
        order = sorted(dedicated_cost, key=dedicated_cost.get, reverse=True)

        assignment: Dict[str, str] = {}
        for workload_name in order:
            best_machine = None
            best_total = float("inf")
            for machine_name in self._machines:
                candidate = dict(assignment)
                candidate[workload_name] = machine_name
                total, _designs = self._fleet_cost(candidate)
                if total < best_total:
                    best_total = total
                    best_machine = machine_name
            assert best_machine is not None
            assignment[workload_name] = best_machine

        # Local improvement: single-workload relocations plus pairwise
        # swaps. Swaps matter: moving one tenant of a complementary
        # pair alone overloads its target, so relocation-only search
        # stalls in mixed local optima that a swap escapes.
        current_total, _ = self._fleet_cost(assignment)
        for _round in range(MAX_IMPROVEMENT_ROUNDS):
            best_candidate: Optional[Dict[str, str]] = None
            best_total = current_total
            candidates: List[Dict[str, str]] = []
            for spec in self._specs:
                for machine_name in self._machines:
                    if assignment[spec.name] == machine_name:
                        continue
                    candidate = dict(assignment)
                    candidate[spec.name] = machine_name
                    candidates.append(candidate)
            for i, first in enumerate(self._specs):
                for second in self._specs[i + 1:]:
                    if assignment[first.name] == assignment[second.name]:
                        continue
                    candidate = dict(assignment)
                    candidate[first.name] = assignment[second.name]
                    candidate[second.name] = assignment[first.name]
                    candidates.append(candidate)
            for candidate in candidates:
                total, _designs = self._fleet_cost(candidate)
                if total < best_total - 1e-12:
                    best_total = total
                    best_candidate = candidate
            if best_candidate is None:
                break
            assignment = best_candidate
            current_total = best_total

        total, designs = self._fleet_cost(assignment)
        return PlacementResult(assignment=assignment, designs=designs,
                               total_cost=total)

    # -- deployment ---------------------------------------------------------------

    def apply(self, vmm: VirtualMachineMonitor,
              result: PlacementResult) -> None:
        """Create one VM per workload on its assigned machine."""
        for spec in self._specs:
            machine_name = result.assignment[spec.name]
            design = result.designs[machine_name]
            assert design is not None
            vm = vmm.create_vm(
                spec.name, design.allocation.vector_for(spec.name),
                machine_name=machine_name,
            )
            vm.attach_guest(spec.database)
            vm.start()
