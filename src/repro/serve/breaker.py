"""Circuit breaker around the calibration path.

The serve degradation ladder's fresh tier re-measures knots through the
:class:`~repro.calibration.runner.CalibrationRunner`. Under a hostile
fault plan those measurements fail in bursts; retrying a dead
calibration backend on every design request would burn each request's
deadline budget for nothing. The breaker implements the classic three
states:

* **closed** — calibrations flow; consecutive *transient-rooted*
  failures are counted (a permanent :class:`CalibrationError` whose
  ``__cause__`` is a :class:`~repro.util.errors.MeasurementFault`, i.e.
  the retry budget was exhausted by transient faults — the PR 2
  contract makes this answerable from the exception alone). After
  ``trip_after`` consecutive failures the breaker opens.
* **open** — calibrations are refused without being attempted; the
  ladder steps straight down to the warm tier. The cooldown reuses
  PR 2's :meth:`~repro.faults.RetryPolicy.backoff_seconds` schedule on
  the *simulated* clock: each successive trip backs off exponentially,
  capped at the policy's maximum.
* **half-open** — after the cooldown one probe calibration is allowed
  through. Success closes the breaker and resets the failure count;
  failure re-opens it with a longer cooldown.

State transitions are a pure function of the (deterministic) failure
sequence and the simulated clock, so breaker behaviour replays
bit-identically on resume.
"""

from __future__ import annotations

from typing import Optional

from repro.faults import RetryPolicy
from repro.obs import metrics

#: Consecutive transient-rooted failures before the breaker opens.
DEFAULT_TRIP_AFTER = 3


class CircuitBreaker:
    """Trip-after-N / exponential-cooldown / single-probe breaker."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, trip_after: int = DEFAULT_TRIP_AFTER,
                 retry_policy: Optional[RetryPolicy] = None):
        self._trip_after = max(1, int(trip_after))
        self._policy = retry_policy or RetryPolicy.resilient()
        self._failures = 0          # consecutive, while closed/half-open
        self._trips = 0             # total trips (drives the cooldown)
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def trips(self) -> int:
        return self._trips

    def state(self, now: float) -> str:
        if self._opened_at is None:
            return self.CLOSED
        if now - self._opened_at >= self._cooldown():
            return self.HALF_OPEN
        return self.OPEN

    def _cooldown(self) -> float:
        # Trip n maps to the retry policy's n-th backoff step: 0.1s,
        # 0.2s, 0.4s, ... capped at max_backoff_seconds.
        return self._policy.backoff_seconds(self._trips)

    def allow(self, now: float) -> bool:
        """May a calibration be attempted at *now*?

        In the half-open state only one probe is allowed until its
        outcome is recorded; concurrent requests during the probe are
        refused (they degrade to the warm tier).
        """
        state = self.state(now)
        if state == self.CLOSED:
            return True
        if state == self.HALF_OPEN and not self._probing:
            self._probing = True
            metrics.counter("serve.breaker", event="probe").inc()
            return True
        return False

    def record_success(self) -> None:
        """A calibration (or the half-open probe) succeeded."""
        if self._opened_at is not None:
            metrics.counter("serve.breaker", event="close").inc()
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self, now: float, transient: bool) -> None:
        """A calibration failed; *transient* per the PR 2 contract.

        Permanent failures (ill-conditioned systems, degenerate
        allocations) do not indicate a sick backend and never trip the
        breaker — only transient-rooted exhaustion does.
        """
        if not transient:
            return
        if self._probing:
            # Failed probe: re-open with a longer cooldown.
            self._probing = False
            self._trips += 1
            self._opened_at = now
            metrics.counter("serve.breaker", event="trip").inc()
            return
        self._failures += 1
        if self._opened_at is None and self._failures >= self._trip_after:
            self._trips += 1
            self._opened_at = now
            self._failures = 0
            metrics.counter("serve.breaker", event="trip").inc()
