"""repro.serve — the always-on design service (``docs/serve.md``).

A long-lived asyncio daemon (``repro serve``) holding warm
:class:`~repro.surrogate.ParameterSurface` fits, the journal-backed v3
:class:`~repro.calibration.cache.CalibrationCache`, and workload
statistics in shared immutable-once-fit state, answering concurrent
what-if and design requests with:

* admission control and backpressure — bounded queue, per-tenant token
  buckets, typed ``Overloaded`` sheds, what-if batching through
  ``CostModel.cost_many``;
* deadlines and a degradation ladder — fresh search → warm-start from
  the incumbent → serve-stale from the clamped surrogate → typed
  refusal, with a circuit breaker around the calibration path;
* incremental re-design — workload deltas warm-start from the
  incumbent allocation and reuse every valid cached calibration;
* crash safety — state journals through ``BudgetedJournal``;
  kill→restart resumes bit-identically.
"""

from repro.serve.breaker import CircuitBreaker
from repro.serve.clock import SimulatedClock
from repro.serve.daemon import ServeDaemon
from repro.serve.quota import TenantQuotas, TokenBucket
from repro.serve.requests import (
    ANSWERED,
    DEGRADED,
    REJECTED,
    DesignRequest,
    ServeResponse,
    WhatIfRequest,
)
from repro.serve.service import DesignService, ServeConfig
from repro.serve.supervisor import ServeRun, ServeSupervisor, SessionStats
from repro.serve.trace import ServeScenario, generate_trace

__all__ = [
    "ANSWERED",
    "DEGRADED",
    "REJECTED",
    "CircuitBreaker",
    "DesignRequest",
    "DesignService",
    "ServeConfig",
    "ServeDaemon",
    "ServeRun",
    "ServeScenario",
    "ServeSupervisor",
    "ServeResponse",
    "SessionStats",
    "SimulatedClock",
    "TenantQuotas",
    "TokenBucket",
    "WhatIfRequest",
    "generate_trace",
]
