"""Seeded open-loop request traces for the design service.

An *open-loop* load generator emits requests at arrival times drawn
independently of the service's progress — the honest way to measure
tail latency and shedding, because a slow service cannot slow the
offered load down (closed-loop generators hide overload by backing
off). The whole trace is a pure function of a :class:`ServeScenario`
(seed included) and the problem's workload catalog, so a resumed
session regenerates bit-identically the same arrivals, tenants,
allocations, deltas, and deadlines — the foundation of the serve
kill→restart equivalence tests.

Composition: mostly what-ifs over a small lattice of allocations (the
repetition feeds the batching dedup), a design request every
``design_every``-th request (workload-delta repeats drawn per request),
tenants skewed by a Zipf draw so one hot tenant exercises the quota
path, and a deliberate mix of tight and generous deadlines so every
rung of the degradation ladder is visited.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Sequence, Union

from repro.serve.requests import DesignRequest, WhatIfRequest
from repro.util.errors import ServeError
from repro.util.rng import DeterministicRng

#: What-if allocation share levels the generator samples (eighths, plus
#: two out-of-hull extremes that force clamped — degraded — answers).
SHARE_LEVELS = (0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875)
EXTREME_LEVELS = (0.02, 0.98)


@dataclass(frozen=True)
class ServeScenario:
    """Everything that determines a serving session's request trace."""

    seed: int = 7
    #: Total requests in the session.
    requests: int = 120
    #: Mean offered load, requests per simulated second.
    rate: float = 40.0
    #: Distinct tenants; draws are Zipf-skewed toward tenant-1.
    tenants: int = 4
    tenant_skew: float = 1.2
    #: Every n-th request is a design request.
    design_every: int = 25
    #: Base deadline budgets (simulated seconds).
    whatif_deadline: float = 1.0
    design_deadline: float = 30.0
    #: Fraction of requests carrying a 4x-tighter deadline.
    tight_fraction: float = 0.25
    #: Workload-delta repeat counts are drawn from [0, max_repeats]
    #: (0 removes the workload).
    max_repeats: int = 4

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServeScenario":
        return cls(**data)


def generate_trace(scenario: ServeScenario, workload_names: Sequence[str],
                   ) -> List[Union[WhatIfRequest, DesignRequest]]:
    """The deterministic request trace for *scenario*.

    *workload_names* is the service's immutable catalog (what-ifs and
    deltas only ever name catalog workloads, even ones a prior delta
    removed — the service answers those with a typed refusal).
    """
    if scenario.requests < 1:
        raise ServeError("a serve scenario needs at least one request")
    if scenario.rate <= 0:
        raise ServeError(f"bad arrival rate {scenario.rate}")
    names = sorted(workload_names)
    if not names:
        raise ServeError("a serve scenario needs at least one workload")
    rng = DeterministicRng(scenario.seed).fork("serve-trace")
    arrivals = rng.fork("arrivals")
    tenants = rng.fork("tenants")
    shapes = rng.fork("shapes")
    deadlines = rng.fork("deadlines")

    trace: List[Union[WhatIfRequest, DesignRequest]] = []
    now = 0.0
    designs = 0
    for index in range(scenario.requests):
        now += arrivals.uniform(0.0, 2.0 / scenario.rate)
        tenant = f"tenant-{tenants.zipf_index(scenario.tenants, scenario.tenant_skew) + 1}"
        tight = deadlines.uniform(0.0, 1.0) < scenario.tight_fraction
        if (index + 1) % scenario.design_every == 0:
            designs += 1
            name = shapes.choice(names)
            delta = {name: shapes.randint(0, scenario.max_repeats)}
            deadline = scenario.design_deadline * (0.25 if tight else 1.0)
            trace.append(DesignRequest(
                tenant=tenant, delta=delta,
                prefer_fresh=(designs % 2 == 1),
                arrival=round(now, 6),
                deadline_seconds=deadline))
        else:
            name = shapes.choice(names)
            if shapes.uniform(0.0, 1.0) < 0.05:
                share = shapes.choice(list(EXTREME_LEVELS))
            else:
                share = shapes.choice(list(SHARE_LEVELS))
            deadline = scenario.whatif_deadline * (0.25 if tight else 1.0)
            trace.append(WhatIfRequest(
                tenant=tenant, workload=name,
                allocation=(share, 0.5, 0.5),
                arrival=round(now, 6),
                deadline_seconds=deadline))
    return trace
