"""Crash-recoverable serving sessions: boot, serve, journal, resume.

:class:`ServeSupervisor` is the serve counterpart of the drift loop's
:class:`~repro.drift.loop.OnlineSupervisor`: one complete serving
session — a continuous-mode boot fit, then a whole open-loop request
trace driven through the daemon — checkpointed unit by unit into a
:class:`~repro.recovery.journal.RunJournal`:

* a ``calibration`` record per knot of the boot fit (appended by the
  :class:`~repro.calibration.cache.CalibrationCache`, exactly as in a
  supervised offline run);
* a ``recalibration`` record per knot the fresh tier re-validated,
  keyed by (design sequence, knot);
* an ``incumbent`` record per committed design-request answer — the
  service's state-changing unit;
* a final ``result`` record.

Everything between journaled units is deterministic arithmetic: the
trace is a pure function of the scenario, admission and batching run
on the simulated clock, searches are pure surrogate arithmetic, and
per-unit fault streams depend only on the plan and the knot. So a
session killed at *any* unit boundary (the ``BudgetedJournal`` crash
point — including mid-batch, between a batch's journaled units) and
resumed produces a bit-identical incumbent trajectory, journal, and
response stream (asserted in ``tests/serve/test_chaos.py``).
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.calibration.cache import CalibrationCache
from repro.calibration.runner import CalibrationRunner
from repro.core.designer import Design
from repro.core.problem import VirtualizationDesignProblem
from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.parallel import make_engine
from repro.recovery.journal import (
    BudgetedJournal,
    RunJournal,
    UnitBudgetExceeded,
)
from repro.serve.breaker import CircuitBreaker
from repro.serve.clock import SimulatedClock
from repro.serve.daemon import ServeDaemon
from repro.serve.requests import ANSWERED, DEGRADED, REJECTED, ServeResponse
from repro.serve.service import DesignService, ServeConfig
from repro.serve.trace import ServeScenario, generate_trace
from repro.surrogate import design_continuous
from repro.surrogate.surface import knot_key
from repro.util.errors import RecoveryError


def quantile(sorted_values: List[float], q: float) -> float:
    """Exact empirical quantile (nearest-rank) of pre-sorted values."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(len(sorted_values), rank) - 1]


@dataclass
class SessionStats:
    """Aggregate accounting over one session's responses."""

    requests: int = 0
    answered: int = 0
    degraded: int = 0
    rejected: int = 0
    #: Load-shedding rejections (queue full + quota), a subset of
    #: ``rejected``.
    shed: int = 0
    by_tier: Dict[str, int] = field(default_factory=dict)
    by_reason: Dict[str, int] = field(default_factory=dict)
    #: Latency percentiles over served (answered + degraded) requests,
    #: simulated seconds.
    p50_seconds: float = 0.0
    p99_seconds: float = 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    @property
    def degraded_fraction(self) -> float:
        served = self.answered + self.degraded
        return self.degraded / served if served else 0.0

    @classmethod
    def from_responses(cls, responses: List[ServeResponse]
                       ) -> "SessionStats":
        stats = cls(requests=len(responses))
        latencies: List[float] = []
        for response in responses:
            if response.status == ANSWERED:
                stats.answered += 1
            elif response.status == DEGRADED:
                stats.degraded += 1
            else:
                stats.rejected += 1
                reason = response.reason or "unknown"
                stats.by_reason[reason] = stats.by_reason.get(reason, 0) + 1
                if reason in ("overloaded", "quota"):
                    stats.shed += 1
            if response.status in (ANSWERED, DEGRADED):
                tier = response.tier or "unknown"
                stats.by_tier[tier] = stats.by_tier.get(tier, 0) + 1
                latencies.append(response.latency_seconds)
        latencies.sort()
        stats.p50_seconds = quantile(latencies, 0.50)
        stats.p99_seconds = quantile(latencies, 0.99)
        return stats

    def as_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "answered": self.answered,
            "degraded": self.degraded,
            "rejected": self.rejected,
            "shed": self.shed,
            "by_tier": dict(sorted(self.by_tier.items())),
            "by_reason": dict(sorted(self.by_reason.items())),
            "p50_seconds": self.p50_seconds,
            "p99_seconds": self.p99_seconds,
        }


@dataclass
class ServeRun:
    """What one :meth:`ServeSupervisor.run` invocation produced."""

    #: The final incumbent design (None when killed during the boot
    #: fit or before any trace processing).
    design: Optional[Design]
    completed: bool = False
    responses: List[ServeResponse] = field(default_factory=list)
    stats: Optional[SessionStats] = None
    #: Design requests committed over the whole session.
    design_seq: int = 0
    breaker_trips: int = 0
    replayed_units: int = 0
    new_units: int = 0
    surface: Any = None


class ServeSupervisor:
    """Drives a crash-recoverable serving session."""

    def __init__(self, problem: VirtualizationDesignProblem,
                 journal_path, plan: Optional[FaultPlan] = None, *,
                 scenario: Optional[ServeScenario] = None,
                 config: Optional[ServeConfig] = None,
                 algorithm: str = "greedy", grid: int = 4,
                 fine_factor: int = 8, surrogate_tol: float = 0.05,
                 surrogate_budget: Optional[int] = 24,
                 retry_policy: Optional[RetryPolicy] = None,
                 max_units: Optional[int] = None,
                 extra_meta: Optional[Dict[str, Any]] = None,
                 workbench=None,
                 workers: Optional[int] = None, pool: str = "thread"):
        self._problem = problem
        self._journal_path = journal_path
        self._plan = plan or FaultPlan(name="none")
        self._scenario = scenario or ServeScenario()
        self._config = config or ServeConfig()
        self._algorithm = algorithm
        self._grid = grid
        self._fine_factor = fine_factor
        self._surrogate_tol = surrogate_tol
        self._surrogate_budget = surrogate_budget
        self._retry_policy = retry_policy or RetryPolicy.resilient()
        self._max_units = max_units
        self._extra_meta = dict(extra_meta or {})
        # Like the other supervisors: workbench and engine shape are
        # not part of the journal identity.
        self._workbench = workbench
        self._workers = workers
        self._pool = pool
        #: Populated by :meth:`run`, for inspection.
        self.cache: Optional[CalibrationCache] = None
        self.service: Optional[DesignService] = None

    # -- run identity ------------------------------------------------------

    def _meta(self) -> Dict[str, Any]:
        plan = self._plan
        meta = {
            "run_kind": "serve",
            "plan": {
                "name": plan.name, "seed": plan.seed,
                "transient_rate": plan.transient_rate,
                "outlier_rate": plan.outlier_rate,
                "hang_rate": plan.hang_rate,
                "boot_failure_rate": plan.boot_failure_rate,
                "vm_crash_rate": plan.vm_crash_rate,
                "host_degrade_rate": plan.host_degrade_rate,
                "host_degrade_factor": plan.host_degrade_factor,
                "migration_failure_rate": plan.migration_failure_rate,
            },
            "scenario": self._scenario.as_dict(),
            "config": self._config.as_dict(),
            "algorithm": self._algorithm,
            "grid": self._grid,
            "machine": self._problem.machine.name,
            "workloads": self._problem.workload_names(),
            "controlled": [str(kind) for kind
                           in self._problem.controlled_resources],
            "workers": self._workers,
            "fine_factor": self._fine_factor,
            "surrogate_tol": self._surrogate_tol,
            "surrogate_budget": self._surrogate_budget,
        }
        meta.update(self._extra_meta)
        return meta

    _IDENTITY_KEYS = ("run_kind", "plan", "scenario", "config",
                      "algorithm", "grid", "machine", "workloads",
                      "controlled", "fine_factor", "surrogate_tol",
                      "surrogate_budget")

    def _check_meta(self, recorded: Dict[str, Any]) -> None:
        expected = self._meta()
        mismatched = sorted(
            key for key in self._IDENTITY_KEYS
            if key in recorded and recorded[key] != expected[key]
        )
        if mismatched:
            raise RecoveryError(
                f"journal {self._journal_path} was written by a different "
                f"run: mismatched {', '.join(mismatched)} (resume must use "
                f"the same problem, plan, scenario, and service config)")

    # -- the run -----------------------------------------------------------

    def run(self, resume: bool = False) -> ServeRun:
        """Execute (or resume) the serving session; see module doc."""
        # Generating the trace is pure and cheap; doing it first means a
        # misconfigured scenario fails fast (typed, exit code 2) before
        # any journal is created or calibration spent.
        trace = generate_trace(self._scenario,
                               self._problem.workload_names())
        if resume:
            journal = RunJournal.open(self._journal_path)
            self._check_meta(journal.meta)
        else:
            journal = RunJournal.create(self._journal_path, self._meta())

        budgeted = BudgetedJournal(journal, self._max_units)
        injector = (None if self._plan.is_benign
                    else FaultInjector(self._plan, per_unit=True))
        engine = make_engine(self._workers, self._pool)
        runner = CalibrationRunner(
            self._problem.machine, workbench=self._workbench,
            injector=injector, retry_policy=self._retry_policy,
            engine=engine)
        cache = CalibrationCache(runner, journal=budgeted)
        self.cache = cache

        replay = self._replay(journal, cache)
        prior_result = self._prior_result(journal)
        run = ServeRun(design=None, replayed_units=replay["units"])

        try:
            outcome = design_continuous(
                self._problem, cache, algorithm=self._algorithm,
                grid=self._grid, fine_factor=self._fine_factor,
                tolerance=self._surrogate_tol,
                max_calibrations=self._surrogate_budget, engine=engine)
            service = DesignService(
                self._problem, outcome.surface, outcome.design,
                config=self._config, clock=SimulatedClock(),
                runner=runner, journal=budgeted, replay=replay,
                engine=engine,
                breaker=CircuitBreaker(self._config.breaker_trip_after,
                                       self._retry_policy))
            service.configure_search(self._algorithm, self._grid,
                                     self._fine_factor)
            self.service = service
            daemon = ServeDaemon(service)
            run.responses = asyncio.run(daemon.run_trace(trace))
        except UnitBudgetExceeded:
            run.new_units = budgeted.new_units
            return run
        finally:
            if engine is not None:
                engine.close()

        run.design = service.incumbent
        run.surface = service.surface
        run.design_seq = service.design_seq
        run.breaker_trips = service.breaker.trips
        run.stats = SessionStats.from_responses(run.responses)
        if prior_result is None:
            journal.append("result", self._result_record(run))
        run.completed = True
        run.new_units = budgeted.new_units
        return run

    # -- replay ------------------------------------------------------------

    @staticmethod
    def _replay(journal: RunJournal, cache: CalibrationCache) -> Dict:
        """Load journaled units into replay maps (and the cache)."""
        from repro.optimizer.params import OptimizerParameters

        replay: Dict[str, Any] = {
            "recalibrations": {},  # (design_seq, knot) -> parameters
            "incumbents": {},      # design_seq -> incumbent record
            "units": 0,
        }
        for record in journal.records:
            data = record.data
            if record.kind == "calibration":
                cache.add_point(
                    tuple(float(v) for v in data["allocation"]),
                    OptimizerParameters.from_dict(data["parameters"]))
            elif record.kind == "recalibration":
                key = (int(data["design_seq"]),
                       knot_key(data["allocation"]))
                replay["recalibrations"][key] = (
                    OptimizerParameters.from_dict(data["parameters"]))
            elif record.kind == "incumbent":
                replay["incumbents"][int(data["design_seq"])] = data
            elif record.kind == "result":
                continue
            else:  # pragma: no cover - future-proofing
                continue
            replay["units"] += 1
        return replay

    @staticmethod
    def _prior_result(journal: RunJournal) -> Optional[Dict[str, Any]]:
        results = journal.records_of("result")
        return results[-1].data if results else None

    def _result_record(self, run: ServeRun) -> Dict[str, Any]:
        stats = run.stats
        record: Dict[str, Any] = {
            "design_seq": run.design_seq,
            "breaker_trips": run.breaker_trips,
        }
        if stats is not None:
            record.update(stats.as_dict())
        design = run.design
        if design is not None:
            record["allocation"] = {
                name: list(design.allocation.vector_for(name).as_tuple())
                for name in design.allocation.workload_names()
            }
            record["predicted_total_cost"] = design.predicted_total_cost
        return record
