"""The service's simulated clock.

Every latency, deadline, quota refill, and circuit-breaker cooldown in
:mod:`repro.serve` is measured on a :class:`SimulatedClock` — the same
discrete-time convention as PR 2's :class:`~repro.faults.RetryPolicy`
backoff (``robust_seconds`` adds simulated backoff sleeps instead of
calling ``time.sleep``). The daemon is a discrete-event simulation:
processing a batch *advances* the clock by the work it charged, and an
idle service jumps straight to the next arrival. Nothing in the serve
path reads the wall clock, which is what makes an entire serving
session — admission decisions, shed requests, deadline refusals,
breaker trips — a pure function of the trace and the fault plan, and
therefore bit-identically replayable after a kill→restart.
"""

from __future__ import annotations

from repro.util.errors import ServeError


class SimulatedClock:
    """A monotonically advancing simulated time, in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds since session start."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance by *seconds* (>= 0); returns the new time."""
        if seconds < 0:
            raise ServeError(f"cannot advance the clock by {seconds}s")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump forward to *timestamp*; no-op when already past it."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now
