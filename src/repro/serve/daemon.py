"""The asyncio daemon: bounded queue, admission control, batcher.

:class:`ServeDaemon` wraps a :class:`~repro.serve.service.DesignService`
with the concurrency shell of a long-lived server:

* :meth:`submit` — the live API: concurrent client coroutines submit
  requests; admission control (bounded queue → typed ``Overloaded``,
  per-tenant token bucket → ``QuotaExceeded``, dead-on-arrival deadline
  → ``DeadlineExceeded``) answers sheds *immediately*, everything else
  parks on a future until the batcher resolves it.
* :meth:`serve_batches` — the batcher task: drains up to
  ``max_batch`` queued requests per round and hands them to
  :meth:`~repro.serve.service.DesignService.process_batch` (what-ifs
  merge into one ``cost_many`` call there).
* :meth:`run_trace` — the deterministic open-loop driver used by the
  supervisor, the CLI, and the benchmark: injects a
  :mod:`repro.serve.trace` trace arrival-by-arrival against the
  simulated clock. An idle service jumps to the next arrival;
  processing advances the clock by the work charged.

Scheduling is deterministic by construction: a single-threaded event
loop, FIFO queues, no wall-clock timers — every await is a pure yield.
That, plus the simulated clock, is why an entire serving session
(sheds, batches, breaker trips and all) replays bit-identically after
a kill→restart.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from repro.obs import metrics
from repro.serve.quota import DESIGN_TOKENS, WHATIF_TOKENS, TenantQuotas
from repro.serve.requests import REJECTED, DesignRequest, ServeResponse
from repro.serve.service import DesignService


class ServeDaemon:
    """Admission control and batching around a :class:`DesignService`."""

    def __init__(self, service: DesignService, *,
                 max_queue: Optional[int] = None,
                 max_batch: Optional[int] = None):
        config = service.config
        self._service = service
        self._max_queue = max_queue or config.max_queue
        self._max_batch = max_batch or config.max_batch
        self._quotas = TenantQuotas(config.quota_capacity,
                                    config.quota_refill_rate)
        self._queue: Deque[Tuple[Any, Optional[asyncio.Future]]] = deque()
        self._wakeup: Optional[asyncio.Event] = None
        self._closed = False

    @property
    def service(self) -> DesignService:
        return self._service

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # -- admission ---------------------------------------------------------

    def try_admit(self, request) -> Optional[ServeResponse]:
        """Admission control; a typed rejection, or ``None`` = admitted.

        Decisions use the request's arrival on the simulated clock:
        the same trace always sheds the same requests.
        """
        now = max(self._service.clock.now, float(request.arrival))
        rejection = None
        if request.deadline_seconds <= 0:
            rejection = ("DeadlineExceeded", "deadline")
        elif len(self._queue) >= self._max_queue:
            rejection = ("Overloaded", "overloaded")
        else:
            tokens = (DESIGN_TOKENS if isinstance(request, DesignRequest)
                      else WHATIF_TOKENS)
            if not self._quotas.try_admit(request.tenant,
                                          float(request.arrival), tokens):
                rejection = ("QuotaExceeded", "quota")
        if rejection is None:
            return None
        error, reason = rejection
        response = ServeResponse(
            request=request, status=REJECTED, error=error, reason=reason,
            completed_at=min(now, request.deadline_at))
        metrics.counter("serve.requests", kind=request.kind).inc()
        metrics.counter("serve.rejected", reason=reason).inc()
        if reason in ("overloaded", "quota"):
            metrics.counter("serve.shed").inc()
        return response

    # -- the live API ------------------------------------------------------

    async def submit(self, request) -> ServeResponse:
        """Submit one request; resolves when the batcher answers it."""
        rejection = self.try_admit(request)
        if rejection is not None:
            return rejection
        future = asyncio.get_running_loop().create_future()
        self._queue.append((request, future))
        if self._wakeup is not None:
            self._wakeup.set()
        return await future

    async def serve_batches(self) -> None:
        """The batcher task for the live API; runs until :meth:`close`."""
        self._wakeup = asyncio.Event()
        while not self._closed:
            if not self._queue:
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            self._drain_one_batch()
            # Stay cooperative: let clients enqueue between drains.
            await asyncio.sleep(0)

    def close(self) -> None:
        self._closed = True
        if self._wakeup is not None:
            self._wakeup.set()

    def _drain_one_batch(self) -> List[ServeResponse]:
        metrics.gauge("serve.queue_depth").set(len(self._queue))
        drained = [self._queue.popleft()
                   for _ in range(min(self._max_batch, len(self._queue)))]
        requests = [request for request, _ in drained]
        responses = self._service.process_batch(requests)
        metrics.counter("serve.batches").inc()
        metrics.histogram("serve.batch_size").observe(len(requests))
        for (_, future), response in zip(drained, responses):
            if future is not None and not future.done():
                future.set_result(response)
        return responses

    # -- the deterministic open-loop driver --------------------------------

    async def run_trace(self, trace) -> List[ServeResponse]:
        """Drive a whole arrival-sorted trace; one response per request.

        The discrete-event loop: inject every arrival the clock has
        reached (admission happens at arrival), drain one batch if
        anything is queued (advancing the clock by the work charged),
        otherwise jump to the next arrival. Terminates when the trace
        and the queue are both empty — the service can never deadlock
        on a finite trace.
        """
        clock = self._service.clock
        pending = deque(sorted(trace, key=lambda r: r.arrival))
        responses: List[ServeResponse] = []
        while pending or self._queue:
            while pending and pending[0].arrival <= clock.now + 1e-12:
                request = pending.popleft()
                rejection = self.try_admit(request)
                if rejection is not None:
                    responses.append(rejection)
                else:
                    self._queue.append((request, None))
            if self._queue:
                responses.extend(self._drain_one_batch())
                await asyncio.sleep(0)
            elif pending:
                clock.advance_to(pending[0].arrival)
        return responses
