"""Request and response types for the design service.

Two request kinds, mirroring the two questions a tuning service is
asked (``docs/serve.md``):

* :class:`WhatIfRequest` — "what would workload *W* cost at allocation
  *R*?" Answered from the warm :class:`~repro.surrogate.ParameterSurface`
  through the what-if optimizer; cheap, batchable.
* :class:`DesignRequest` — "the workload changed (queries added /
  removed); give me a new allocation." Mutates service state (the
  incumbent) and walks the degradation ladder.

Every request carries a ``tenant`` (for quota accounting) and a
``deadline_seconds`` budget measured from its ``arrival`` on the
simulated clock. Every request produces exactly one
:class:`ServeResponse` whose ``status`` is one of

* ``answered`` — served at the preferred tier;
* ``degraded`` — served, but a rung (or more) down the ladder: a
  clamped out-of-hull what-if, a warm-start instead of a fresh search,
  a stale incumbent, or a budget-capped search;
* ``rejected`` — a *typed* refusal: ``error`` names the
  :class:`~repro.util.errors.ServeError` subclass (``Overloaded``,
  ``QuotaExceeded``, ``DeadlineExceeded``, ``ServeError``) and
  ``reason`` the admission/ladder rung that refused. The service never
  returns an untyped error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

#: Response statuses.
ANSWERED = "answered"
DEGRADED = "degraded"
REJECTED = "rejected"

#: Serving tiers, best to worst (the degradation ladder).
TIER_FRESH = "fresh"
TIER_WARM = "warm"
TIER_STALE = "stale"
TIER_BATCHED = "batched"
TIER_CLAMPED = "clamped"


@dataclass(frozen=True)
class WhatIfRequest:
    """Cost one workload at one allocation, against the warm surface."""

    tenant: str
    workload: str
    #: (cpu, memory, io) shares.
    allocation: Tuple[float, float, float]
    arrival: float = 0.0
    deadline_seconds: float = 1.0

    @property
    def kind(self) -> str:
        return "whatif"

    @property
    def deadline_at(self) -> float:
        return self.arrival + self.deadline_seconds


@dataclass(frozen=True)
class DesignRequest:
    """Apply a workload delta and produce a new incumbent allocation.

    ``delta`` maps workload names to new repeat counts: 0 removes the
    workload, a new name (known to the service catalog) adds it.
    ``prefer_fresh`` asks for the fresh tier (re-calibrated knots +
    cold search); without it the warm tier is the preferred answer and
    is *not* counted as degraded.
    """

    tenant: str
    delta: Dict[str, int] = field(default_factory=dict)
    prefer_fresh: bool = False
    arrival: float = 0.0
    deadline_seconds: float = 30.0

    @property
    def kind(self) -> str:
        return "design"

    @property
    def deadline_at(self) -> float:
        return self.arrival + self.deadline_seconds


@dataclass
class ServeResponse:
    """The service's one-and-only answer shape."""

    request: Any
    status: str
    #: Serving tier for answered/degraded responses.
    tier: Optional[str] = None
    #: ServeError subclass name for rejections.
    error: Optional[str] = None
    #: Admission / ladder rung that refused (rejections only).
    reason: Optional[str] = None
    #: Predicted cost (what-ifs: the workload; designs: the total).
    cost: Optional[float] = None
    #: Design responses: the new incumbent allocation, per workload.
    allocation: Optional[Dict[str, Tuple[float, float, float]]] = None
    completed_at: float = 0.0

    @property
    def latency_seconds(self) -> float:
        return max(0.0, self.completed_at - self.request.arrival)

    @property
    def ok(self) -> bool:
        return self.status in (ANSWERED, DEGRADED)
