"""The design service: warm state, batching, and the degradation ladder.

:class:`DesignService` is the long-lived core behind ``repro serve``.
It holds the session's *warm state* — the boot-time
:class:`~repro.surrogate.ParameterSurface` fit, the journal-backed v3
:class:`~repro.calibration.cache.CalibrationCache`, the workload
catalog, and the incumbent allocation — and answers the two request
kinds of :mod:`repro.serve.requests`. The surface is immutable once
fit: request handling never mutates it in place, it is *replaced*
atomically when the fresh tier refreshes knots, so concurrent readers
(batched what-ifs in flight) always see a consistent fit.

What-if batching
----------------
Concurrent what-ifs drain from the daemon queue into a single
:meth:`~repro.core.cost_model.CostModel.cost_many` call through the
shared :class:`~repro.parallel.EvaluationEngine`: duplicate
(workload, allocation) pairs collapse to one evaluation and the memo
serves repeats across batches, so a batch of 16 requests usually pays
for far fewer than 16 evaluations. Simulated time is charged per
*fresh* evaluation plus a per-batch overhead; the conservative
worst-case charge is checked against every member's deadline *before*
the batch runs, so a request is refused (typed, within its deadline)
rather than answered late.

The degradation ladder
----------------------
Design requests walk four rungs, each gated on the request's remaining
deadline budget and the circuit breaker (``docs/serve.md``):

1. **fresh** — re-validate the incumbent-region knots through the
   breaker-guarded calibration path (stale knots are kept on permanent
   failure, the PR 2 fallback contract), then a cold continuous search
   capped by the affordable evaluation budget.
2. **warm** — :func:`~repro.surrogate.warm_start` descent from the
   incumbent allocation projected onto the post-delta workload set,
   reusing every valid calibration via the warm surface.
3. **stale** — serve the projected incumbent as-is, costed through the
   (hull-clamped) surrogate.
4. **refusal** — a typed :class:`~repro.util.errors.DeadlineExceeded`
   when even the stale rung cannot fit the remaining budget.

A rung below the request's preferred tier (or a budget-capped search)
answers with status ``degraded`` — served, honestly labelled.

Crash safety
------------
State-changing units journal through the supervisor's
:class:`~repro.recovery.journal.BudgetedJournal`: each fresh knot
re-validation is a ``recalibration`` record keyed by (design sequence,
knot) and each committed incumbent an ``incumbent`` record keyed by
design sequence. Everything between those units — trace generation,
admission, batching, searches — is deterministic arithmetic on the
simulated clock, so a killed session resumes bit-identically (see
``tests/serve/test_chaos.py``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.calibration.runner import CalibrationRunner
from repro.core.cost_model import OptimizerCostModel
from repro.core.designer import Design, VirtualizationDesigner
from repro.core.problem import (
    AllocationMatrix,
    VirtualizationDesignProblem,
    WorkloadSpec,
)
from repro.obs import metrics
from repro.serve.breaker import CircuitBreaker
from repro.serve.clock import SimulatedClock
from repro.serve.requests import (
    ANSWERED,
    DEGRADED,
    REJECTED,
    TIER_BATCHED,
    TIER_CLAMPED,
    TIER_FRESH,
    TIER_STALE,
    TIER_WARM,
    DesignRequest,
    ServeResponse,
    WhatIfRequest,
)
from repro.surrogate import warm_start
from repro.surrogate.surface import ParameterSurface, knot_key
from repro.util.errors import (
    CalibrationError,
    MeasurementFault,
    ReproError,
    ServeError,
)
from repro.virt.resources import ALL_RESOURCES, ResourceVector
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class ServeConfig:
    """The service's timing model, floors, and admission knobs.

    Work is charged on the simulated clock: ``eval_seconds`` per fresh
    cost-model evaluation, ``calibration_seconds`` per calibration
    request (attempted, replayed, or failed — identical charges keep a
    resumed session's clock bit-identical), ``batch_overhead_seconds``
    per queue drain. The floors decide the cheapest ladder rung a
    remaining deadline budget can still afford.
    """

    eval_seconds: float = 0.004
    batch_overhead_seconds: float = 0.002
    calibration_seconds: float = 0.5
    #: Incumbent-region knots the fresh tier re-validates.
    refresh_knots: int = 2
    #: Minimum affordable evaluations to attempt a fresh cold search.
    fresh_floor_evals: int = 128
    #: Minimum affordable evaluations to attempt a warm-start descent.
    warm_floor_evals: int = 24
    #: Admission: bounded queue length and per-drain batch cap.
    max_queue: int = 32
    max_batch: int = 16
    #: Per-tenant token bucket (tokens, tokens per simulated second).
    quota_capacity: float = 8.0
    quota_refill_rate: float = 4.0
    #: Consecutive transient-rooted calibration failures that trip the
    #: breaker.
    breaker_trip_after: int = 3

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServeConfig":
        return cls(**data)


@dataclass
class _CatalogEntry:
    """One workload the service knows how to (re)build at any repeat."""

    unit: Tuple[str, ...]
    database: Any


def _empty_replay() -> Dict[str, Any]:
    return {"recalibrations": {}, "incumbents": {}, "units": 0}


class DesignService:
    """Shared warm state plus the request handlers (see module doc)."""

    def __init__(self, problem: VirtualizationDesignProblem,
                 surface: ParameterSurface, incumbent: Design, *,
                 config: Optional[ServeConfig] = None,
                 clock: Optional[SimulatedClock] = None,
                 runner: Optional[CalibrationRunner] = None,
                 journal=None, replay: Optional[Dict[str, Any]] = None,
                 engine=None,
                 breaker: Optional[CircuitBreaker] = None):
        self._config = config or ServeConfig()
        self._clock = clock or SimulatedClock()
        self._runner = runner
        self._journal = journal
        self._replay = replay if replay is not None else _empty_replay()
        self._engine = engine
        self._breaker = breaker or CircuitBreaker(
            self._config.breaker_trip_after)
        self._surface = surface
        self._incumbent = incumbent
        self._problem = problem
        self._algorithm = "greedy"
        self._grid = 4
        self._fine_factor = 8
        self._design_seq = 0
        # The immutable catalog: how to rebuild any workload this
        # service has ever served, at any repeat count.
        self._catalog: Dict[str, _CatalogEntry] = {}
        self._repeats: Dict[str, int] = {}
        for spec in problem.specs:
            unit = tuple(dict.fromkeys(spec.workload.statements))
            self._catalog[spec.name] = _CatalogEntry(unit, spec.database)
            self._repeats[spec.name] = (
                len(spec.workload.statements) // max(1, len(unit)))
        # Uncontrolled shares are pinned at their boot values for the
        # whole session: the surface hull was fit against them.
        self._fixed_shares = {
            kind: {name: problem.fixed_share_for(kind, name)
                   for name in self._catalog}
            for kind in ALL_RESOURCES
            if kind not in problem.controlled_resources
        }
        self._whatif_model = OptimizerCostModel(surface)

    # -- read-only state ---------------------------------------------------

    @property
    def clock(self) -> SimulatedClock:
        return self._clock

    @property
    def config(self) -> ServeConfig:
        return self._config

    @property
    def surface(self) -> ParameterSurface:
        return self._surface

    @property
    def incumbent(self) -> Design:
        return self._incumbent

    @property
    def problem(self) -> VirtualizationDesignProblem:
        return self._problem

    @property
    def breaker(self) -> CircuitBreaker:
        return self._breaker

    @property
    def design_seq(self) -> int:
        return self._design_seq

    def configure_search(self, algorithm: str, grid: int,
                         fine_factor: int) -> None:
        self._algorithm = algorithm
        self._grid = grid
        self._fine_factor = fine_factor

    # -- batch entry point -------------------------------------------------

    def process_batch(self, batch: Sequence[Any]) -> List[ServeResponse]:
        """Answer one queue drain; responses align 1:1 with *batch*.

        What-ifs are answered first as a single ``cost_many`` batch
        (they are cheap and latency-sensitive); design requests then
        run serially in arrival order — batch composition can change
        what-if latencies but never the incumbent trajectory, which is
        what makes kill→resume bit-identity independent of batching.
        """
        whatifs = [r for r in batch if isinstance(r, WhatIfRequest)]
        designs = [r for r in batch if isinstance(r, DesignRequest)]
        by_id: Dict[int, ServeResponse] = {}
        if whatifs:
            for request, response in zip(whatifs,
                                         self._answer_whatifs(whatifs)):
                by_id[id(request)] = response
        for request in designs:
            by_id[id(request)] = self._guarded_design(request)
        responses = [by_id[id(request)] for request in batch]
        for response in responses:
            self._account(response)
        return responses

    def _account(self, response: ServeResponse) -> None:
        request = response.request
        metrics.counter("serve.requests", kind=request.kind).inc()
        if response.status == REJECTED:
            metrics.counter("serve.rejected",
                            reason=response.reason or "unknown").inc()
        else:
            if response.status == DEGRADED:
                metrics.counter("serve.degraded", tier=response.tier).inc()
            else:
                metrics.counter("serve.answered", tier=response.tier).inc()
            metrics.histogram("serve.latency_seconds",
                              kind=request.kind).observe(
                response.latency_seconds)

    # -- what-ifs ----------------------------------------------------------

    def _answer_whatifs(self, batch: Sequence[WhatIfRequest]
                        ) -> List[ServeResponse]:
        now = self._clock.now
        responses: List[Optional[ServeResponse]] = [None] * len(batch)
        runnable: List[Tuple[int, WhatIfRequest, Any, ResourceVector]] = []
        for index, request in enumerate(batch):
            if request.deadline_at <= now:
                # Expired while queued: abandoned at the deadline
                # instant (the response timestamp says so).
                responses[index] = ServeResponse(
                    request=request, status=REJECTED,
                    error="DeadlineExceeded", reason="deadline",
                    completed_at=request.deadline_at)
                continue
            try:
                spec = self._problem.spec(request.workload)
            except ReproError:
                responses[index] = ServeResponse(
                    request=request, status=REJECTED, error="ServeError",
                    reason="unknown-workload", completed_at=now)
                continue
            vector = ResourceVector.of(*request.allocation)
            runnable.append((index, request, spec, vector))

        # Conservative worst-case charge for the whole sub-batch; any
        # member that cannot be guaranteed an in-deadline answer is
        # refused now, before its deadline passes.
        config = self._config
        unique = {(spec.name, knot_key(vector.as_tuple()))
                  for _, _, spec, vector in runnable}
        worst = (config.batch_overhead_seconds
                 + len(unique) * config.eval_seconds)
        kept: List[Tuple[int, WhatIfRequest, Any, ResourceVector]] = []
        for index, request, spec, vector in runnable:
            if request.deadline_at < now + worst:
                responses[index] = ServeResponse(
                    request=request, status=REJECTED,
                    error="DeadlineExceeded", reason="deadline",
                    completed_at=now)
            else:
                kept.append((index, request, spec, vector))

        if kept:
            pairs = [(spec, vector) for _, _, spec, vector in kept]
            outcome = self._whatif_model.cost_many(pairs,
                                                   engine=self._engine)
            self._clock.advance(config.batch_overhead_seconds
                                + outcome.fresh * config.eval_seconds)
            completed = self._clock.now
            for (index, request, _, vector), cost in zip(kept,
                                                         outcome.costs):
                clamped = not self._surface.covers(vector)
                responses[index] = ServeResponse(
                    request=request,
                    status=DEGRADED if clamped else ANSWERED,
                    tier=TIER_CLAMPED if clamped else TIER_BATCHED,
                    cost=cost, completed_at=completed)
        return [response for response in responses if response is not None]

    # -- design requests ---------------------------------------------------

    def _guarded_design(self, request: DesignRequest) -> ServeResponse:
        """Run the ladder; convert any library error to a typed refusal."""
        try:
            return self._handle_design(request)
        except ReproError as error:
            return ServeResponse(
                request=request, status=REJECTED,
                error=type(error).__name__, reason="error",
                completed_at=self._clock.now)

    def _handle_design(self, request: DesignRequest) -> ServeResponse:
        now = self._clock.now
        if request.deadline_at <= now:
            return ServeResponse(
                request=request, status=REJECTED, error="DeadlineExceeded",
                reason="deadline", completed_at=request.deadline_at)
        try:
            problem, repeats = self._apply_delta(request.delta)
        except ServeError as error:
            return ServeResponse(
                request=request, status=REJECTED,
                error=type(error).__name__, reason="bad-delta",
                completed_at=now)
        start = self._project_incumbent(problem)
        config = self._config
        seq = self._design_seq
        surface = self._surface
        n = problem.n_workloads

        remaining = request.deadline_at - self._clock.now
        stale_cost = config.batch_overhead_seconds + n * config.eval_seconds
        if remaining < stale_cost:
            # Not even the stale rung fits: typed refusal, in deadline.
            return ServeResponse(
                request=request, status=REJECTED, error="DeadlineExceeded",
                reason="refused", completed_at=self._clock.now)

        tier = None
        design: Optional[Design] = None
        fresh_cost = (config.refresh_knots * config.calibration_seconds
                      + config.fresh_floor_evals * config.eval_seconds)
        # state() (not allow()) keeps the half-open probe slot for the
        # per-knot checks inside the refresh itself.
        breaker_open = (self._breaker.state(self._clock.now)
                        == CircuitBreaker.OPEN)
        if breaker_open and request.prefer_fresh:
            metrics.counter("serve.breaker", event="refused").inc()
        if (request.prefer_fresh and self._runner is not None
                and remaining >= fresh_cost + stale_cost
                and not breaker_open):
            surface = self._refresh_knots(seq, surface)
            design = self._fresh_search(request, problem, surface)
            if design is not None:
                tier = TIER_FRESH
        if design is None:
            design = self._warm_search(request, problem, surface, start)
            if design is not None:
                tier = TIER_WARM
        if design is None:
            design = self._stale_answer(request, problem, surface, start)
            tier = TIER_STALE

        # Commit: the workload set changed, so even a stale answer
        # becomes the incumbent for subsequent requests.
        self._problem = problem
        self._repeats = repeats
        self._surface = surface
        self._whatif_model = OptimizerCostModel(surface)
        self._incumbent = design
        self._design_seq = seq + 1
        self._journal_incumbent(seq, tier, design, repeats)
        metrics.counter("serve.redesigns", tier=tier).inc()

        preferred = TIER_FRESH if request.prefer_fresh else TIER_WARM
        degraded = (tier != preferred and not (
            tier == TIER_FRESH and preferred == TIER_WARM)) or design.stopped
        return ServeResponse(
            request=request,
            status=DEGRADED if degraded else ANSWERED,
            tier=tier, cost=design.predicted_total_cost,
            allocation={
                name: design.allocation.vector_for(name).as_tuple()
                for name in design.allocation.workload_names()
            },
            completed_at=self._clock.now)

    # -- ladder rungs ------------------------------------------------------

    def _refresh_knots(self, seq: int,
                       surface: ParameterSurface) -> ParameterSurface:
        """Fresh rung, step 1: re-validate incumbent-region knots.

        Every attempt — fresh, replayed, or failed — charges the same
        simulated calibration time, so a resumed session's clock stays
        bit-identical. Failed knots keep their stale parameters (the
        PR 2 stale-knot fallback) and feed the breaker.
        """
        config = self._config
        knots: List[Tuple[float, ...]] = []
        for name in self._incumbent.allocation.workload_names():
            vector = self._incumbent.allocation.vector_for(name)
            if not surface.covers(vector):
                continue
            for knot in surface.region_corners(surface.region_of(vector)):
                if knot not in knots:
                    knots.append(knot)
        updates = {}
        for knot in knots[:config.refresh_knots]:
            if not self._breaker.allow(self._clock.now):
                break
            self._clock.advance(config.calibration_seconds)
            key = (seq, knot_key(knot))
            params = self._replay["recalibrations"].get(key)
            if params is None:
                try:
                    params = self._runner.parameters_for(
                        ResourceVector.of(cpu=knot[0], memory=knot[1],
                                          io=knot[2]))
                except CalibrationError as error:
                    transient = isinstance(error.__cause__,
                                           MeasurementFault)
                    self._breaker.record_failure(self._clock.now, transient)
                    metrics.counter("serve.refresh",
                                    outcome="failed").inc()
                    continue
                self._journal_append("recalibration", {
                    "design_seq": seq,
                    "allocation": list(key[1]),
                    "parameters": params.as_dict(),
                })
                self._replay["recalibrations"][key] = params
            self._breaker.record_success()
            metrics.counter("serve.refresh", outcome="ok").inc()
            updates[key[1]] = params
        if updates:
            surface = surface.with_knots(updates)
        return surface

    def _search_cap(self, request: DesignRequest,
                    problem: VirtualizationDesignProblem) -> int:
        """Affordable search evaluations under the remaining budget.

        The searches enforce ``max_evaluations`` at batch/step
        boundaries, so they can overshoot by one frontier; the
        allowance below covers that, and :meth:`_charge` clamps at the
        deadline as a final backstop.
        """
        config = self._config
        budget = (request.deadline_at - self._clock.now
                  - config.batch_overhead_seconds)
        n = problem.n_workloads
        allowance = 16 * n * n * max(1, len(problem.controlled_resources))
        return int(budget / config.eval_seconds) - allowance

    def _fresh_search(self, request: DesignRequest,
                      problem: VirtualizationDesignProblem,
                      surface: ParameterSurface) -> Optional[Design]:
        cap = self._search_cap(request, problem)
        if cap < self._config.fresh_floor_evals:
            return None
        model = OptimizerCostModel(surface)
        designer = VirtualizationDesigner(problem, model)
        design = designer.design(
            self._algorithm, grid=self._grid, max_evaluations=cap,
            engine=self._engine, continuous=True,
            fine_factor=self._fine_factor)
        self._charge(design.evaluations, request.deadline_at)
        return design

    def _warm_search(self, request: DesignRequest,
                     problem: VirtualizationDesignProblem,
                     surface: ParameterSurface,
                     start: AllocationMatrix) -> Optional[Design]:
        cap = self._search_cap(request, problem)
        if cap < self._config.warm_floor_evals:
            return None
        design = warm_start(
            problem, surface, start, grid=self._grid,
            fine_factor=self._fine_factor,
            algorithm_label=f"serve-warm-{self._algorithm}",
            max_evaluations=cap)
        self._charge(design.evaluations, request.deadline_at)
        return design

    def _stale_answer(self, request: DesignRequest,
                      problem: VirtualizationDesignProblem,
                      surface: ParameterSurface,
                      start: AllocationMatrix) -> Design:
        model = OptimizerCostModel(surface)
        designer = VirtualizationDesigner(problem, model)
        costs = designer.evaluate(start)
        self._charge(len(costs), request.deadline_at)
        total = sum(costs.values())
        return Design(
            problem=problem, allocation=start,
            predicted_total_cost=total, predicted_costs=costs,
            default_allocation=start, default_total_cost=total,
            default_costs=costs, algorithm="serve-stale",
            evaluations=len(costs), stopped=True)

    def _charge(self, evaluations: int, deadline_at: float) -> None:
        """Charge simulated work, cut off at the request's deadline.

        The clamp is the last line of the in-deadline guarantee: if a
        search overshoots its evaluation cap by a batch boundary, the
        session behaves as if it was interrupted exactly at the
        deadline instant — deterministically, so a resumed run clamps
        identically.
        """
        charge = (self._config.batch_overhead_seconds
                  + evaluations * self._config.eval_seconds)
        available = max(0.0, deadline_at - self._clock.now)
        self._clock.advance(min(charge, available))

    # -- delta / projection ------------------------------------------------

    def _apply_delta(self, delta: Dict[str, int]
                     ) -> Tuple[VirtualizationDesignProblem, Dict[str, int]]:
        repeats = dict(self._repeats)
        for name, count in sorted(delta.items()):
            if name not in self._catalog:
                raise ServeError(f"unknown workload {name!r} in delta "
                                 f"(catalog: {sorted(self._catalog)})")
            if count < 0:
                raise ServeError(f"negative repeat count for {name!r}")
            repeats[name] = int(count)
        live = {name: count for name, count in repeats.items() if count > 0}
        if not live:
            raise ServeError("delta removes every workload")
        specs = []
        for name in sorted(live):
            entry = self._catalog[name]
            specs.append(WorkloadSpec(
                Workload(name, entry.unit * live[name]), entry.database))
        problem = VirtualizationDesignProblem(
            machine=self._problem.machine, specs=specs,
            controlled_resources=self._problem.controlled_resources,
            fixed_shares=self._fixed_shares)
        return problem, repeats

    def _project_incumbent(self, problem: VirtualizationDesignProblem
                           ) -> AllocationMatrix:
        """The incumbent allocation carried onto the new workload set.

        Survivors keep their controlled shares; newcomers split the
        leftover headroom evenly (or an equal share when there is
        none); oversubscription renormalizes. Uncontrolled shares stay
        at their pinned boot values.
        """
        old = self._incumbent.allocation
        old_names = set(old.workload_names())
        names = sorted(problem.workload_names())
        vectors: Dict[str, Dict[Any, float]] = {
            name: {} for name in names}
        for kind in ALL_RESOURCES:
            if kind not in problem.controlled_resources:
                for name in names:
                    vectors[name][kind] = problem.fixed_share_for(kind, name)
                continue
            shares: Dict[str, Optional[float]] = {}
            for name in names:
                shares[name] = (old.vector_for(name).share(kind)
                                if name in old_names else None)
            newcomers = [name for name in names if shares[name] is None]
            survived = sum(value for value in shares.values()
                           if value is not None)
            if newcomers:
                leftover = max(0.0, 1.0 - survived)
                each = (leftover / len(newcomers) if leftover > 1e-9
                        else 1.0 / len(names))
                for name in newcomers:
                    shares[name] = each
            total = sum(shares.values())
            scale = 1.0 / total if total > 1.0 else 1.0
            for name in names:
                vectors[name][kind] = round(shares[name] * scale, 6)
        return AllocationMatrix({
            name: ResourceVector(vectors[name]) for name in names})

    # -- journaling --------------------------------------------------------

    def _journal_append(self, kind: str, data: Dict[str, Any]) -> None:
        if self._journal is not None:
            self._journal.append(kind, data)

    def _journal_incumbent(self, seq: int, tier: str, design: Design,
                           repeats: Dict[str, int]) -> None:
        if seq in self._replay["incumbents"]:
            return
        record = {
            "design_seq": seq,
            "tier": tier,
            "allocation": {
                name: list(design.allocation.vector_for(name).as_tuple())
                for name in design.allocation.workload_names()
            },
            "predicted_total_cost": design.predicted_total_cost,
            "repeats": {name: count for name, count in sorted(
                repeats.items()) if count > 0},
        }
        self._journal_append("incumbent", record)
        self._replay["incumbents"][seq] = record
