"""Per-tenant admission quotas: lazy-refill token buckets.

Each tenant gets a :class:`TokenBucket` holding at most ``capacity``
tokens, refilled continuously at ``refill_rate`` tokens per simulated
second. A what-if costs one token; a design request costs more (it
occupies the service for orders of magnitude longer), so one tenant
hammering design requests exhausts its own bucket without starving the
others — the bounded queue stays available for everyone else.

Refill is computed lazily from the timestamp of the last take, so the
bucket needs no timer and is a pure function of the (simulated) clock:
the same trace always sheds the same requests, which the serve chaos
tests rely on.
"""

from __future__ import annotations

from typing import Dict

from repro.util.errors import ServeError

#: Token cost of a what-if request.
WHATIF_TOKENS = 1.0

#: Token cost of a design request.
DESIGN_TOKENS = 4.0


class TokenBucket:
    """One tenant's admission budget."""

    __slots__ = ("capacity", "refill_rate", "_tokens", "_refilled_at")

    def __init__(self, capacity: float, refill_rate: float,
                 *, now: float = 0.0):
        if capacity <= 0 or refill_rate < 0:
            raise ServeError(
                f"bad token bucket: capacity={capacity} rate={refill_rate}")
        self.capacity = float(capacity)
        self.refill_rate = float(refill_rate)
        self._tokens = float(capacity)
        self._refilled_at = float(now)

    def tokens(self, now: float) -> float:
        """Tokens available at *now* (refill applied, not committed)."""
        elapsed = max(0.0, now - self._refilled_at)
        return min(self.capacity, self._tokens + elapsed * self.refill_rate)

    def try_take(self, now: float, tokens: float) -> bool:
        """Take *tokens* if available; False (and no change) otherwise."""
        available = self.tokens(now)
        self._refilled_at = max(self._refilled_at, now)
        self._tokens = available
        if available + 1e-12 < tokens:
            return False
        self._tokens = available - tokens
        return True


class TenantQuotas:
    """Token buckets keyed by tenant name, created on first sight."""

    def __init__(self, capacity: float, refill_rate: float):
        self._capacity = capacity
        self._refill_rate = refill_rate
        self._buckets: Dict[str, TokenBucket] = {}

    def bucket(self, tenant: str, now: float) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self._capacity, self._refill_rate, now=now)
            self._buckets[tenant] = bucket
        return bucket

    def try_admit(self, tenant: str, now: float, tokens: float) -> bool:
        """Charge *tenant* *tokens*; False when its bucket is empty."""
        return self.bucket(tenant, now).try_take(now, tokens)
