"""Shared utilities: deterministic RNG, units, formatting, errors."""

from repro.util.errors import (
    ReproError,
    AdmissionError,
    AllocationError,
    CalibrationError,
    CatalogError,
    PlanningError,
    SqlError,
    StorageError,
)
from repro.util.rng import DeterministicRng
from repro.util.units import (
    KIB,
    MIB,
    GIB,
    PAGE_SIZE,
    bytes_to_pages,
    mib_to_pages,
    pages_to_mib,
)
from repro.util.tables import format_table

__all__ = [
    "ReproError",
    "AdmissionError",
    "AllocationError",
    "CalibrationError",
    "CatalogError",
    "PlanningError",
    "SqlError",
    "StorageError",
    "DeterministicRng",
    "KIB",
    "MIB",
    "GIB",
    "PAGE_SIZE",
    "bytes_to_pages",
    "mib_to_pages",
    "pages_to_mib",
    "format_table",
]
