"""Storage and capacity units used throughout the library.

The engine stores tuples in fixed-size pages (8 KiB, PostgreSQL's
default) and the virtualization layer sizes buffer pools in pages, so
conversions live in one place.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Size of one storage page in bytes (PostgreSQL default block size).
PAGE_SIZE = 8 * KIB


def bytes_to_pages(n_bytes: int) -> int:
    """Number of whole pages needed to hold *n_bytes* (ceiling)."""
    if n_bytes < 0:
        raise ValueError("n_bytes must be non-negative")
    return (n_bytes + PAGE_SIZE - 1) // PAGE_SIZE


def mib_to_pages(mib: float) -> int:
    """Number of whole pages that fit in *mib* mebibytes (floor)."""
    if mib < 0:
        raise ValueError("mib must be non-negative")
    return int(mib * MIB) // PAGE_SIZE


def pages_to_mib(pages: int) -> float:
    """Mebibytes occupied by *pages* pages."""
    if pages < 0:
        raise ValueError("pages must be non-negative")
    return pages * PAGE_SIZE / MIB
