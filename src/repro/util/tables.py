"""Plain-text table formatting for benchmark reports.

The benchmark harness prints rows in the same shape the paper reports
(figures are rendered as tables of their series). This formatter keeps
reports dependency-free and stable enough to diff between runs.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Render *rows* under *headers* as an aligned ASCII table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
