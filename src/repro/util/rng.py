"""Deterministic random number generation.

Everything in the library that needs randomness (data generation,
execution noise, workload synthesis) draws from a
:class:`DeterministicRng` so that every experiment is reproducible from
a single integer seed. The class wraps :class:`random.Random` rather
than the module-level functions so independent components never share
state.
"""

from __future__ import annotations

import hashlib
import random


class DeterministicRng:
    """A seedable random source with convenience helpers.

    Child generators created with :meth:`fork` are independent of the
    parent and of each other, and are themselves deterministic: forking
    with the same label always yields the same stream.
    """

    def __init__(self, seed: int = 0):
        self._seed = int(seed)
        self._random = random.Random(self._seed)

    @property
    def seed(self) -> int:
        """The seed this generator was created with."""
        return self._seed

    def fork(self, label: str) -> "DeterministicRng":
        """Return an independent child generator derived from *label*.

        The child's stream depends only on this generator's seed and the
        label, not on how many values have been drawn so far, so
        components can be re-ordered without perturbing each other.

        The derivation must be stable across processes, so it uses a
        cryptographic digest rather than ``hash()`` (whose string
        hashing is randomized per process by ``PYTHONHASHSEED``, which
        would make "deterministic" streams differ run to run).
        """
        digest = hashlib.sha256(f"{self._seed}:{label}".encode()).digest()
        child_seed = int.from_bytes(digest[:8], "big") & 0x7FFFFFFF
        return DeterministicRng(child_seed)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high)``."""
        return self._random.uniform(low, high)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal sample."""
        return self._random.gauss(mu, sigma)

    def choice(self, seq):
        """Uniformly pick one element of a non-empty sequence."""
        return self._random.choice(seq)

    def sample(self, seq, k: int):
        """Sample *k* distinct elements."""
        return self._random.sample(seq, k)

    def shuffle(self, seq) -> None:
        """Shuffle *seq* in place."""
        self._random.shuffle(seq)

    def zipf_index(self, n: int, skew: float) -> int:
        """Zipf-distributed index in ``[0, n)``.

        Uses the inverse-CDF rejection-free approximation adequate for
        workload synthesis; ``skew == 0`` degenerates to uniform.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if skew <= 0:
            return self._random.randrange(n)
        # Inverse transform on the (truncated) Zipf CDF.
        u = self._random.random()
        # Weights 1/(i+1)^skew; walk the CDF. n is small in our uses.
        total = sum(1.0 / (i + 1) ** skew for i in range(n))
        acc = 0.0
        for i in range(n):
            acc += (1.0 / (i + 1) ** skew) / total
            if u <= acc:
                return i
        return n - 1

    def noise_factor(self, relative_sigma: float) -> float:
        """A multiplicative noise factor centered on 1.0, floored at 0.5.

        Used to perturb simulated measurements the way host jitter
        perturbs wall-clock measurements; deterministic given the seed.
        """
        if relative_sigma <= 0:
            return 1.0
        return max(0.5, self._random.gauss(1.0, relative_sigma))
