"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at an API boundary. Subsystems raise the more
specific subclasses below.

Transient versus permanent
--------------------------
Measurement-path errors follow a two-level contract that the resilient
calibration pipeline (:mod:`repro.faults`, ``CalibrationRunner``,
``CalibrationCache``) relies on:

* **Transient** — :class:`MeasurementFault` and its subclass
  :class:`MeasurementTimeout`. The condition is expected to clear on a
  retry (a flaky simulated measurement, a VM boot hiccup, an injected
  hang past the measurement deadline). Callers inside the pipeline
  retry these under a ``RetryPolicy`` with exponential backoff and must
  never let one escape uncaught.
* **Permanent** — :class:`CalibrationError` (including
  :class:`IllConditionedError`). Retrying will not help: the retry
  budget is exhausted, the allocation is dead, or the solved system is
  degenerate. These cross API boundaries; ``CalibrationCache`` reacts
  by degrading through its fallback chain (nearest calibrated
  allocation, then PostgreSQL-default parameters) instead of raising to
  the designer.

A transient error that survives its retry budget is re-raised *as* a
permanent :class:`CalibrationError` (with the transient fault chained
as ``__cause__``), so "is this retryable?" is always answerable from
the exception type alone.
"""

from typing import Optional, Sequence, Tuple


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AllocationError(ReproError):
    """An invalid resource allocation (negative share, oversubscription, ...)."""


class AdmissionError(ReproError):
    """The virtual machine monitor refused to admit or reconfigure a VM."""


class StorageError(ReproError):
    """Heap file / page level failure (bad record id, page overflow, ...)."""


class CatalogError(ReproError):
    """Unknown table, column, or index; duplicate definition."""


class SqlError(ReproError):
    """SQL lexing, parsing, or binding failure."""


class PlanningError(ReproError):
    """The optimizer could not produce a plan for a query."""


class CalibrationError(ReproError):
    """Calibration could not recover optimizer parameters (permanent)."""


class MeasurementFault(ReproError):
    """A single measurement failed transiently; retrying may succeed."""


class MeasurementTimeout(MeasurementFault):
    """A measurement exceeded its simulated deadline (transient)."""


class IllConditionedError(CalibrationError):
    """The calibration system is degenerate (permanent).

    Carries the diagnostics a caller needs to name the problem:
    ``condition_number`` of the (scaled) design matrix, the
    ``row_indices`` of the measurements involved, and the
    ``query_names`` of the synthetic queries behind those rows (when
    the caller supplied names).
    """

    def __init__(self, message: str,
                 condition_number: Optional[float] = None,
                 row_indices: Sequence[int] = (),
                 query_names: Sequence[str] = ()):
        super().__init__(message)
        self.condition_number = condition_number
        self.row_indices: Tuple[int, ...] = tuple(row_indices)
        self.query_names: Tuple[str, ...] = tuple(query_names)


class SurrogateError(CalibrationError):
    """A parameter-surface fit is unusable (incomplete lattice, corrupt
    or malformed persisted fit). Permanent, like every calibration
    failure: retrying the same fit cannot help, the knot set itself
    must change."""


class RecoveryError(ReproError):
    """A recovery journal is unusable (corrupt record, format mismatch)."""


class ServeError(ReproError):
    """Misuse of the always-on design service, or a typed refusal the
    degradation ladder issues when every serving tier is exhausted
    (see :mod:`repro.serve`). Requests never end in an untyped error:
    the service converts every failure into a response that names one
    of these classes."""


class Overloaded(ServeError):
    """The service shed the request under load: the bounded queue was
    full. A typed, retryable rejection — the client should back off
    and retry, exactly like a transient measurement fault."""


class QuotaExceeded(Overloaded):
    """The tenant's token bucket was empty (per-tenant admission
    control); other tenants' requests are still being served."""


class DeadlineExceeded(ServeError):
    """The request's deadline budget cannot cover even the cheapest
    serving tier, so the service refuses instead of answering late."""


class ObservabilityError(ReproError):
    """Misuse of the metrics/span/report API (kind clash, bad value)."""


class DriftError(ReproError):
    """Misuse of the online drift-monitoring loop (degenerate
    observation, bad threshold/budget configuration). Distinct from
    :class:`CalibrationError`: a drift-triggered recalibration that
    fails permanently degrades gracefully (the stale knot is kept and
    counted as a fallback) instead of raising."""
