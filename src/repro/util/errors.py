"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at an API boundary. Subsystems raise the more
specific subclasses below.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AllocationError(ReproError):
    """An invalid resource allocation (negative share, oversubscription, ...)."""


class AdmissionError(ReproError):
    """The virtual machine monitor refused to admit or reconfigure a VM."""


class StorageError(ReproError):
    """Heap file / page level failure (bad record id, page overflow, ...)."""


class CatalogError(ReproError):
    """Unknown table, column, or index; duplicate definition."""


class SqlError(ReproError):
    """SQL lexing, parsing, or binding failure."""


class PlanningError(ReproError):
    """The optimizer could not produce a plan for a query."""


class CalibrationError(ReproError):
    """Calibration could not recover optimizer parameters."""


class ObservabilityError(ReproError):
    """Misuse of the metrics/span/report API (kind clash, bad value)."""
