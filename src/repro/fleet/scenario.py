"""Synthetic fleet scenarios for benchmarks and the `repro fleet` CLI.

:func:`synthetic_fleet` builds a deterministic
:class:`~repro.fleet.problem.FleetProblem` from a single seed:
heterogeneous hosts (speed factors spanning two hardware generations,
a minority carrying a capacity discount) and workloads drawn from a
small set of archetypes that differ in *share sensitivity* — exactly
the axis the paper's Figure 3 surfaces vary along:

* **cpu-bound** — cost falls steeply with more CPU share (the Q13-like
  regime where the statement is compute-limited);
* **balanced** — moderate sensitivity;
* **io-bound** — cost barely responds to CPU share (the Q4-like regime
  where the disk is the bottleneck);

plus a heavy-tailed magnitude so a few workloads dominate demand, as
real tenant populations do. The archetype mix is what makes placement
interesting: round-robin ignores both host speed and share
sensitivity, so a placer that clusters by curve shape and load-balances
by demand has real cost to recover.

All randomness flows through per-entity
:meth:`~repro.util.rng.DeterministicRng.fork` streams, so the scenario
is a pure function of ``(n_hosts, n_workloads, seed, grid)`` — which is
all the fleet journal needs to record to rebuild the problem on resume.
"""

from __future__ import annotations

from typing import Tuple

from repro.fleet.problem import FleetHost, FleetProblem
from repro.fleet.profile import PROFILE_LEVELS, CostProfile
from repro.util.errors import AllocationError
from repro.util.rng import DeterministicRng

#: (archetype name, base alpha). Alpha is the share-insensitive cost
#: fraction: cost(share) = base * (alpha + (1 - alpha) * 0.5 / share).
#: Alpha near 0 = CPU-bound (hyperbolic curve), near 1 = I/O-bound
#: (flat curve).
ARCHETYPES: Tuple[Tuple[str, float], ...] = (
    ("cpu-bound", 0.12),
    ("balanced", 0.45),
    ("io-bound", 0.85),
)


def _synthetic_profile(name: str, rng: DeterministicRng) -> CostProfile:
    archetype, alpha = ARCHETYPES[rng.zipf_index(len(ARCHETYPES), 0.0)]
    alpha = min(0.95, max(0.02, alpha + rng.gauss(0.0, 0.06)))
    base = rng.uniform(2.0, 8.0)
    if rng.uniform(0.0, 1.0) < 0.08:
        base *= 4.0  # the heavy tail: a few tenants dominate demand
    costs = [base * (alpha + (1.0 - alpha) * (0.5 / level))
             for level in PROFILE_LEVELS]
    return CostProfile(name, PROFILE_LEVELS, costs)


def _synthetic_host(index: int, rng: DeterministicRng) -> FleetHost:
    speed = rng.uniform(0.5, 2.0)
    capacity = 0.7 if rng.uniform(0.0, 1.0) < 0.15 else 1.0
    return FleetHost(name=f"host-{index:04d}", speed_factor=speed,
                     capacity_factor=capacity)


def synthetic_fleet(n_hosts: int, n_workloads: int, seed: int = 0,
                    grid: int = 16) -> FleetProblem:
    """A deterministic synthetic fleet scenario.

    Hosts and workloads each draw from their own forked stream, so the
    scenario with 100 hosts shares its first 50 hosts with the scenario
    of 50 — sizes can grow without reshuffling everything.
    """
    # AllocationError, not ValueError: the CLI maps it to the
    # documented usage-error exit code (2).
    if n_hosts <= 0:
        raise AllocationError("n_hosts must be positive")
    if n_workloads <= 0:
        raise AllocationError("n_workloads must be positive")
    root = DeterministicRng(seed)
    hosts = [_synthetic_host(i, root.fork(f"host/{i}"))
             for i in range(n_hosts)]
    profiles = [_synthetic_profile(f"wl-{i:05d}", root.fork(f"workload/{i}"))
                for i in range(n_workloads)]
    return FleetProblem(hosts=hosts, profiles=profiles, grid=grid)
