"""Deterministic workload clustering by cost-profile shape.

The fleet placer groups workloads whose cost curves have similar
*shape* (via :meth:`~repro.fleet.profile.CostProfile.features`) before
assigning them to hosts: workloads that respond the same way to share
changes pack well together, because the per-host allocation search can
trade shares among them without one tenant's cliff dominating.

The clusterer is Lloyd's k-means with two twists that make it fully
deterministic — no RNG, no seed, no tie-luck:

* **Farthest-point initialisation**: the first centroid is the feature
  vector with the largest L2 norm (ties broken by workload name); each
  subsequent centroid is the point farthest from all chosen centroids.
  This is the classic 2-approximation for k-center and needs no
  randomness.
* **Stable tie-breaking**: points equidistant to two centroids go to
  the lower cluster index; empty clusters are re-seeded with the point
  farthest from its current centroid.

Determinism matters beyond aesthetics: the fleet journal records only
the scenario, so resume re-clusters from scratch and must land on the
identical partition (asserted by the recovery tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.fleet.profile import CostProfile


def _distance(a: Sequence[float], b: Sequence[float]) -> float:
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


@dataclass(frozen=True)
class Clustering:
    """A deterministic partition of workloads into shape clusters."""

    k: int
    #: workload name -> cluster index in [0, k).
    assignments: Dict[str, int]
    centroids: Tuple[Tuple[float, ...], ...]
    #: Sum of squared distances to assigned centroids.
    inertia: float
    iterations: int

    def members(self, index: int) -> List[str]:
        """Workload names in cluster *index*, sorted."""
        return sorted(name for name, c in self.assignments.items()
                      if c == index)


def default_cluster_count(n_workloads: int) -> int:
    """The auto-k heuristic: ``round(sqrt(n/2))``, clamped to [1, 16]."""
    return max(1, min(16, round(math.sqrt(n_workloads / 2.0))))


def cluster_profiles(profiles: Sequence[CostProfile], k: int,
                     max_iterations: int = 25) -> Clustering:
    """Cluster *profiles* into *k* shape groups, deterministically."""
    if not profiles:
        raise ValueError("cannot cluster an empty profile list")
    if k <= 0:
        raise ValueError("k must be positive")
    ordered = sorted(profiles, key=lambda p: p.name)
    names = [p.name for p in ordered]
    points = [p.features() for p in ordered]
    k = min(k, len(points))

    centroids = _farthest_point_init(points, k)
    assignments = [0] * len(points)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        new_assignments = [_nearest(point, centroids) for point in points]
        _reseed_empty_clusters(points, new_assignments, centroids)
        if new_assignments == assignments and iterations > 1:
            break
        assignments = new_assignments
        centroids = _recompute_centroids(points, assignments, centroids)

    inertia = sum(_distance(point, centroids[c]) ** 2
                  for point, c in zip(points, assignments))
    return Clustering(
        k=k,
        assignments=dict(zip(names, assignments)),
        centroids=tuple(tuple(c) for c in centroids),
        inertia=inertia,
        iterations=iterations,
    )


def _farthest_point_init(points: List[Tuple[float, ...]],
                         k: int) -> List[Tuple[float, ...]]:
    # First centroid: largest norm; list order (sorted by name) breaks
    # ties, so the choice is stable across runs and processes.
    first = max(range(len(points)),
                key=lambda i: (sum(x * x for x in points[i]), -i))
    chosen = [first]
    while len(chosen) < k:
        best_index, best_dist = -1, -1.0
        for i, point in enumerate(points):
            if i in chosen:
                continue
            nearest = min(_distance(point, points[j]) for j in chosen)
            if nearest > best_dist:
                best_index, best_dist = i, nearest
        if best_index < 0:  # all remaining points coincide with centroids
            chosen.append(chosen[-1])
        else:
            chosen.append(best_index)
    return [points[i] for i in chosen]


def _nearest(point: Tuple[float, ...],
             centroids: List[Tuple[float, ...]]) -> int:
    best, best_dist = 0, float("inf")
    for index, centroid in enumerate(centroids):
        dist = _distance(point, centroid)
        if dist < best_dist - 1e-15:
            best, best_dist = index, dist
    return best


def _recompute_centroids(points: List[Tuple[float, ...]],
                         assignments: List[int],
                         old: List[Tuple[float, ...]]
                         ) -> List[Tuple[float, ...]]:
    dims = len(points[0])
    sums = [[0.0] * dims for _ in old]
    counts = [0] * len(old)
    for point, c in zip(points, assignments):
        counts[c] += 1
        for d in range(dims):
            sums[c][d] += point[d]
    return [tuple(s / counts[c] for s in sums[c]) if counts[c] else old[c]
            for c, _ in enumerate(old)]


def _reseed_empty_clusters(points: List[Tuple[float, ...]],
                           assignments: List[int],
                           centroids: List[Tuple[float, ...]]) -> None:
    """Give each empty cluster the point farthest from its centroid."""
    for c in range(len(centroids)):
        if c in assignments:
            continue
        candidates = [i for i, a in enumerate(assignments)
                      if assignments.count(a) > 1]
        if not candidates:
            return
        farthest = max(candidates, key=lambda i: (
            _distance(points[i], centroids[assignments[i]]), -i))
        assignments[farthest] = c
