"""The fleet design problem: hosts, workload profiles, and identity.

A :class:`FleetProblem` is the datacenter-scale analogue of
:class:`~repro.core.problem.VirtualizationDesignProblem`: instead of N
workloads on one machine, it holds hundreds of heterogeneous
:class:`FleetHost`\\ s and thousands of workload
:class:`~repro.fleet.profile.CostProfile`\\ s, and the placer decides
both *which host* each workload lands on and *what share* it gets
there.

Hosts are heterogeneous along two axes the paper's single-box model
cannot express:

* ``speed_factor`` — hardware speed relative to the reference lab
  machine (a 2× host halves every workload's cost);
* ``capacity_factor`` — the fraction of the host actually available to
  tenant VMs (co-resident infrastructure, maintenance headroom). It
  scales effective speed the same way but is tracked separately
  because operators set it per host, not per hardware generation.

:meth:`FleetProblem.fingerprint` hashes the complete problem into the
journal identity, so a resume against a different fleet is rejected
instead of silently producing a placement for the wrong datacenter.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.fleet.profile import CostProfile
from repro.util.errors import AllocationError
from repro.virt.machine import PhysicalMachine, laboratory_machine


@dataclass(frozen=True)
class FleetHost:
    """One physical host in the fleet."""

    name: str
    #: Hardware speed relative to the reference machine.
    speed_factor: float = 1.0
    #: Fraction of the host available to tenants (headroom discount).
    capacity_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.speed_factor <= 0:
            raise AllocationError(
                f"host {self.name!r}: speed_factor must be positive")
        if not 0.0 < self.capacity_factor <= 1.0:
            raise AllocationError(
                f"host {self.name!r}: capacity_factor must be in (0, 1]")

    @property
    def effective_speed(self) -> float:
        """Speed actually available to tenants."""
        return self.speed_factor * self.capacity_factor

    def machine(self) -> PhysicalMachine:
        """This host as a :class:`PhysicalMachine` for per-host search."""
        return laboratory_machine().scaled(self.effective_speed,
                                           name=self.name)

    def as_dict(self) -> dict:
        return {"name": self.name, "speed_factor": self.speed_factor,
                "capacity_factor": self.capacity_factor}


@dataclass(frozen=True)
class FleetProblem:
    """A fleet of hosts plus the workload profiles to place on them."""

    hosts: tuple
    profiles: tuple
    #: CPU-share grid resolution for the per-host allocation searches.
    grid: int = 16

    def __init__(self, hosts: Iterable[FleetHost],
                 profiles: Iterable[CostProfile], grid: int = 16):
        object.__setattr__(self, "hosts", tuple(hosts))
        object.__setattr__(self, "profiles", tuple(profiles))
        object.__setattr__(self, "grid", int(grid))
        if not self.hosts:
            raise AllocationError("fleet has no hosts")
        if not self.profiles:
            raise AllocationError("fleet has no workload profiles")
        if self.grid < 2:
            raise AllocationError("grid must be at least 2")
        host_names = [h.name for h in self.hosts]
        if len(set(host_names)) != len(host_names):
            raise AllocationError("host names must be unique")
        profile_names = [p.name for p in self.profiles]
        if len(set(profile_names)) != len(profile_names):
            raise AllocationError("workload names must be unique")
        if set(host_names) & set(profile_names):
            raise AllocationError(
                "host and workload names must not collide")

    # -- lookups -----------------------------------------------------------

    def host(self, name: str) -> FleetHost:
        for candidate in self.hosts:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no host named {name!r}")

    def profile(self, name: str) -> CostProfile:
        for candidate in self.profiles:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no workload named {name!r}")

    def host_names(self) -> Tuple[str, ...]:
        return tuple(h.name for h in self.hosts)

    def workload_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.profiles)

    def profiles_by_name(self) -> Dict[str, CostProfile]:
        return {p.name: p for p in self.profiles}

    # -- identity ----------------------------------------------------------

    def fingerprint(self) -> str:
        """A stable hash of the complete problem, for journal identity.

        Canonical JSON over every host and profile plus the grid; two
        problems fingerprint equal iff a resumed run would see exactly
        the same inputs. (Floats round-trip exactly through JSON, so
        this is bit-level identity, not approximate.)
        """
        payload = {
            "grid": self.grid,
            "hosts": [h.as_dict() for h in self.hosts],
            "profiles": [p.as_dict() for p in self.profiles],
        }
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
