"""Fleet placement: cluster, tune per host, reroute until converged.

:class:`FleetDesigner` generalizes the paper's one-machine design
problem to a datacenter. The structure is the divergent-design loop:

1. **Cluster** workloads by cost-curve shape
   (:mod:`repro.fleet.cluster`) so tenants that respond alike to share
   changes start out co-located.
2. **Assign** clusters to disjoint host groups sized by demand (fast
   hosts go to heavy clusters), then balance workloads within each
   group by projected load.
3. **Tune**: run the existing single-host allocation search
   (:mod:`repro.core.search`) inside every host — each host's search
   is an independent :class:`~repro.core.problem.
   VirtualizationDesignProblem` over a profile-backed cost model, so
   the per-host solves fan out over an
   :class:`~repro.parallel.engine.EvaluationEngine`.
4. **Reroute**: repeatedly move the worst-fit workloads (highest
   current cost) to the host where the *exact* re-solved pair of
   donor/recipient designs improves total fleet cost, until a round
   accepts no move or the relative improvement drops below tolerance.

Only strictly improving moves are applied, so the cost trajectory is
**monotonically non-increasing by construction** — the property tests
assert it, and :mod:`repro.fleet.supervisor` journals each fresh host
design so a killed run resumes to a bit-identical placement.

Determinism contract: every collection is iterated in sorted order,
ties break on names, and the engine only parallelizes the *compute* of
host designs (results are consumed in deterministic order regardless
of completion order). A run with 8 process workers journals the exact
byte sequence a serial run does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.cost_model import CostModel
from repro.core.problem import VirtualizationDesignProblem, WorkloadSpec
from repro.core.search import make_algorithm
from repro.fleet.cluster import Clustering, cluster_profiles, default_cluster_count
from repro.fleet.problem import FleetHost, FleetProblem
from repro.fleet.profile import CostProfile
from repro.obs import metrics
from repro.virt.resources import ResourceKind
from repro.workloads.workload import Workload

#: Strict-improvement threshold for accepting a reassignment move.
MOVE_EPSILON = 1e-9


class ProfileCostModel(CostModel):
    """Prices (workload, allocation) pairs from cost profiles.

    Cost is the profile's curve at the allocation's CPU share, divided
    by the host's effective speed — profiles are sampled on the
    reference machine, and a 2× host halves every cost. Pure
    arithmetic, so ``parallel_safe`` and cheap enough that per-host
    searches run serially inside one engine task.
    """

    kind = "fleet-profile"
    parallel_safe = True

    def __init__(self, profiles: Dict[str, CostProfile],
                 effective_speed: float):
        super().__init__()
        self._profiles = profiles
        self._speed = effective_speed

    def _cost(self, spec, allocation) -> float:
        profile = self._profiles[spec.name]
        return profile.cost_at(allocation.cpu) / self._speed


@dataclass(frozen=True)
class HostDesign:
    """The tuned allocation for one host's tenant set.

    ``tenants``, ``shares`` and ``costs`` are parallel tuples in
    sorted-tenant order, so equality is structural and the dataclass
    round-trips through the journal without loss.
    """

    host: str
    tenants: tuple
    shares: tuple
    costs: tuple

    @property
    def total_cost(self) -> float:
        return sum(self.costs)

    def cost_of(self, name: str) -> float:
        return self.costs[self.tenants.index(name)]

    def share_of(self, name: str) -> float:
        return self.shares[self.tenants.index(name)]

    def as_dict(self) -> dict:
        return {"host": self.host, "tenants": list(self.tenants),
                "shares": list(self.shares), "costs": list(self.costs),
                "cost": self.total_cost}

    @classmethod
    def from_dict(cls, payload: dict) -> "HostDesign":
        return cls(host=payload["host"],
                   tenants=tuple(payload["tenants"]),
                   shares=tuple(float(v) for v in payload["shares"]),
                   costs=tuple(float(v) for v in payload["costs"]))


def _solve_host_task(task) -> HostDesign:
    """Tune one host's allocation: the unit of fleet parallelism.

    A module-level pure function of picklable inputs
    ``(host, tenant_profiles, grid, algorithm)``, so the designer can
    fan host solves out over thread *and* process pools. Builds a
    single-host design problem whose specs carry one synthetic
    statement per tenant (the profile already encodes the workload's
    real statements) and searches CPU shares with the standard
    algorithms from :mod:`repro.core.search`.
    """
    host, profiles, grid, algorithm = task
    ordered = sorted(profiles, key=lambda p: p.name)
    specs = [WorkloadSpec(Workload(p.name, [p.name]), None)
             for p in ordered]
    problem = VirtualizationDesignProblem(
        machine=host.machine(), specs=specs,
        controlled_resources=(ResourceKind.CPU,))
    model = ProfileCostModel({p.name: p for p in ordered},
                             host.effective_speed)
    # The share grid must resolve at least one unit per tenant; give
    # each tenant room to trade a few units beyond the equal split.
    host_grid = max(grid, 2 * len(ordered))
    result = make_algorithm(algorithm, host_grid).search(problem, model)
    names = tuple(p.name for p in ordered)
    return HostDesign(
        host=host.name,
        tenants=names,
        shares=tuple(result.allocation.vector_for(n).cpu for n in names),
        costs=tuple(result.per_workload_costs[n] for n in names),
    )


@dataclass(frozen=True)
class FleetDesign:
    """The converged output of one fleet placement run."""

    #: workload name -> host name.
    assignment: Dict[str, str]
    #: host name -> tuned design (hosts with no tenants are absent).
    host_designs: Dict[str, HostDesign]
    total_cost: float
    #: Total fleet cost after initial placement and after each
    #: reassignment round; monotonically non-increasing.
    cost_trajectory: tuple
    rounds: int
    moves: int
    converged: bool
    #: workload name -> cluster index (the shape clustering).
    clusters: Dict[str, int] = field(default_factory=dict)
    n_clusters: int = 0

    def summary(self) -> dict:
        occupied = len(self.host_designs)
        return {
            "workloads": len(self.assignment),
            "hosts_occupied": occupied,
            "clusters": self.n_clusters,
            "total_cost": self.total_cost,
            "initial_cost": self.cost_trajectory[0],
            "rounds": self.rounds,
            "moves": self.moves,
            "converged": self.converged,
            "trajectory": list(self.cost_trajectory),
        }


def round_robin_assignment(problem: FleetProblem) -> Dict[str, str]:
    """The baseline placement: workloads dealt to hosts cyclically.

    Ignores host speed, capacity, and curve shape — exactly what a
    placement-unaware operator would do, and what ``BENCH_fleet.json``
    measures the designer against.
    """
    hosts = problem.host_names()
    return {name: hosts[i % len(hosts)]
            for i, name in enumerate(problem.workload_names())}


class FleetDesigner:
    """Runs the cluster → tune → reroute loop over a fleet problem."""

    def __init__(self, problem: FleetProblem,
                 clusters: Optional[int] = None,
                 algorithm: str = "greedy",
                 engine=None,
                 max_rounds: int = 8,
                 move_fraction: float = 0.05,
                 candidates_per_move: int = 4,
                 tolerance: float = 1e-6,
                 recorder: Optional[Callable[[HostDesign], None]] = None):
        if max_rounds < 0:
            raise ValueError("max_rounds must be non-negative")
        if not 0.0 < move_fraction <= 1.0:
            raise ValueError("move_fraction must be in (0, 1]")
        if candidates_per_move < 1:
            raise ValueError("candidates_per_move must be positive")
        self._problem = problem
        self._clusters = clusters
        self._algorithm = algorithm
        self._engine = engine
        self._max_rounds = max_rounds
        self._move_fraction = move_fraction
        self._candidates = candidates_per_move
        self._tolerance = tolerance
        #: Called once per *fresh* host design, in deterministic order,
        #: before the design enters the cache — the supervisor's
        #: journal hook. A recorder that raises (the simulated kill)
        #: leaves the design un-cached, so resume re-solves it.
        self._recorder = recorder
        self._profiles = problem.profiles_by_name()
        self._demands = {name: p.demand()
                         for name, p in self._profiles.items()}
        #: (host name, sorted tenant tuple) -> HostDesign.
        self._cache: Dict[Tuple[str, tuple], HostDesign] = {}

    # -- cache seeding (journal replay) ------------------------------------

    def seed_host_design(self, design: HostDesign) -> None:
        """Install a replayed design so the solve becomes a cache hit."""
        self._cache[(design.host, design.tenants)] = design

    # -- host solving ------------------------------------------------------

    def _solve_many(self, pairs: Sequence[Tuple[str, tuple]]
                    ) -> List[Optional[HostDesign]]:
        """Designs for (host name, tenant tuple) pairs, cache-assisted.

        Cache misses are computed — fanned out over the engine when one
        is configured — then recorded and cached in the deterministic
        order of first appearance, so the journal sequence does not
        depend on worker count or completion order. An empty tenant
        tuple yields ``None`` (an idle host costs nothing).
        """
        todo: List[Tuple[str, tuple]] = []
        seen = set()
        hits = 0
        for host_name, tenants in pairs:
            key = (host_name, tenants)
            if not tenants:
                continue
            if key in self._cache or key in seen:
                hits += 1
            else:
                todo.append(key)
                seen.add(key)
        if hits:
            metrics.counter("fleet.host_design_cache_hits").inc(hits)
        if todo:
            tasks = [(self._problem.host(host_name),
                      tuple(self._profiles[t] for t in tenants),
                      self._problem.grid, self._algorithm)
                     for host_name, tenants in todo]
            if self._engine is not None and len(tasks) > 1:
                computed = self._engine.map(_solve_host_task, tasks)
            else:
                computed = [_solve_host_task(task) for task in tasks]
            for key, design in zip(todo, computed):
                if self._recorder is not None:
                    self._recorder(design)
                self._cache[key] = design
                metrics.counter("fleet.host_designs").inc()
        return [self._cache[(h, t)] if t else None for h, t in pairs]

    # -- initial placement -------------------------------------------------

    def _host_groups(self, clustering: Clustering
                     ) -> Dict[int, List[FleetHost]]:
        """Disjoint host groups per cluster, sized by cluster demand.

        Hosts are sorted fastest-first and dealt to clusters in
        demand-descending order, counts apportioned by largest
        remainder with a floor of one host per non-empty cluster. When
        there are fewer hosts than clusters every cluster shares the
        whole fleet (the reroute loop untangles the rest).
        """
        hosts = sorted(self._problem.hosts,
                       key=lambda h: (-h.effective_speed, h.name))
        demand_of = {
            c: sum(self._demands[n] for n in clustering.members(c))
            for c in range(clustering.k)
        }
        active = sorted((c for c in demand_of if demand_of[c] > 0),
                        key=lambda c: (-demand_of[c], c))
        if not active or len(hosts) < len(active):
            return {c: hosts for c in range(clustering.k)}
        total = sum(demand_of[c] for c in active)
        quotas = {c: demand_of[c] / total * len(hosts) for c in active}
        counts = {c: max(1, int(quotas[c])) for c in active}
        # Largest-remainder correction toward exactly len(hosts).
        while sum(counts.values()) > len(hosts):
            shrink = max((c for c in active if counts[c] > 1),
                         key=lambda c: (counts[c] - quotas[c], c))
            counts[shrink] -= 1
        grow_order = sorted(active,
                            key=lambda c: (-(quotas[c] - counts[c]), c))
        index = 0
        while sum(counts.values()) < len(hosts):
            counts[grow_order[index % len(grow_order)]] += 1
            index += 1
        groups: Dict[int, List[FleetHost]] = {}
        cursor = 0
        for c in active:
            groups[c] = hosts[cursor:cursor + counts[c]]
            cursor += counts[c]
        for c in range(clustering.k):
            groups.setdefault(c, hosts)
        return groups

    def _initial_assignment(self, clustering: Clustering
                            ) -> Dict[str, str]:
        """Balance each cluster's workloads across its host group.

        Workloads go heaviest-first to the host whose projected load
        (demand over effective speed) stays smallest — the standard
        LPT greedy, deterministic via name tie-breaks.
        """
        assignment: Dict[str, str] = {}
        groups = self._host_groups(clustering)
        loads = {h.name: 0.0 for h in self._problem.hosts}
        speed = {h.name: h.effective_speed for h in self._problem.hosts}
        for c in range(clustering.k):
            members = sorted(clustering.members(c),
                             key=lambda n: (-self._demands[n], n))
            group = groups[c]
            for name in members:
                target = min(group, key=lambda h: (
                    loads[h.name] + self._demands[name] / speed[h.name],
                    h.name))
                assignment[name] = target.name
                loads[target.name] += self._demands[name] / speed[target.name]
        return assignment

    # -- evaluation --------------------------------------------------------

    def _tenant_map(self, assignment: Dict[str, str]
                    ) -> Dict[str, tuple]:
        tenants: Dict[str, List[str]] = {
            h.name: [] for h in self._problem.hosts}
        for name in sorted(assignment):
            tenants[assignment[name]].append(name)
        return {host: tuple(sorted(names))
                for host, names in tenants.items()}

    def evaluate_assignment(self, assignment: Dict[str, str]
                            ) -> Tuple[float, Dict[str, HostDesign]]:
        """Exact total cost of *assignment* via per-host tuning.

        Used both for the designer's own iterations and to price
        baselines (round-robin) with identical per-host search effort.
        """
        tenant_map = self._tenant_map(assignment)
        pairs = sorted(tenant_map.items())
        designs = self._solve_many(pairs)
        host_designs = {host: design
                        for (host, _), design in zip(pairs, designs)
                        if design is not None}
        total = sum(d.total_cost for d in host_designs.values())
        return total, host_designs

    # -- the reroute loop --------------------------------------------------

    def design(self) -> FleetDesign:
        """Run cluster → assign → tune → reroute to convergence."""
        problem = self._problem
        n = len(problem.profiles)
        k = self._clusters or default_cluster_count(n)
        clustering = cluster_profiles(problem.profiles, k)
        metrics.gauge("fleet.hosts").set(len(problem.hosts))
        metrics.gauge("fleet.workloads").set(n)
        metrics.gauge("fleet.clusters").set(clustering.k)

        assignment = self._initial_assignment(clustering)
        total, host_designs = self.evaluate_assignment(assignment)
        trajectory = [total]
        moves_total = 0
        rounds = 0
        converged = False

        for _round in range(self._max_rounds):
            rounds += 1
            metrics.counter("fleet.reassign_rounds").inc()
            previous = total
            total, moved = self._reassign_round(
                assignment, host_designs, total)
            moves_total += moved
            trajectory.append(total)
            if moved == 0:
                converged = True
                break
            if previous > 0 and (previous - total) / previous <= self._tolerance:
                converged = True
                break

        if self._max_rounds == 0:
            converged = True
        return FleetDesign(
            assignment=dict(assignment),
            host_designs=dict(host_designs),
            total_cost=total,
            cost_trajectory=tuple(trajectory),
            rounds=rounds,
            moves=moves_total,
            converged=converged,
            clusters=dict(clustering.assignments),
            n_clusters=clustering.k,
        )

    def _reassign_round(self, assignment: Dict[str, str],
                        host_designs: Dict[str, HostDesign],
                        total: float) -> Tuple[float, int]:
        """One reroute round: move worst-fit workloads if it pays.

        Mutates *assignment* and *host_designs* in place; returns the
        new total and the number of accepted moves. Only strictly
        improving moves (delta < -:data:`MOVE_EPSILON`) are applied, so
        the caller's trajectory cannot increase.
        """
        n = len(assignment)
        budget = max(1, math.ceil(n * self._move_fraction))
        worst = sorted(
            assignment,
            key=lambda w: (-host_designs[assignment[w]].cost_of(w), w)
        )[:budget]
        tenant_map = self._tenant_map(assignment)
        moved = 0

        for workload in worst:
            source = assignment[workload]
            candidates = self._candidate_hosts(workload, source,
                                               host_designs)
            if not candidates:
                continue
            metrics.counter("fleet.moves_considered").inc(len(candidates))
            source_without = tuple(t for t in tenant_map[source]
                                   if t != workload)
            pairs = [(source, source_without)]
            pairs += [(h, tuple(sorted(tenant_map[h] + (workload,))))
                      for h in candidates]
            designs = self._solve_many(pairs)
            source_design = designs[0]
            old_source = host_designs[source].total_cost
            old_src_less = source_design.total_cost if source_design else 0.0

            best_host, best_delta, best_design = None, -MOVE_EPSILON, None
            for host, design in zip(candidates, designs[1:]):
                old_target = (host_designs[host].total_cost
                              if host in host_designs else 0.0)
                delta = ((old_src_less + design.total_cost)
                         - (old_source + old_target))
                if delta < best_delta:
                    best_host, best_delta, best_design = host, delta, design
            if best_host is None:
                continue

            # Apply the move and refresh the in-loop bookkeeping.
            assignment[workload] = best_host
            tenant_map[source] = source_without
            tenant_map[best_host] = best_design.tenants
            if source_design is None:
                host_designs.pop(source, None)
            else:
                host_designs[source] = source_design
            host_designs[best_host] = best_design
            total += best_delta
            moved += 1
            metrics.counter("fleet.moves_accepted").inc()
        return total, moved

    def _candidate_hosts(self, workload: str, source: str,
                         host_designs: Dict[str, HostDesign]) -> List[str]:
        """Cheap proxy ranking of target hosts for one workload.

        Projected marginal load — current host cost plus the
        workload's demand over the host's speed — without re-solving;
        the exact evaluation happens only for the top few candidates.
        """
        demand = self._demands[workload]
        scored = []
        for host in self._problem.hosts:
            if host.name == source:
                continue
            current = (host_designs[host.name].total_cost
                       if host.name in host_designs else 0.0)
            proxy = current + demand / host.effective_speed
            scored.append((proxy, host.name))
        scored.sort()
        return [name for _, name in scored[:self._candidates]]
