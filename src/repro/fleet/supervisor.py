"""Crash-recoverable fleet placement runs.

A fleet run over hundreds of hosts solves thousands of per-host
allocation searches; :class:`FleetSupervisor` journals each completed
host design into a :class:`~repro.recovery.journal.RunJournal` so a
killed run resumes without repeating paid-for work — and, because the
placement loop is deterministic, resumes to a **bit-identical** final
placement (asserted by ``tests/fleet/test_supervisor.py`` exactly the
way the single-host equivalence suite asserts it).

The unit of work is one fresh host design: the designer's recorder
hook fires in deterministic order before each design enters the solve
cache, the journal commits it durably, and a kill between compute and
commit (simulated with ``max_units`` through
:class:`~repro.recovery.journal.BudgetedJournal`) simply re-runs that
one unit on resume. Replay seeds the solve cache, so every journaled
design is a cache hit and the resumed run's journal appends continue
at exactly the sequence number the killed run stopped at.

Journal identity covers the problem fingerprint (hosts, profiles,
grid), the clustering and search knobs, and the synthetic-scenario
parameters when the problem came from
:func:`~repro.fleet.scenario.synthetic_fleet` — the CLI's ``repro
resume`` rebuilds the problem from those recorded parameters alone.
Worker count and pool kind are recorded for observability but are
deliberately *not* identity: a run journaled at 8 process workers may
resume serially and still match bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.fleet.placement import FleetDesign, FleetDesigner, HostDesign
from repro.fleet.problem import FleetProblem
from repro.recovery.journal import (
    BudgetedJournal,
    RunJournal,
    UnitBudgetExceeded,
)
from repro.util.errors import RecoveryError


@dataclass
class FleetRun:
    """What one :meth:`FleetSupervisor.run` invocation produced."""

    #: The converged placement, or ``None`` when the run was killed.
    design: Optional[FleetDesign]
    #: True when the run finished (a ``result`` record is journaled).
    completed: bool = False
    #: Host designs replayed from the journal.
    replayed_units: int = 0
    #: Host designs freshly computed and committed by this invocation.
    new_units: int = 0


class FleetSupervisor:
    """Drives a journaled, resumable fleet placement run."""

    def __init__(self, problem: FleetProblem, journal_path,
                 scenario: Optional[Dict[str, Any]] = None,
                 clusters: Optional[int] = None,
                 algorithm: str = "greedy",
                 max_rounds: int = 8,
                 move_fraction: float = 0.05,
                 candidates_per_move: int = 4,
                 max_units: Optional[int] = None,
                 engine=None,
                 extra_meta: Optional[Dict[str, Any]] = None):
        self._problem = problem
        self._journal_path = journal_path
        #: The synthetic-scenario parameters that rebuilt *problem*, if
        #: any; recorded in the meta so ``repro resume`` can
        #: reconstruct the problem without the caller.
        self._scenario = dict(scenario) if scenario else None
        self._clusters = clusters
        self._algorithm = algorithm
        self._max_rounds = max_rounds
        self._move_fraction = move_fraction
        self._candidates = candidates_per_move
        self._max_units = max_units
        self._engine = engine
        self._extra_meta = dict(extra_meta or {})

    # -- run identity ------------------------------------------------------

    def _meta(self) -> Dict[str, Any]:
        meta = {
            "run_kind": "fleet",
            "fingerprint": self._problem.fingerprint(),
            "hosts": len(self._problem.hosts),
            "workloads": len(self._problem.profiles),
            "grid": self._problem.grid,
            "clusters": self._clusters,
            "algorithm": self._algorithm,
            "max_rounds": self._max_rounds,
            "move_fraction": self._move_fraction,
            "candidates_per_move": self._candidates,
        }
        if self._scenario is not None:
            meta["scenario"] = dict(self._scenario)
        meta.update(self._extra_meta)
        return meta

    _IDENTITY_KEYS = ("run_kind", "fingerprint", "grid", "clusters",
                      "algorithm", "max_rounds", "move_fraction",
                      "candidates_per_move")

    def _check_meta(self, recorded: Dict[str, Any]) -> None:
        expected = self._meta()
        mismatched = sorted(
            key for key in self._IDENTITY_KEYS
            if key in recorded and recorded[key] != expected[key]
        )
        if mismatched:
            raise RecoveryError(
                f"journal {self._journal_path} was written by a different "
                f"fleet run: mismatched {', '.join(mismatched)} "
                f"(resume must use the same fleet, clustering, and search)")

    # -- the run -----------------------------------------------------------

    def run(self, resume: bool = False) -> FleetRun:
        """Execute (or resume) the placement run."""
        if resume:
            journal = RunJournal.open(self._journal_path)
            self._check_meta(journal.meta)
        else:
            journal = RunJournal.create(self._journal_path, self._meta())

        budgeted = BudgetedJournal(journal, self._max_units)

        def recorder(design: HostDesign) -> None:
            budgeted.append("host-design", design.as_dict())

        designer = FleetDesigner(
            self._problem,
            clusters=self._clusters,
            algorithm=self._algorithm,
            engine=self._engine,
            max_rounds=self._max_rounds,
            move_fraction=self._move_fraction,
            candidates_per_move=self._candidates,
            recorder=recorder,
        )
        replayed = self._replay(journal, designer)
        prior_result = journal.records_of("result")

        try:
            design = designer.design()
        except UnitBudgetExceeded:
            return FleetRun(design=None, completed=False,
                            replayed_units=replayed,
                            new_units=budgeted.new_units)

        if not prior_result:
            # The result commits to the raw journal: it is the finish
            # line, not a unit the kill simulation may interrupt.
            journal.append("result", self._result_record(design))
        return FleetRun(design=design, completed=True,
                        replayed_units=replayed,
                        new_units=budgeted.new_units)

    # -- replay ------------------------------------------------------------

    def _replay(self, journal: RunJournal,
                designer: FleetDesigner) -> int:
        known = set(self._problem.host_names())
        workloads = set(self._problem.workload_names())
        replayed = 0
        for record in journal.records_of("host-design"):
            design = HostDesign.from_dict(record.data)
            if design.host not in known:
                raise RecoveryError(
                    f"journal host-design names unknown host "
                    f"{design.host!r}")
            unknown = set(design.tenants) - workloads
            if unknown:
                raise RecoveryError(
                    f"journal host-design names unknown workload(s) "
                    f"{sorted(unknown)}")
            designer.seed_host_design(design)
            replayed += 1
        return replayed

    @staticmethod
    def _result_record(design: FleetDesign) -> Dict[str, Any]:
        return {
            "total_cost": design.total_cost,
            "rounds": design.rounds,
            "moves": design.moves,
            "converged": design.converged,
            "trajectory": list(design.cost_trajectory),
            "assignment": dict(sorted(design.assignment.items())),
        }
