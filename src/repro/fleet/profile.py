"""Workload cost profiles: the fleet layer's unit of currency.

The single-host design problem evaluates a workload's cost at a
candidate allocation through the full what-if stack (optimizer cost
model over calibrated parameters, or a fitted surrogate). At fleet
scale — thousands of workloads across hundreds of hosts — the placement
loop cannot afford a what-if call per (workload, host, share) triple.
Instead each workload is summarized once into a :class:`CostProfile`:
its predicted cost sampled at a fixed ladder of CPU shares
(:data:`PROFILE_LEVELS`). The fleet layer then works entirely in
profile space:

* :meth:`CostProfile.cost_at` interpolates the ladder to price any
  share, so per-host allocation searches stay exact-to-the-profile;
* :meth:`CostProfile.features` normalizes the curve into a *shape*
  vector (how share-sensitive the workload is, independent of its
  magnitude) — the clustering distance in :mod:`repro.fleet.cluster`;
* :meth:`CostProfile.demand` collapses the curve into one magnitude
  number used for load-balancing heuristics.

Profiles can be synthesized (:mod:`repro.fleet.scenario`) or derived
from any :class:`~repro.core.cost_model.CostModel` via
:meth:`CostProfile.from_cost_model`, which ties the fleet layer to the
same calibrated stack the single-host designer uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

#: The share ladder profiles are sampled at. Denser at small shares,
#: where cost curves bend hardest (the paper's Figure 3 surface is
#: steepest near the origin for I/O-bound workloads).
PROFILE_LEVELS: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0)


@dataclass(frozen=True)
class CostProfile:
    """Predicted cost of one workload as a function of its CPU share."""

    name: str
    levels: tuple
    costs: tuple

    def __init__(self, name: str, levels: Iterable[float],
                 costs: Iterable[float]):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "levels",
                           tuple(float(v) for v in levels))
        object.__setattr__(self, "costs", tuple(float(v) for v in costs))
        if not self.levels:
            raise ValueError(f"profile {name!r} has no levels")
        if len(self.levels) != len(self.costs):
            raise ValueError(
                f"profile {name!r}: {len(self.levels)} levels but "
                f"{len(self.costs)} costs")
        if any(b <= a for a, b in zip(self.levels, self.levels[1:])):
            raise ValueError(
                f"profile {name!r}: levels must be strictly ascending")
        if self.levels[0] <= 0.0 or self.levels[-1] > 1.0:
            raise ValueError(
                f"profile {name!r}: levels must lie in (0, 1]")
        if any(c <= 0.0 for c in self.costs):
            raise ValueError(f"profile {name!r}: costs must be positive")

    # -- pricing -----------------------------------------------------------

    def cost_at(self, share: float) -> float:
        """Predicted cost at a CPU *share*, interpolating the ladder.

        Between sampled levels the curve is piecewise linear. Above the
        top level the cost clamps to the top sample (more CPU than the
        profile ever measured cannot help further). Below the bottom
        level it extrapolates hyperbolically — ``cost ~ 1/share``, the
        asymptotic shape of any CPU-starved workload — so packing too
        many tenants onto one host is priced as the disaster it is
        rather than clamped into looking free.
        """
        if share <= 0.0:
            raise ValueError(
                f"profile {self.name!r}: share must be positive")
        levels, costs = self.levels, self.costs
        if share <= levels[0]:
            return costs[0] * (levels[0] / share)
        if share >= levels[-1]:
            return costs[-1]
        for i in range(1, len(levels)):
            if share <= levels[i]:
                span = levels[i] - levels[i - 1]
                frac = (share - levels[i - 1]) / span
                return costs[i - 1] + frac * (costs[i] - costs[i - 1])
        return costs[-1]  # pragma: no cover - unreachable

    # -- clustering features ----------------------------------------------

    def features(self) -> Tuple[float, ...]:
        """The cost curve normalized by its mean: a pure *shape* vector.

        Two workloads whose curves differ only by a scalar factor (one
        runs the same queries against twice the data) get identical
        features and cluster together — what matters for co-location is
        how a workload *responds* to share changes, not how big it is.
        """
        mean = sum(self.costs) / len(self.costs)
        return tuple(c / mean for c in self.costs)

    def demand(self) -> float:
        """A scalar magnitude proxy: the mean cost across the ladder."""
        return sum(self.costs) / len(self.costs)

    # -- construction from the real stack ---------------------------------

    @classmethod
    def from_cost_model(cls, spec, cost_model,
                        levels: Sequence[float] = PROFILE_LEVELS,
                        fixed_memory: float = 0.5, fixed_io: float = 0.5,
                        engine: Optional[object] = None) -> "CostProfile":
        """Sample *spec*'s cost curve out of a single-host cost model.

        Evaluates the workload at every ladder level (memory and I/O
        shares held fixed) in one :meth:`~repro.core.cost_model.CostModel.
        cost_many` batch, so a parallel-safe model fans the samples out
        over *engine*.
        """
        from repro.virt.resources import ResourceVector

        pairs = [(spec, ResourceVector.of(cpu=level, memory=fixed_memory,
                                          io=fixed_io))
                 for level in levels]
        outcome = cost_model.cost_many(pairs, engine=engine)
        return cls(spec.name, levels, outcome.costs)

    def as_dict(self) -> dict:
        return {"name": self.name, "levels": list(self.levels),
                "costs": list(self.costs)}

    @classmethod
    def from_dict(cls, payload: dict) -> "CostProfile":
        return cls(payload["name"], payload["levels"], payload["costs"])

    def __repr__(self) -> str:
        return (f"CostProfile({self.name!r}, {len(self.levels)} levels, "
                f"demand={self.demand():.3g})")
