"""Fleet-scale placement: the datacenter layer above the paper.

The paper tunes N virtual machines on *one* physical host. This
package generalizes to hundreds of heterogeneous hosts and thousands
of workloads with a cluster → tune → reroute loop: workloads are
clustered by cost-curve shape, clusters are assigned to host groups by
demand, the existing single-host allocation search tunes every host
(fanned out over an :class:`~repro.parallel.engine.EvaluationEngine`),
and a reassignment loop moves worst-fit workloads between hosts until
total fleet cost converges. See ``docs/fleet.md`` for the guide.
"""

from repro.fleet.cluster import (
    Clustering,
    cluster_profiles,
    default_cluster_count,
)
from repro.fleet.placement import (
    FleetDesign,
    FleetDesigner,
    HostDesign,
    ProfileCostModel,
    round_robin_assignment,
)
from repro.fleet.problem import FleetHost, FleetProblem
from repro.fleet.profile import PROFILE_LEVELS, CostProfile
from repro.fleet.scenario import synthetic_fleet
from repro.fleet.supervisor import FleetRun, FleetSupervisor

__all__ = [
    "Clustering",
    "cluster_profiles",
    "default_cluster_count",
    "FleetDesign",
    "FleetDesigner",
    "HostDesign",
    "ProfileCostModel",
    "round_robin_assignment",
    "FleetHost",
    "FleetProblem",
    "PROFILE_LEVELS",
    "CostProfile",
    "synthetic_fleet",
    "FleetRun",
    "FleetSupervisor",
]
