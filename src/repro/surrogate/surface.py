"""The parameter surface: ``P(R)`` for *any* allocation, in O(1).

A :class:`ParameterSurface` is the calibration surrogate the designer
queries instead of running experiments: it holds the calibrated
parameters at a complete lattice of allocation knots (the cross product
of per-axis share levels over CPU x memory x I/O) and answers
``params_for(R)`` for arbitrary allocations by multilinear
interpolation between the surrounding knots. Lookups cost one binary
search per axis plus an eight-corner blend — O(log knots) bracketing,
O(1) arithmetic — no matter how fine the lattice is, which is what
makes continuous-allocation search affordable (see
``docs/surrogate.md``).

Blending happens in the *time* domain: the ratio parameters are
per-unit times divided by ``T_seq``, and both numerator and denominator
vary with the allocation, so interpolating ratios directly compounds
their curvatures. :func:`blend_corners` interpolates the underlying
unit times and re-normalizes — the same rule
:meth:`repro.calibration.cache.CalibrationCache._try_interpolate` has
always used (it now delegates here).

Guard rails
-----------
* **Monotonicity clamps**: every blended parameter is clamped to the
  [min, max] range of the corner values that produced it, so the
  re-normalization step can never push a prediction outside the locally
  observed trend (``clamp=True`` in :func:`blend_corners`).
* **Extrapolation guards**: a query outside the calibrated hull is
  clamped, per axis, onto the hull boundary before interpolating —
  linear *extrapolation* of a calibrated surface is unbounded nonsense
  and is never performed. Clamped lookups are counted separately so a
  run report shows when a search wandered off the fitted region.

Accounting
----------
Every lookup increments exactly one ``surrogate.lookups`` counter
(labelled ``result=hit|interpolated|clamped``): ``hit`` when the query
lands exactly on a knot, ``interpolated`` between knots, ``clamped``
when an extrapolation guard fired first. The counters surface in run
reports next to the calibration-cache accounting (see
``docs/observability.md``).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.obs import metrics
from repro.optimizer.params import OptimizerParameters
from repro.util.errors import SurrogateError
from repro.virt.resources import ResourceVector

#: Share coordinates are quantized to this many decimals, matching the
#: calibration cache's key quantization.
KEY_DECIMALS = 4

#: Axis names in canonical knot order.
AXIS_NAMES = ("cpu", "memory", "io")

#: The parameters blended in the time domain (everything except the
#: pinned ``seq_page_cost`` and the integer capacity fields).
RATIO_NAMES = ("random_page_cost", "cpu_tuple_cost",
               "cpu_index_tuple_cost", "cpu_operator_cost",
               "cpu_like_byte_cost")

Knot = Tuple[float, float, float]


def knot_key(shares: Iterable[float]) -> Knot:
    """Canonical (rounded) knot coordinates."""
    key = tuple(round(float(s), KEY_DECIMALS) for s in shares)
    if len(key) != 3:
        raise SurrogateError("allocation knots must have 3 shares")
    return key


def blend_corners(corners: Sequence[Tuple[OptimizerParameters, float]],
                  clamp: bool = True) -> OptimizerParameters:
    """Weighted blend of calibrated corner parameters, in the time domain.

    *corners* pairs each corner's parameters with its (non-negative)
    interpolation weight; weights are normalized here. With *clamp*,
    each blended ratio parameter is clamped to the [min, max] of the
    corner values — the monotonicity guard (module docstring).
    """
    total = sum(weight for _params, weight in corners)
    if not corners or total <= 0:
        raise SurrogateError("corner blend needs positive total weight")
    blended_times: Dict[str, float] = {name: 0.0 for name in RATIO_NAMES}
    blended_t_seq = 0.0
    blended_cache = 0.0
    blended_sort = 0.0
    for params, weight in corners:
        share = weight / total
        blended_t_seq += params.seconds_per_seq_page * share
        blended_cache += params.effective_cache_size * share
        blended_sort += params.sort_mem_pages * share
        values = params.as_dict()
        for name in RATIO_NAMES:
            blended_times[name] += (
                values[name] * params.seconds_per_seq_page * share
            )
    ratios = {name: blended_times[name] / blended_t_seq
              for name in RATIO_NAMES}
    if clamp:
        for name in RATIO_NAMES:
            observed = [params.as_dict()[name] for params, _w in corners]
            ratios[name] = min(max(ratios[name], min(observed)),
                               max(observed))
    return OptimizerParameters(
        seq_page_cost=1.0,
        random_page_cost=ratios["random_page_cost"],
        cpu_tuple_cost=ratios["cpu_tuple_cost"],
        cpu_index_tuple_cost=ratios["cpu_index_tuple_cost"],
        cpu_operator_cost=ratios["cpu_operator_cost"],
        cpu_like_byte_cost=ratios["cpu_like_byte_cost"],
        effective_cache_size=int(blended_cache),
        sort_mem_pages=int(blended_sort),
        seconds_per_seq_page=blended_t_seq,
    )


class ParameterSurface:
    """A fitted multilinear parameter surface over a complete lattice."""

    #: On-disk serialization format (embedded in cache v3 files).
    FORMAT = "repro-surrogate-fit/1"

    def __init__(self, knots: Mapping[Knot, OptimizerParameters],
                 tolerance: Optional[float] = None):
        if not knots:
            raise SurrogateError("a parameter surface needs at least one knot")
        self._knots: Dict[Knot, OptimizerParameters] = {
            knot_key(knot): params for knot, params in knots.items()
        }
        self._axes: List[List[float]] = [
            sorted({knot[axis] for knot in self._knots})
            for axis in range(3)
        ]
        expected = 1
        for values in self._axes:
            expected *= len(values)
        if len(self._knots) != expected:
            missing = [
                knot for knot in self._iter_lattice()
                if knot not in self._knots
            ]
            raise SurrogateError(
                f"surface lattice is incomplete: {len(self._knots)} knots "
                f"for a {'x'.join(str(len(a)) for a in self._axes)} grid; "
                f"missing e.g. {missing[0] if missing else '?'}")
        #: The cross-validation tolerance the fit was refined to (None
        #: when the surface was built without refinement).
        self.tolerance = tolerance

    def _iter_lattice(self):
        from itertools import product
        return (knot for knot in product(*self._axes))

    # -- introspection ------------------------------------------------------

    @property
    def knots(self) -> List[Knot]:
        """All knot coordinates, sorted."""
        return sorted(self._knots)

    @property
    def n_knots(self) -> int:
        return len(self._knots)

    def axis_levels(self, axis: int) -> Tuple[float, ...]:
        """The calibrated share levels along *axis* (0=cpu, 1=mem, 2=io)."""
        return tuple(self._axes[axis])

    def knot_params(self, knot: Iterable[float]) -> OptimizerParameters:
        """Exact calibrated parameters at a knot (KeyError if absent)."""
        return self._knots[knot_key(knot)]

    def covers(self, allocation: ResourceVector) -> bool:
        """Whether *allocation* lies inside the calibrated hull."""
        target = knot_key(allocation.as_tuple())
        return all(
            self._axes[axis][0] - 1e-12 <= target[axis]
            <= self._axes[axis][-1] + 1e-12
            for axis in range(3)
        )

    # -- lookup -------------------------------------------------------------

    def params_for(self, allocation: ResourceVector) -> OptimizerParameters:
        """``P(R)`` for any allocation: knot hit, interpolation, or a
        hull-clamped interpolation — never a fresh experiment."""
        target = knot_key(allocation.as_tuple())
        clamped = [
            min(max(target[axis], self._axes[axis][0]), self._axes[axis][-1])
            for axis in range(3)
        ]
        guard_fired = tuple(clamped) != target
        exact = self._knots.get(tuple(clamped))
        if exact is not None:
            result = "clamped" if guard_fired else "hit"
            metrics.counter("surrogate.lookups", result=result).inc()
            return exact
        corners: List[Tuple[OptimizerParameters, float]] = []
        brackets = []
        for axis in range(3):
            values = self._axes[axis]
            pos = bisect_left(values, clamped[axis])
            if pos < len(values) and abs(values[pos] - clamped[axis]) <= 1e-12:
                brackets.append((values[pos], values[pos]))
            else:
                brackets.append((values[pos - 1], values[pos]))
        from itertools import product
        for corner in product(*brackets):
            weight = 1.0
            for axis in range(3):
                lo, hi = brackets[axis]
                if hi == lo:
                    fraction = 0.0
                else:
                    fraction = (clamped[axis] - lo) / (hi - lo)
                weight *= (1.0 - fraction) if corner[axis] == lo else fraction
            if weight > 0:
                corners.append((self._knots[corner], weight))
        metrics.counter(
            "surrogate.lookups",
            result="clamped" if guard_fired else "interpolated").inc()
        return blend_corners(corners, clamp=True)

    # -- persistence --------------------------------------------------------

    def as_dict(self) -> dict:
        """Plain-data form (embedded in calibration cache v3 files)."""
        return {
            "format": self.FORMAT,
            "tolerance": self.tolerance,
            "axes": [list(values) for values in self._axes],
            "knots": [
                {"allocation": list(knot), "parameters": params.as_dict()}
                for knot, params in sorted(self._knots.items())
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ParameterSurface":
        """Inverse of :meth:`as_dict`; raises :class:`SurrogateError`."""
        if not isinstance(payload, dict):
            raise SurrogateError("surrogate fit payload is not an object")
        if payload.get("format") != cls.FORMAT:
            raise SurrogateError(
                f"unrecognized surrogate fit format "
                f"{payload.get('format')!r}; expected {cls.FORMAT!r}")
        try:
            knots = {
                knot_key(entry["allocation"]):
                    OptimizerParameters.from_dict(entry["parameters"])
                for entry in payload["knots"]
            }
            tolerance = payload.get("tolerance")
        except (KeyError, TypeError, ValueError) as exc:
            raise SurrogateError(
                f"surrogate fit payload is malformed: {exc!r}") from exc
        return cls(knots, tolerance=tolerance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dims = "x".join(str(len(values)) for values in self._axes)
        return f"ParameterSurface({dims} lattice, {self.n_knots} knots)"
