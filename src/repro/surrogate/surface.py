"""The parameter surface: ``P(R)`` for *any* allocation, in O(1).

A :class:`ParameterSurface` is the calibration surrogate the designer
queries instead of running experiments: it holds the calibrated
parameters at a complete lattice of allocation knots (the cross product
of per-axis share levels over CPU x memory x I/O) and answers
``params_for(R)`` for arbitrary allocations by multilinear
interpolation between the surrounding knots. Lookups cost one binary
search per axis plus an eight-corner blend — O(log knots) bracketing,
O(1) arithmetic — no matter how fine the lattice is, which is what
makes continuous-allocation search affordable (see
``docs/surrogate.md``).

Blending happens in the *time* domain: the ratio parameters are
per-unit times divided by ``T_seq``, and both numerator and denominator
vary with the allocation, so interpolating ratios directly compounds
their curvatures. :func:`blend_corners` interpolates the underlying
unit times and re-normalizes — the same rule
:meth:`repro.calibration.cache.CalibrationCache._try_interpolate` has
always used (it now delegates here).

Guard rails
-----------
* **Monotonicity clamps**: every blended parameter is clamped to the
  [min, max] range of the corner values that produced it, so the
  re-normalization step can never push a prediction outside the locally
  observed trend (``clamp=True`` in :func:`blend_corners`).
* **Extrapolation guards**: a query outside the calibrated hull is
  clamped, per axis, onto the hull boundary before interpolating —
  linear *extrapolation* of a calibrated surface is unbounded nonsense
  and is never performed. Clamped lookups are counted separately so a
  run report shows when a search wandered off the fitted region.

Accounting
----------
Every lookup increments exactly one ``surrogate.lookups`` counter
(labelled ``result=hit|interpolated|clamped``): ``hit`` when the query
lands exactly on a knot, ``interpolated`` between knots, ``clamped``
when an extrapolation guard fired first. The counters surface in run
reports next to the calibration-cache accounting (see
``docs/observability.md``).

Uncertainty
-----------
A surface may carry a per-knot *uncertainty* — the leave-one-level-out
cross-validation error :class:`~repro.surrogate.refine.SurrogateBuilder`
measured while fitting. It is the shared acquisition signal: the
builder refines where it is largest, and the drift planner
(``docs/drift.md``) multiplies it by the observed drift statistic to
rank regions for recalibration. :meth:`region_of` addresses the cell of
the lattice an allocation falls in; :meth:`region_uncertainty` is the
worst corner uncertainty of that cell. Surfaces fitted before
uncertainty existed load with all-zero uncertainty.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.obs import metrics
from repro.optimizer.params import OptimizerParameters
from repro.util.errors import SurrogateError
from repro.virt.resources import ResourceVector

#: Share coordinates are quantized to this many decimals, matching the
#: calibration cache's key quantization.
KEY_DECIMALS = 4

#: Axis names in canonical knot order.
AXIS_NAMES = ("cpu", "memory", "io")

#: The parameters blended in the time domain (everything except the
#: pinned ``seq_page_cost`` and the integer capacity fields).
RATIO_NAMES = ("random_page_cost", "cpu_tuple_cost",
               "cpu_index_tuple_cost", "cpu_operator_cost",
               "cpu_like_byte_cost")

Knot = Tuple[float, float, float]

#: A lattice cell, addressed by the per-axis index of its lower corner
#: level (see :meth:`ParameterSurface.region_of`).
Region = Tuple[int, int, int]


def knot_key(shares: Iterable[float]) -> Knot:
    """Canonical (rounded) knot coordinates."""
    key = tuple(round(float(s), KEY_DECIMALS) for s in shares)
    if len(key) != 3:
        raise SurrogateError("allocation knots must have 3 shares")
    return key


def blend_corners(corners: Sequence[Tuple[OptimizerParameters, float]],
                  clamp: bool = True) -> OptimizerParameters:
    """Weighted blend of calibrated corner parameters, in the time domain.

    *corners* pairs each corner's parameters with its (non-negative)
    interpolation weight; weights are normalized here. With *clamp*,
    each blended ratio parameter is clamped to the [min, max] of the
    corner values — the monotonicity guard (module docstring).
    """
    total = sum(weight for _params, weight in corners)
    if not corners or total <= 0:
        raise SurrogateError("corner blend needs positive total weight")
    blended_times: Dict[str, float] = {name: 0.0 for name in RATIO_NAMES}
    blended_t_seq = 0.0
    blended_cache = 0.0
    blended_sort = 0.0
    for params, weight in corners:
        share = weight / total
        blended_t_seq += params.seconds_per_seq_page * share
        blended_cache += params.effective_cache_size * share
        blended_sort += params.sort_mem_pages * share
        values = params.as_dict()
        for name in RATIO_NAMES:
            blended_times[name] += (
                values[name] * params.seconds_per_seq_page * share
            )
    ratios = {name: blended_times[name] / blended_t_seq
              for name in RATIO_NAMES}
    if clamp:
        for name in RATIO_NAMES:
            observed = [params.as_dict()[name] for params, _w in corners]
            ratios[name] = min(max(ratios[name], min(observed)),
                               max(observed))
    return OptimizerParameters(
        seq_page_cost=1.0,
        random_page_cost=ratios["random_page_cost"],
        cpu_tuple_cost=ratios["cpu_tuple_cost"],
        cpu_index_tuple_cost=ratios["cpu_index_tuple_cost"],
        cpu_operator_cost=ratios["cpu_operator_cost"],
        cpu_like_byte_cost=ratios["cpu_like_byte_cost"],
        effective_cache_size=int(blended_cache),
        sort_mem_pages=int(blended_sort),
        seconds_per_seq_page=blended_t_seq,
    )


class ParameterSurface:
    """A fitted multilinear parameter surface over a complete lattice."""

    #: On-disk serialization format (embedded in cache v3 files).
    FORMAT = "repro-surrogate-fit/1"

    def __init__(self, knots: Mapping[Knot, OptimizerParameters],
                 tolerance: Optional[float] = None,
                 uncertainty: Optional[Mapping[Knot, float]] = None):
        if not knots:
            raise SurrogateError("a parameter surface needs at least one knot")
        self._knots: Dict[Knot, OptimizerParameters] = {
            knot_key(knot): params for knot, params in knots.items()
        }
        self._axes: List[List[float]] = [
            sorted({knot[axis] for knot in self._knots})
            for axis in range(3)
        ]
        expected = 1
        for values in self._axes:
            expected *= len(values)
        if len(self._knots) != expected:
            missing = [
                knot for knot in self._iter_lattice()
                if knot not in self._knots
            ]
            raise SurrogateError(
                f"surface lattice is incomplete: {len(self._knots)} knots "
                f"for a {'x'.join(str(len(a)) for a in self._axes)} grid; "
                f"missing e.g. {missing[0] if missing else '?'}")
        #: The cross-validation tolerance the fit was refined to (None
        #: when the surface was built without refinement).
        self.tolerance = tolerance
        self._uncertainty: Dict[Knot, float] = {}
        for knot, value in (uncertainty or {}).items():
            key = knot_key(knot)
            if key not in self._knots:
                raise SurrogateError(
                    f"uncertainty for unknown knot {key}")
            self._uncertainty[key] = max(0.0, float(value))

    def _iter_lattice(self):
        from itertools import product
        return (knot for knot in product(*self._axes))

    # -- introspection ------------------------------------------------------

    @property
    def knots(self) -> List[Knot]:
        """All knot coordinates, sorted."""
        return sorted(self._knots)

    @property
    def n_knots(self) -> int:
        return len(self._knots)

    def axis_levels(self, axis: int) -> Tuple[float, ...]:
        """The calibrated share levels along *axis* (0=cpu, 1=mem, 2=io)."""
        return tuple(self._axes[axis])

    def knot_params(self, knot: Iterable[float]) -> OptimizerParameters:
        """Exact calibrated parameters at a knot (KeyError if absent)."""
        return self._knots[knot_key(knot)]

    def covers(self, allocation: ResourceVector) -> bool:
        """Whether *allocation* lies inside the calibrated hull."""
        target = knot_key(allocation.as_tuple())
        return all(
            self._axes[axis][0] - 1e-12 <= target[axis]
            <= self._axes[axis][-1] + 1e-12
            for axis in range(3)
        )

    # -- uncertainty and regions --------------------------------------------

    def knot_uncertainty(self, knot: Iterable[float]) -> float:
        """The fit's cross-validation uncertainty at a knot (0 when the
        fit recorded none, or the knot was calibrated exactly)."""
        key = knot_key(knot)
        if key not in self._knots:
            raise SurrogateError(f"no knot at {key}")
        return self._uncertainty.get(key, 0.0)

    @property
    def has_uncertainty(self) -> bool:
        """Whether any knot carries a non-zero uncertainty."""
        return any(value > 0 for value in self._uncertainty.values())

    def region_of(self, allocation: ResourceVector) -> Region:
        """The lattice cell *allocation* falls in, as per-axis lower
        corner indices. Out-of-hull queries clamp onto the boundary
        cell, mirroring :meth:`params_for`'s extrapolation guard."""
        target = knot_key(allocation.as_tuple())
        region = []
        for axis in range(3):
            values = self._axes[axis]
            pos = bisect_left(values, target[axis] + 1e-12) - 1
            region.append(min(max(pos, 0), max(len(values) - 2, 0)))
        return tuple(region)

    def region_corners(self, region: Region) -> List[Knot]:
        """The (up to 8) corner knots of a lattice cell, sorted."""
        from itertools import product
        brackets = []
        for axis in range(3):
            values = self._axes[axis]
            lo = region[axis]
            if not 0 <= lo <= max(len(values) - 2, 0):
                raise SurrogateError(
                    f"region {region} is outside the lattice")
            brackets.append(sorted({values[lo],
                                    values[min(lo + 1, len(values) - 1)]}))
        return sorted(product(*brackets))

    def region_uncertainty(self, region: Region) -> float:
        """Worst corner uncertainty of a lattice cell — the acquisition
        signal shared by refinement polish and the drift planner."""
        return max(self.knot_uncertainty(knot)
                   for knot in self.region_corners(region))

    # -- targeted refits ----------------------------------------------------

    def with_knots(self, updates: Mapping[Knot, OptimizerParameters],
                   uncertainty: Optional[Mapping[Knot, float]] = None,
                   ) -> "ParameterSurface":
        """A new surface with *existing* knots overwritten in place.

        This is the drift loop's targeted-refit primitive: the lattice
        geometry is untouched (every update must land exactly on a
        current knot — anything else raises, the hull guard), so all the
        interpolation invariants — monotonicity clamps, hull-clamped
        extrapolation — hold over the refreshed values. Overwritten
        knots drop to zero uncertainty (they were just calibrated)
        unless *uncertainty* supplies a value.
        """
        refreshed = dict(self._knots)
        new_uncertainty = dict(self._uncertainty)
        for knot, params in updates.items():
            key = knot_key(knot)
            if key not in refreshed:
                raise SurrogateError(
                    f"cannot overwrite {key}: not a knot of this surface "
                    f"(use SurrogateBuilder.extend to grow the lattice)")
            refreshed[key] = params
            new_uncertainty[key] = 0.0
        for knot, value in (uncertainty or {}).items():
            key = knot_key(knot)
            if key not in refreshed:
                raise SurrogateError(f"uncertainty for unknown knot {key}")
            new_uncertainty[key] = max(0.0, float(value))
        return ParameterSurface(refreshed, tolerance=self.tolerance,
                                uncertainty=new_uncertainty)

    # -- lookup -------------------------------------------------------------

    def params_for(self, allocation: ResourceVector) -> OptimizerParameters:
        """``P(R)`` for any allocation: knot hit, interpolation, or a
        hull-clamped interpolation — never a fresh experiment."""
        target = knot_key(allocation.as_tuple())
        clamped = [
            min(max(target[axis], self._axes[axis][0]), self._axes[axis][-1])
            for axis in range(3)
        ]
        guard_fired = tuple(clamped) != target
        exact = self._knots.get(tuple(clamped))
        if exact is not None:
            result = "clamped" if guard_fired else "hit"
            metrics.counter("surrogate.lookups", result=result).inc()
            return exact
        corners: List[Tuple[OptimizerParameters, float]] = []
        brackets = []
        for axis in range(3):
            values = self._axes[axis]
            pos = bisect_left(values, clamped[axis])
            if pos < len(values) and abs(values[pos] - clamped[axis]) <= 1e-12:
                brackets.append((values[pos], values[pos]))
            else:
                brackets.append((values[pos - 1], values[pos]))
        from itertools import product
        for corner in product(*brackets):
            weight = 1.0
            for axis in range(3):
                lo, hi = brackets[axis]
                if hi == lo:
                    fraction = 0.0
                else:
                    fraction = (clamped[axis] - lo) / (hi - lo)
                weight *= (1.0 - fraction) if corner[axis] == lo else fraction
            if weight > 0:
                corners.append((self._knots[corner], weight))
        metrics.counter(
            "surrogate.lookups",
            result="clamped" if guard_fired else "interpolated").inc()
        return blend_corners(corners, clamp=True)

    # -- persistence --------------------------------------------------------

    def as_dict(self) -> dict:
        """Plain-data form (embedded in calibration cache v3 files)."""
        entries = []
        for knot, params in sorted(self._knots.items()):
            entry = {"allocation": list(knot),
                     "parameters": params.as_dict()}
            # Written only when non-zero so fits produced before
            # uncertainty tracking serialize byte-identically.
            if self._uncertainty.get(knot, 0.0) > 0.0:
                entry["uncertainty"] = self._uncertainty[knot]
            entries.append(entry)
        return {
            "format": self.FORMAT,
            "tolerance": self.tolerance,
            "axes": [list(values) for values in self._axes],
            "knots": entries,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ParameterSurface":
        """Inverse of :meth:`as_dict`; raises :class:`SurrogateError`."""
        if not isinstance(payload, dict):
            raise SurrogateError("surrogate fit payload is not an object")
        if payload.get("format") != cls.FORMAT:
            raise SurrogateError(
                f"unrecognized surrogate fit format "
                f"{payload.get('format')!r}; expected {cls.FORMAT!r}")
        try:
            knots = {}
            uncertainty = {}
            for entry in payload["knots"]:
                key = knot_key(entry["allocation"])
                knots[key] = OptimizerParameters.from_dict(
                    entry["parameters"])
                if "uncertainty" in entry:
                    uncertainty[key] = float(entry["uncertainty"])
            tolerance = payload.get("tolerance")
        except (KeyError, TypeError, ValueError) as exc:
            raise SurrogateError(
                f"surrogate fit payload is malformed: {exc!r}") from exc
        return cls(knots, tolerance=tolerance, uncertainty=uncertainty)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dims = "x".join(str(len(values)) for values in self._axes)
        return f"ParameterSurface({dims} lattice, {self.n_knots} knots)"
